//! Anti-entropy gossip: the background pull loop that converges a
//! server's [`Directory`] replica with its peers' (wire v9).
//!
//! Replication is **pull-based** and piggybacks on the health-probe
//! cadence: each sweep sends every peer a `Gossip{from, epoch_vector}`
//! request and merges the `GossipDelta` answer through
//! [`Directory::apply_delta`]. The merge rule (per-record LWW stamps,
//! ties to the lower origin — see the directory docs) is commutative and
//! idempotent, so sweeps need no coordination: any connected component
//! of replicas converges to the same membership within a few intervals,
//! whatever order the pulls land in.
//!
//! Three fleet-survival details live here rather than in the merge rule:
//!
//! * **Rendezvous seeds.** After a long partition both sides may have
//!   evicted each other — their member lists no longer overlap, and a
//!   members-only sweep could never reconnect them. The configured
//!   [`GossiperConfig::seeds`] are dialed on *every* sweep regardless of
//!   membership, so a healed network always re-links. The list can grow
//!   at runtime ([`Gossiper::add_seed`]): pull-only anti-entropy never
//!   discovers a peer nobody points at, so a coordinator must introduce
//!   late joiners to the gossipers it already runs.
//! * **Self re-announcement.** A server that finds itself evicted from
//!   its own replica after a merge (a peer's health checker struck it
//!   out during the partition) re-announces itself with
//!   [`Directory::join_as`] — a fresh stamp that out-versions the
//!   eviction, so one announce wins everywhere.
//! * **Warm standbys.** With [`GossiperConfig::standby`] set, each sweep
//!   resolves this server's *ring successor* (the member inheriting most
//!   of its arcs if it dies — [`RingSnapshot::successor`]) and sends it
//!   one budgeted `Warm` RPC. When this server crashes, the failover
//!   target is already buffer-warm: the first chunk after failover is a
//!   pool cursor bump, not an inline extension.
//!
//! A [`Gossiper`] without an identity ([`GossiperConfig::identity`] =
//! `None`) is an **observer**: it pulls and merges but never announces —
//! the shape a coordinator or monitoring process uses to keep a live
//! fleet view without joining the fleet.

use crate::background::BackgroundLoop;
use crate::directory::{Directory, MemberState, ServerId, UNATTRIBUTED};
use ironman_net::{CotClient, EPOCH_UNAWARE};
use ironman_ot::channel::ChannelError;
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// This gossiper's fleet identity: id, advertised address, display name,
/// and ring weight — everything [`Directory::join_as`] needs to
/// (re-)announce the server.
#[derive(Clone, Debug)]
pub struct GossipIdentity {
    /// The server's stable id (operator-assigned in replicated fleets).
    pub id: ServerId,
    /// The address peers should dial (may differ from the bind address
    /// behind proxies or NAT).
    pub addr: SocketAddr,
    /// Display name.
    pub name: String,
    /// Relative ring weight.
    pub weight: u32,
}

/// Configuration of a [`Gossiper`].
#[derive(Clone, Debug)]
pub struct GossiperConfig {
    /// Pause between pull sweeps (the health-probe cadence by default).
    pub interval: Duration,
    /// Per-step timeout on every peer exchange (connect, read, write).
    pub timeout: Duration,
    /// This server's own identity, announced into the replica and
    /// re-announced after a merge that evicted it. `None` = observer
    /// mode: pull and merge only.
    pub identity: Option<GossipIdentity>,
    /// Peers dialed on every sweep regardless of current membership —
    /// the rendezvous that survives mutual eviction.
    pub seeds: Vec<SocketAddr>,
    /// Pre-warm this server's ring successor each sweep (one budgeted
    /// `Warm` RPC), so crash failover lands on a warm pool.
    pub standby: bool,
    /// Per-shard watermark the standby warm sweep refills toward.
    pub standby_watermark: u64,
    /// Refill budget per standby warm sweep.
    pub standby_max_refills: u64,
}

impl Default for GossiperConfig {
    fn default() -> Self {
        GossiperConfig {
            interval: Duration::from_millis(25),
            timeout: Duration::from_millis(500),
            identity: None,
            seeds: Vec::new(),
            standby: false,
            standby_watermark: 1,
            standby_max_refills: 1,
        }
    }
}

/// Lifetime counters of one [`Gossiper`], all monotonic (read them
/// through [`GossipHandle`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GossipStats {
    /// Pull sweeps completed.
    pub sweeps: u64,
    /// Peer pulls that returned a delta.
    pub pulls_ok: u64,
    /// Peer pulls that failed (connect, timeout, or protocol error).
    pub pulls_failed: u64,
    /// Pulled deltas that actually changed the replica.
    pub merges_applied: u64,
    /// Times this server re-announced itself after a merge evicted it.
    pub self_rejoins: u64,
    /// Standby `Warm` RPCs delivered to the ring successor.
    pub standby_warms: u64,
}

#[derive(Debug, Default)]
struct Counters {
    sweeps: AtomicU64,
    pulls_ok: AtomicU64,
    pulls_failed: AtomicU64,
    merges_applied: AtomicU64,
    self_rejoins: AtomicU64,
    standby_warms: AtomicU64,
}

impl Counters {
    fn snapshot(&self) -> GossipStats {
        GossipStats {
            sweeps: self.sweeps.load(Ordering::Relaxed),
            pulls_ok: self.pulls_ok.load(Ordering::Relaxed),
            pulls_failed: self.pulls_failed.load(Ordering::Relaxed),
            merges_applied: self.merges_applied.load(Ordering::Relaxed),
            self_rejoins: self.self_rejoins.load(Ordering::Relaxed),
            standby_warms: self.standby_warms.load(Ordering::Relaxed),
        }
    }
}

/// A shareable read handle on a running (or stopped) [`Gossiper`]'s
/// counters.
#[derive(Clone, Debug)]
pub struct GossipHandle {
    counters: Arc<Counters>,
}

impl GossipHandle {
    /// Current counter snapshot.
    pub fn stats(&self) -> GossipStats {
        self.counters.snapshot()
    }
}

/// A running anti-entropy pull loop over a [`Directory`] replica.
///
/// Stops (and joins its thread) on [`Gossiper::stop`] or drop.
#[derive(Debug)]
pub struct Gossiper {
    inner: BackgroundLoop,
    handle: GossipHandle,
    seeds: Arc<Mutex<Vec<SocketAddr>>>,
}

impl Gossiper {
    /// Starts the pull loop over `directory`. If
    /// [`GossiperConfig::identity`] is set, the identity is announced
    /// into the replica immediately (idempotent) before the first sweep.
    pub fn spawn(directory: Arc<Directory>, cfg: GossiperConfig) -> Gossiper {
        if let Some(me) = &cfg.identity {
            directory.join_as(me.id, me.addr, &me.name, me.weight);
        }
        let counters = Arc::new(Counters::default());
        let timeout = cfg.timeout.max(Duration::from_millis(1));
        let seeds = Arc::new(Mutex::new(cfg.seeds.clone()));
        let mut sessions: HashMap<SocketAddr, CotClient> = HashMap::new();
        let inner = {
            let counters = Arc::clone(&counters);
            let seeds = Arc::clone(&seeds);
            let cfg = cfg.clone();
            BackgroundLoop::spawn(move || {
                sweep(&directory, &cfg, &seeds, timeout, &mut sessions, &counters);
                Some(cfg.interval)
            })
        };
        Gossiper {
            inner,
            handle: GossipHandle { counters },
            seeds,
        }
    }

    /// Adds a rendezvous address dialed from the next sweep onward
    /// (idempotent). Pull-only anti-entropy never discovers a peer
    /// nobody points at, so whoever spawns a late joiner must introduce
    /// it to the gossipers already running.
    pub fn add_seed(&self, addr: SocketAddr) {
        let mut seeds = self.seeds.lock().unwrap();
        if !seeds.contains(&addr) {
            seeds.push(addr);
        }
    }

    /// A cloneable handle on this gossiper's counters.
    pub fn handle(&self) -> GossipHandle {
        self.handle.clone()
    }

    /// Current counter snapshot.
    pub fn stats(&self) -> GossipStats {
        self.handle.stats()
    }

    /// Stops the loop and waits for its thread to exit.
    pub fn stop(self) {
        self.inner.stop();
    }
}

/// One pull sweep: members ∪ seeds, minus self, suspects skipped (the
/// health prober owns deciding when they are back).
fn sweep(
    directory: &Directory,
    cfg: &GossiperConfig,
    seeds: &Mutex<Vec<SocketAddr>>,
    timeout: Duration,
    sessions: &mut HashMap<SocketAddr, CotClient>,
    counters: &Counters,
) {
    let self_addr = cfg.identity.as_ref().map(|me| me.addr);
    let seeds: Vec<SocketAddr> = seeds.lock().unwrap().clone();
    let snapshot = directory.snapshot();
    let mut targets: Vec<SocketAddr> = snapshot
        .members()
        .iter()
        .filter(|m| m.state != MemberState::Suspect)
        .map(|m| m.addr)
        .chain(seeds.iter().copied())
        .filter(|addr| Some(*addr) != self_addr)
        .collect();
    targets.sort_unstable();
    targets.dedup();
    // Drop cached sessions to departed peers (their fds would otherwise
    // linger for the gossiper's lifetime).
    sessions.retain(|addr, _| targets.contains(addr));

    let from = cfg.identity.as_ref().map_or(UNATTRIBUTED, |me| me.id.0);
    let mut merged = false;
    for addr in targets {
        match pull(directory, from, addr, timeout, sessions) {
            Ok(changed) => {
                counters.pulls_ok.fetch_add(1, Ordering::Relaxed);
                if changed {
                    counters.merges_applied.fetch_add(1, Ordering::Relaxed);
                    merged = true;
                }
            }
            Err(_) => {
                // One bad peer costs one timeout; a fresh session is
                // dialed next sweep.
                sessions.remove(&addr);
                counters.pulls_failed.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    if let Some(me) = &cfg.identity {
        // A merge may have pulled in this server's own eviction (struck
        // out by a peer during a partition). Re-announce with a fresh,
        // out-versioning stamp; the next sweeps spread it.
        if merged && directory.snapshot().member(me.id).is_none() {
            directory.join_as(me.id, me.addr, &me.name, me.weight);
            counters.self_rejoins.fetch_add(1, Ordering::Relaxed);
        }
        if cfg.standby {
            warm_successor(directory, me, cfg, timeout, sessions, counters);
        }
    }
    counters.sweeps.fetch_add(1, Ordering::Relaxed);
}

/// One peer pull: `Gossip{from, vector}` → `GossipDelta` → merge.
/// Returns whether the merge changed the replica.
fn pull(
    directory: &Directory,
    from: u64,
    addr: SocketAddr,
    timeout: Duration,
    sessions: &mut HashMap<SocketAddr, CotClient>,
) -> Result<bool, ChannelError> {
    let client = match sessions.entry(addr) {
        std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
        std::collections::hash_map::Entry::Vacant(e) => e.insert(CotClient::connect_timeout(
            addr,
            "gossip",
            EPOCH_UNAWARE,
            timeout,
        )?),
    };
    let delta = client.gossip(from, directory.epoch_vector())?;
    Ok(directory.apply_delta(&delta))
}

/// Pre-warms this server's ring successor with one budgeted `Warm` RPC.
fn warm_successor(
    directory: &Directory,
    me: &GossipIdentity,
    cfg: &GossiperConfig,
    timeout: Duration,
    sessions: &mut HashMap<SocketAddr, CotClient>,
    counters: &Counters,
) {
    let snapshot = directory.snapshot();
    let Some(successor) = snapshot.successor(me.id) else {
        return;
    };
    let Some(member) = snapshot.member(successor) else {
        return;
    };
    if member.state != MemberState::Up {
        return;
    }
    let addr = member.addr;
    let warmed = match sessions.entry(addr) {
        std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
        std::collections::hash_map::Entry::Vacant(e) => {
            let Ok(client) = CotClient::connect_timeout(addr, "gossip", EPOCH_UNAWARE, timeout)
            else {
                return;
            };
            e.insert(client)
        }
    }
    .warm(cfg.standby_watermark, cfg.standby_max_refills);
    match warmed {
        Ok(_) => {
            counters.standby_warms.fetch_add(1, Ordering::Relaxed);
        }
        Err(_) => {
            sessions.remove(&addr);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{ClusterServer, ClusterServerConfig};
    use ironman_core::{Backend, Engine};
    use ironman_ot::ferret::FerretConfig;
    use ironman_ot::params::FerretParams;

    fn toy_engine() -> Engine {
        Engine::new(
            FerretConfig::new(FerretParams::toy()),
            Backend::ironman_default(),
        )
    }

    fn replica_server(engine: &Engine, id: u64) -> (ClusterServer, Arc<Directory>, SocketAddr) {
        let directory = Arc::new(Directory::new_replica(ServerId(id)));
        let server = ClusterServer::spawn(
            "127.0.0.1:0",
            engine,
            ClusterServerConfig::default(),
            Some(Arc::clone(&directory)),
        )
        .expect("bind loopback");
        let addr = server.addr();
        directory.join_as(ServerId(id), addr, &format!("replica-{id}"), 1);
        (server, directory, addr)
    }

    #[test]
    fn replicas_converge_via_gossip_loops() {
        let engine = toy_engine();
        let (s0, d0, a0) = replica_server(&engine, 0);
        let (s1, d1, a1) = replica_server(&engine, 1);
        let (s2, d2, a2) = replica_server(&engine, 2);
        let seeds = vec![a0, a1, a2];
        let cadence = Duration::from_millis(5);
        let gossipers: Vec<Gossiper> = [(0u64, a0, &d0), (1, a1, &d1), (2, a2, &d2)]
            .into_iter()
            .map(|(id, addr, dir)| {
                Gossiper::spawn(
                    Arc::clone(dir),
                    GossiperConfig {
                        interval: cadence,
                        identity: Some(GossipIdentity {
                            id: ServerId(id),
                            addr,
                            name: format!("replica-{id}"),
                            weight: 1,
                        }),
                        seeds: seeds.clone(),
                        ..GossiperConfig::default()
                    },
                )
            })
            .collect();

        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            let vectors: Vec<_> = [&d0, &d1, &d2].iter().map(|d| d.epoch_vector()).collect();
            if vectors.iter().all(|v| *v == vectors[0]) && d0.snapshot().len() == 3 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "replicas failed to converge: {vectors:?}"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(d1.snapshot().len(), 3);
        assert_eq!(d2.snapshot().len(), 3);
        for g in &gossipers {
            assert!(g.stats().pulls_ok > 0);
        }
        for g in gossipers {
            g.stop();
        }
        s0.shutdown();
        s1.shutdown();
        s2.shutdown();
    }

    #[test]
    fn observer_pulls_without_announcing() {
        let engine = toy_engine();
        let (s0, d0, a0) = replica_server(&engine, 0);
        let view = Arc::new(Directory::new());
        let observer = Gossiper::spawn(
            Arc::clone(&view),
            GossiperConfig {
                interval: Duration::from_millis(5),
                seeds: vec![a0],
                ..GossiperConfig::default()
            },
        );
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while view.snapshot().len() != 1 {
            assert!(
                std::time::Instant::now() < deadline,
                "observer never synced"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(view.epoch_vector(), d0.epoch_vector());
        // The observer never wrote anything of its own.
        assert!(view
            .epoch_vector()
            .iter()
            .all(|&(origin, _)| origin != UNATTRIBUTED));
        observer.stop();
        s0.shutdown();
    }
}
