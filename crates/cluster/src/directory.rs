//! The cluster directory: which servers exist, and which one owns a
//! session.
//!
//! Routing is a consistent-hash ring: each server contributes
//! [`VIRTUAL_NODES`] points (hashes of `addr#replica`), and a session
//! lands on the first point clockwise of its own hash. Two properties
//! matter for a COT fleet:
//!
//! * **Stickiness** — a session always resolves to the same *home*
//!   server, so its correlations keep coming from one pool (one `Δ`
//!   stream per server session, warm state stays warm).
//! * **Minimal reshuffle** — adding or removing a server moves only the
//!   sessions whose arc it owned, not the whole fleet's routing table.
//!
//! [`ClusterDirectory::route`] additionally yields the deterministic
//! failover order (the ring walked clockwise from the home, deduplicated)
//! that [`ClusterClient`](crate::ClusterClient) uses when a server is
//! unreachable.

use std::net::SocketAddr;

/// Virtual nodes per server on the hash ring; enough that a 3-server
/// directory spreads sessions within a few percent of evenly.
pub const VIRTUAL_NODES: usize = 64;

/// FNV-1a with a murmur-style finalizer: plain FNV does not avalanche
/// its high bits on short, similar strings (all `session-N` names would
/// land on one arc of the ring), so the mix step is load-bearing.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^ (h >> 33)
}

/// One server known to the directory.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServerEntry {
    /// The server's listening address.
    pub addr: SocketAddr,
    /// Display name (logs, stats).
    pub name: String,
}

/// An immutable snapshot of the fleet: N [`CotService`](ironman_net::CotService)
/// endpoints and the consistent-hash ring over them.
#[derive(Clone, Debug)]
pub struct ClusterDirectory {
    servers: Vec<ServerEntry>,
    /// Sorted `(ring point, server index)` pairs.
    ring: Vec<(u64, usize)>,
}

impl ClusterDirectory {
    /// Builds a directory over `servers`.
    ///
    /// # Panics
    ///
    /// Panics on an empty server list — a cluster of zero servers can
    /// route nothing.
    pub fn new(servers: Vec<ServerEntry>) -> Self {
        assert!(!servers.is_empty(), "directory needs at least one server");
        let mut ring = Vec::with_capacity(servers.len() * VIRTUAL_NODES);
        for (idx, server) in servers.iter().enumerate() {
            for replica in 0..VIRTUAL_NODES {
                let point = fnv1a(format!("{}#{replica}", server.addr).as_bytes());
                ring.push((point, idx));
            }
        }
        ring.sort_unstable();
        ClusterDirectory { servers, ring }
    }

    /// Builds a directory from bare addresses (names derived from them).
    pub fn from_addrs<I: IntoIterator<Item = SocketAddr>>(addrs: I) -> Self {
        Self::new(
            addrs
                .into_iter()
                .map(|addr| ServerEntry {
                    addr,
                    name: format!("cot-server@{addr}"),
                })
                .collect(),
        )
    }

    /// Number of servers.
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// Whether the directory is empty (never true; see [`ClusterDirectory::new`]).
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty()
    }

    /// All servers, in directory order.
    pub fn servers(&self) -> &[ServerEntry] {
        &self.servers
    }

    /// The server at directory index `idx`.
    pub fn server(&self, idx: usize) -> &ServerEntry {
        &self.servers[idx]
    }

    /// The session's home server: the first ring point clockwise of the
    /// session's hash.
    pub fn home(&self, session: &str) -> usize {
        let h = fnv1a(session.as_bytes());
        let at = self.ring.partition_point(|&(point, _)| point < h);
        self.ring[at % self.ring.len()].1
    }

    /// The session's full routing order: home first, then each remaining
    /// server in the order the ring walk first reaches it. Every server
    /// appears exactly once, so walking this list is the deterministic
    /// failover policy.
    pub fn route(&self, session: &str) -> Vec<usize> {
        let h = fnv1a(session.as_bytes());
        let start = self.ring.partition_point(|&(point, _)| point < h);
        let mut order = Vec::with_capacity(self.servers.len());
        for offset in 0..self.ring.len() {
            let idx = self.ring[(start + offset) % self.ring.len()].1;
            if !order.contains(&idx) {
                order.push(idx);
                if order.len() == self.servers.len() {
                    break;
                }
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir(n: usize) -> ClusterDirectory {
        ClusterDirectory::from_addrs((0..n).map(|i| {
            format!("10.0.0.{}:7000", i + 1)
                .parse()
                .expect("valid addr")
        }))
    }

    #[test]
    fn home_is_deterministic_and_sticky() {
        let d = dir(3);
        for session in ["alice", "bob", "resnet-worker-17", ""] {
            assert_eq!(d.home(session), d.home(session));
            assert!(d.home(session) < 3);
        }
    }

    #[test]
    fn route_covers_every_server_once_starting_at_home() {
        let d = dir(5);
        for session in ["a", "b", "c", "worker-9000"] {
            let route = d.route(session);
            assert_eq!(route[0], d.home(session));
            let mut sorted = route.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
        }
    }

    #[test]
    fn sessions_spread_across_servers() {
        let d = dir(3);
        let mut hits = [0usize; 3];
        for i in 0..300 {
            hits[d.home(&format!("session-{i}"))] += 1;
        }
        // Consistent hashing with 64 vnodes/server is not perfectly even,
        // but nothing should be starved or dominant.
        for &h in &hits {
            assert!(h > 30, "server starved: {hits:?}");
        }
    }

    #[test]
    fn growing_the_fleet_moves_few_sessions() {
        let small = dir(3);
        let big = dir(4);
        let moved = (0..1000)
            .filter(|i| {
                let s = format!("session-{i}");
                // Servers 0..3 have identical addresses in both
                // directories, so a changed home means the session moved.
                small.home(&s) != big.home(&s)
            })
            .count();
        // Ideal consistent hashing moves ~1/4 of sessions; allow slack
        // but rule out the "everything rehashed" failure mode.
        assert!(moved < 500, "consistent hashing reshuffled {moved}/1000");
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn empty_directory_rejected() {
        let _ = ClusterDirectory::new(Vec::new());
    }
}
