//! The cluster control plane: an epoch-versioned, mutable membership
//! [`Directory`] publishing copy-on-write [`RingSnapshot`]s.
//!
//! PR 2's `ClusterDirectory` was an immutable fleet snapshot: a crash,
//! join, or drain meant rebuilding every client by hand. The [`Directory`]
//! replaces it with a control plane:
//!
//! * **Membership mutations** — [`Directory::join`], [`Directory::leave`],
//!   [`Directory::drain`], and the health checker's
//!   [`Directory::mark_suspect`]/[`Directory::mark_up`] — happen under one
//!   mutex and bump a monotonically increasing **epoch**.
//! * Every mutation **publishes** a fresh immutable [`RingSnapshot`]
//!   (members + consistent-hash ring) behind a read lock held only for an
//!   `Arc` clone, so the request path routes on an immutable snapshot and
//!   never contends with membership churn.
//! * A bounded **change log** lets servers answer `Sync{epoch}` with the
//!   exact membership delta ([`Directory::delta_since`]); clients apply it
//!   with [`Directory::apply_delta`]. When the log no longer reaches back
//!   to the requested epoch, a full snapshot is sent instead.
//!
//! # Replication (wire v9)
//!
//! A directory is no longer necessarily *the* fleet directory: each
//! server may carry its own **replica** and converge with its peers
//! through anti-entropy pulls (see `gossip` in `ironman-cluster` and the
//! `Gossip`/`GossipDelta` pair in `ironman-net`). Convergence rests on
//! three pieces of state this module maintains:
//!
//! * Every membership record carries a **stamp** `(origin, version)`:
//!   which replica wrote it, at that replica's per-origin mutation count.
//!   Merging is last-writer-wins on the stamp — higher `version` wins,
//!   ties break to the *lower* origin — a deterministic, commutative,
//!   idempotent rule, so replicas converge no matter how deltas are
//!   ordered, duplicated, or crossed ([`Directory::apply_delta`]).
//! * The replica's **epoch vector** (`origin → highest version seen`)
//!   summarizes everything it has incorporated.
//!   [`Directory::delta_by_vector`] answers a peer's vector with exactly
//!   the records the peer has not seen. The scalar **epoch** is the sum
//!   of the vector's entries: it advances by one per local mutation
//!   (matching the pre-replication semantics exactly on a single-writer
//!   directory), never regresses under merges, and is equal across
//!   replicas precisely when they have converged. Mid-convergence,
//!   scalar comparison across replicas is approximate — fencing treats
//!   that as benign staleness; the stamps keep the *content* safe.
//! * Removals persist as bounded **tombstones** (capped at
//!   [`TOMBSTONE_CAP`], oldest stamps pruned first) so a removal wins
//!   against a stale peer's live record instead of being resurrected.
//!   Anti-entropy never uses full-snapshot "replace everything"
//!   semantics — a clear would erase concurrent writes the sender had
//!   not seen. A peer staler than the pruned tombstone horizon can still
//!   resurrect a dead member; the health checker re-evicts it, so the
//!   fleet self-heals rather than wedges.
//!
//! **Leadership** is a lease derived from the converged state, not
//! elected: the **lease holder** is the lowest `Up` member id
//! ([`RingSnapshot::lease_holder`]). Only *evictions* are gated on
//! holding the lease (a health checker evicts a struck-out member only
//! if its replica says it is the holder) — liveness observations
//! (suspect/up marks) are never gated, because they *are* the expiry
//! mechanism: when the holder dies, probes mark it suspect everywhere,
//! and the next-lowest live id holds the lease. Joins are
//! self-announcements ([`Directory::join_as`]) spread by gossip, so a
//! server can (re)join during a partition without reaching any leader.
//!
//! Routing stays a consistent-hash ring: each *routable* member
//! contributes [`VIRTUAL_NODES`] points per unit of **weight** (hashes
//! of `addr#replica`), so a weight-4 member takes four times the base
//! arc share — heterogeneous servers take proportional load. A session
//! lands on the first point clockwise of its own hash. Two properties
//! matter for a COT fleet:
//!
//! * **Stickiness** — a session resolves to the same *home* server for as
//!   long as the membership holds (one `Δ` stream per server session).
//! * **Minimal reshuffle** — a join or leave moves only the sessions
//!   whose arcs the changed server owned (property-tested in
//!   `tests/directory_props.rs`).
//!
//! Draining and suspect members stay *in* the membership but out of the
//! ring: existing sessions may finish their work there (hitless drain),
//! while no new session homes on them. If no member is `Up`, the ring
//! falls back to every live member — degraded routing beats none.

use ironman_net::{DirectoryDelta, DirectoryView, MemberRecord, MemberWireState};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::net::SocketAddr;
use std::sync::{Arc, Mutex, RwLock};

/// Virtual nodes per unit of member weight on the hash ring; enough that
/// a 3-server directory spreads sessions within a few percent of evenly.
pub const VIRTUAL_NODES: usize = 64;

/// Change-log entries retained for delta replies; a client whose epoch
/// fell further behind than this receives a full snapshot instead.
const LOG_CAP: usize = 128;

/// Removal tombstones retained for anti-entropy; beyond this the oldest
/// stamps are pruned (a peer staler than the pruned horizon may
/// resurrect a member briefly — the health checker re-evicts it).
pub const TOMBSTONE_CAP: usize = 256;

/// Largest effective ring weight; declared weights clamp into
/// `1..=MAX_WEIGHT` so one hostile or misconfigured member cannot claim
/// the whole ring (or, at weight 0, silently vanish from it).
pub const MAX_WEIGHT: u32 = 16;

/// The stamp origin of writers without a server identity (plain clients,
/// single-directory fleets). It loses every stamp tie — an attributed
/// replica's concurrent write always beats an unattributed one.
pub const UNATTRIBUTED: u64 = u64::MAX;

/// FNV-1a with a murmur-style finalizer: plain FNV does not avalanche
/// its high bits on short, similar strings (all `session-N` names would
/// land on one arc of the ring), so the mix step is load-bearing.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^ (h >> 33)
}

/// A stable server identity, assigned at [`Directory::join`] and kept
/// across state changes; the unit clients key their per-server sessions
/// and load counters by (directory *indices* shift as members come and
/// go — ids never do).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ServerId(pub u64);

impl fmt::Display for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A record's write stamp: which replica wrote it, at that replica's
/// per-origin mutation count. The total order over stamps (higher
/// version wins, ties to the lower origin) is the replication conflict
/// rule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Stamp {
    /// The writing replica's server id ([`UNATTRIBUTED`] otherwise).
    pub origin: u64,
    /// The origin's mutation count at write time.
    pub version: u64,
}

impl Stamp {
    /// Whether a record carrying `self` replaces one carrying `other`
    /// under the merge rule. Strict: equal stamps do not replace, which
    /// is what makes duplicate delta application a no-op.
    pub fn wins_over(self, other: Stamp) -> bool {
        self.version > other.version
            || (self.version == other.version && self.origin < other.origin)
    }

    /// Whether an epoch vector already accounts for this write.
    fn covered_by(self, vector: &BTreeMap<u64, u64>) -> bool {
        vector.get(&self.origin).copied().unwrap_or(0) >= self.version
    }
}

/// A fleet member's lifecycle state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemberState {
    /// Serving and routable.
    Up,
    /// Finishing existing sessions; receives no new homes (hitless
    /// drain).
    Draining,
    /// Failed recent health probes; out of the ring until it recovers or
    /// the checker evicts it.
    Suspect,
}

impl MemberState {
    fn to_wire(self) -> MemberWireState {
        match self {
            MemberState::Up => MemberWireState::Up,
            MemberState::Draining => MemberWireState::Draining,
            MemberState::Suspect => MemberWireState::Suspect,
        }
    }

    fn from_wire(state: MemberWireState) -> Option<Self> {
        match state {
            MemberWireState::Up => Some(MemberState::Up),
            MemberWireState::Draining => Some(MemberState::Draining),
            MemberWireState::Suspect => Some(MemberState::Suspect),
            MemberWireState::Left => None,
        }
    }
}

/// One server known to the directory.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Member {
    /// Stable identity.
    pub id: ServerId,
    /// The server's listening address.
    pub addr: SocketAddr,
    /// Display name (logs, stats).
    pub name: String,
    /// Current lifecycle state.
    pub state: MemberState,
    /// Relative ring weight (see [`MAX_WEIGHT`]); 1 for homogeneous
    /// fleets.
    pub weight: u32,
    /// The stamp of the write that produced this record's current value
    /// (v9 replication metadata).
    pub stamp: Stamp,
}

impl Member {
    fn to_record(&self) -> MemberRecord {
        MemberRecord {
            id: self.id.0,
            state: self.state.to_wire(),
            weight: self.weight,
            origin: self.stamp.origin,
            version: self.stamp.version,
            addr: self.addr.to_string(),
            name: self.name.clone(),
        }
    }
}

/// A bare address + name pair for bootstrapping a directory before ids
/// are assigned.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServerEntry {
    /// The server's listening address.
    pub addr: SocketAddr,
    /// Display name (logs, stats).
    pub name: String,
}

/// An immutable point-in-time view of the fleet: the members at one
/// epoch and the consistent-hash ring over the routable ones. The
/// request path routes on a snapshot and never touches the directory's
/// locks.
#[derive(Clone, Debug)]
pub struct RingSnapshot {
    epoch: u64,
    vector: Vec<(u64, u64)>,
    members: Vec<Member>,
    /// Sorted `(ring point, members index)` pairs over routable members.
    ring: Vec<(u64, usize)>,
}

impl RingSnapshot {
    fn build(epoch: u64, vector: Vec<(u64, u64)>, members: Vec<Member>) -> Self {
        // Up members own the ring; with none up, every live member does
        // (degraded routing beats an unroutable fleet).
        let routable: Vec<usize> = {
            let up: Vec<usize> = members
                .iter()
                .enumerate()
                .filter(|(_, m)| m.state == MemberState::Up)
                .map(|(i, _)| i)
                .collect();
            if up.is_empty() {
                (0..members.len()).collect()
            } else {
                up
            }
        };
        let mut ring = Vec::new();
        for &idx in &routable {
            let points = VIRTUAL_NODES * members[idx].weight.clamp(1, MAX_WEIGHT) as usize;
            for replica in 0..points {
                let point = fnv1a(format!("{}#{replica}", members[idx].addr).as_bytes());
                ring.push((point, idx));
            }
        }
        ring.sort_unstable();
        RingSnapshot {
            epoch,
            vector,
            members,
            ring,
        }
    }

    /// The membership epoch this snapshot was published at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The per-origin epoch vector behind [`RingSnapshot::epoch`]
    /// (ascending by origin; the scalar epoch is its sum).
    pub fn vector(&self) -> &[(u64, u64)] {
        &self.vector
    }

    /// All members, in join order (every state, including draining and
    /// suspect).
    pub fn members(&self) -> &[Member] {
        &self.members
    }

    /// The member with id `id`, if present.
    pub fn member(&self, id: ServerId) -> Option<&Member> {
        self.members.iter().find(|m| m.id == id)
    }

    /// Number of members (every state).
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the fleet has no members at all.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The membership-mutation lease holder under this view: the lowest
    /// `Up` member id, falling back to the lowest id of any member when
    /// none is up. Derived, not elected — when the holder dies, probes
    /// mark it suspect and the lease passes to the next-lowest live id
    /// with no extra protocol.
    pub fn lease_holder(&self) -> Option<ServerId> {
        self.members
            .iter()
            .filter(|m| m.state == MemberState::Up)
            .map(|m| m.id)
            .min()
            .or_else(|| self.members.iter().map(|m| m.id).min())
    }

    /// The session's home server: the first ring point clockwise of the
    /// session's hash, or `None` when the fleet is empty.
    pub fn home(&self, session: &str) -> Option<ServerId> {
        if self.ring.is_empty() {
            return None;
        }
        let h = fnv1a(session.as_bytes());
        let at = self.ring.partition_point(|&(point, _)| point < h);
        Some(self.members[self.ring[at % self.ring.len()].1].id)
    }

    /// The session's full routing order: home first, then each remaining
    /// *routable* server in the order the ring walk first reaches it,
    /// then any non-routable members (draining/suspect) as a last
    /// resort. Every member appears exactly once; walking this list is
    /// the deterministic failover policy.
    pub fn route(&self, session: &str) -> Vec<ServerId> {
        let mut order = Vec::with_capacity(self.members.len());
        if !self.ring.is_empty() {
            let h = fnv1a(session.as_bytes());
            let start = self.ring.partition_point(|&(point, _)| point < h);
            for offset in 0..self.ring.len() {
                let id = self.members[self.ring[(start + offset) % self.ring.len()].1].id;
                if !order.contains(&id) {
                    order.push(id);
                }
            }
        }
        for m in &self.members {
            if !order.contains(&m.id) {
                order.push(m.id);
            }
        }
        order
    }

    /// The member that inherits most of `id`'s ring arcs if it leaves:
    /// for each of `id`'s ring points, the owner of the next point
    /// clockwise is the heir of that arc; the most frequent heir (ties
    /// to the lower id) is the *ring successor* — the server a warm
    /// standby should pre-warm and a drain handoff should name. `None`
    /// when `id` is not on the ring or owns it alone.
    pub fn successor(&self, id: ServerId) -> Option<ServerId> {
        let mut heirs: BTreeMap<ServerId, usize> = BTreeMap::new();
        for (i, &(_, idx)) in self.ring.iter().enumerate() {
            if self.members[idx].id != id {
                continue;
            }
            for offset in 1..self.ring.len() {
                let owner = self.members[self.ring[(i + offset) % self.ring.len()].1].id;
                if owner != id {
                    *heirs.entry(owner).or_insert(0) += 1;
                    break;
                }
            }
        }
        // BTreeMap iteration is ascending by id, and `>` keeps the first
        // (lowest) id among equal counts.
        let mut best: Option<(ServerId, usize)> = None;
        for (owner, count) in heirs {
            if best.is_none_or(|(_, c)| count > c) {
                best = Some((owner, count));
            }
        }
        best.map(|(owner, _)| owner)
    }
}

#[derive(Debug)]
struct DirInner {
    /// This replica's stamp origin ([`UNATTRIBUTED`] for directories not
    /// acting as a server replica).
    origin: u64,
    /// Scalar epoch: always the sum of `vector`'s entries.
    epoch: u64,
    /// Per-origin highest version seen.
    vector: BTreeMap<u64, u64>,
    next_id: u64,
    members: Vec<Member>,
    /// Removal tombstones by member id, each a `Left` record carrying
    /// the removing write's stamp.
    tombstones: BTreeMap<u64, MemberRecord>,
    /// `(epoch, change)` entries, oldest first; covers `(log_floor,
    /// epoch]`.
    log: VecDeque<(u64, MemberRecord)>,
    /// Epoch below which the log has been truncated.
    log_floor: u64,
}

impl DirInner {
    /// Advances this replica's own vector entry and returns the stamp
    /// for the write being made. The scalar epoch tracks the sum.
    fn bump(&mut self) -> Stamp {
        self.bump_over(0)
    }

    /// [`DirInner::bump`], Lamport-style: the new version lands strictly
    /// past `prev_version` (the stamp of the record being overwritten),
    /// so a local write always out-stamps what it replaces — without
    /// this, a self re-announce over a peer's eviction tombstone would
    /// lose its own merge and flap for several rounds. On a
    /// single-writer directory `prev_version` never exceeds the local
    /// counter, so the epoch still advances by exactly 1 per mutation.
    fn bump_over(&mut self, prev_version: u64) -> Stamp {
        let v = self.vector.entry(self.origin).or_insert(0);
        let new = (*v).max(prev_version).saturating_add(1);
        let jump = new - *v;
        *v = new;
        self.epoch = self.epoch.saturating_add(jump);
        Stamp {
            origin: self.origin,
            version: new,
        }
    }

    fn vector_list(&self) -> Vec<(u64, u64)> {
        self.vector.iter().map(|(&o, &v)| (o, v)).collect()
    }

    /// Records `record` in the change log and returns the snapshot to
    /// publish (the epoch was already advanced by [`DirInner::bump`] or
    /// a merge).
    fn commit(&mut self, record: MemberRecord) -> Arc<RingSnapshot> {
        self.log.push_back((self.epoch, record));
        self.truncate_log();
        self.snapshot()
    }

    fn snapshot(&self) -> Arc<RingSnapshot> {
        Arc::new(RingSnapshot::build(
            self.epoch,
            self.vector_list(),
            self.members.clone(),
        ))
    }

    fn truncate_log(&mut self) {
        while self.log.len() > LOG_CAP {
            if let Some((epoch, _)) = self.log.pop_front() {
                self.log_floor = epoch;
            }
        }
    }

    fn prune_tombstones(&mut self) {
        while self.tombstones.len() > TOMBSTONE_CAP {
            // Prune the stamp-oldest removal (lowest version; ties to
            // the higher origin, the stamp order's loser side).
            let Some(oldest) = self
                .tombstones
                .iter()
                .min_by_key(|(_, r)| (r.version, std::cmp::Reverse(r.origin)))
                .map(|(&id, _)| id)
            else {
                return;
            };
            self.tombstones.remove(&oldest);
        }
    }

    fn member_mut(&mut self, id: ServerId) -> Option<&mut Member> {
        self.members.iter_mut().find(|m| m.id == id)
    }

    /// Merges one wire record under the stamp rule. Returns whether the
    /// membership changed. `at_epoch` keys the change-log entry.
    fn apply_record(&mut self, record: &MemberRecord, at_epoch: u64) -> bool {
        let stamp = Stamp {
            origin: record.origin,
            version: record.version,
        };
        let current = self
            .members
            .iter()
            .find(|m| m.id.0 == record.id)
            .map(|m| m.stamp)
            .or_else(|| {
                self.tombstones.get(&record.id).map(|t| Stamp {
                    origin: t.origin,
                    version: t.version,
                })
            });
        match current {
            // Known record: only a strictly winning stamp replaces it
            // (equal stamps are duplicates — idempotence).
            Some(cur) if !stamp.wins_over(cur) => return false,
            Some(_) => {}
            // Unknown record whose write this replica has already seen:
            // it was superseded and then forgotten (e.g. a pruned
            // tombstone); re-inserting it would resurrect stale state.
            None if stamp.covered_by(&self.vector) => return false,
            None => {}
        }
        match MemberState::from_wire(record.state) {
            None => {
                self.members.retain(|m| m.id.0 != record.id);
                self.tombstones.insert(record.id, record.clone());
                self.prune_tombstones();
            }
            Some(state) => {
                // A record whose address does not parse cannot be
                // routed to; drop it rather than poison the ring.
                let Ok(addr) = record.addr.parse::<SocketAddr>() else {
                    return false;
                };
                self.tombstones.remove(&record.id);
                match self.members.iter_mut().find(|m| m.id.0 == record.id) {
                    Some(member) => {
                        member.addr = addr;
                        member.name = record.name.clone();
                        member.state = state;
                        member.weight = record.weight;
                        member.stamp = stamp;
                    }
                    None => self.members.push(Member {
                        id: ServerId(record.id),
                        addr,
                        name: record.name.clone(),
                        state,
                        weight: record.weight,
                        stamp,
                    }),
                }
            }
        }
        self.next_id = self.next_id.max(record.id.saturating_add(1));
        self.log.push_back((at_epoch, record.clone()));
        true
    }
}

/// The mutable, epoch-versioned membership directory (see the module
/// docs). Cheap to share: servers, clients, the health checker, and the
/// fleet warm-up controller all hold the same `Arc<Directory>` — or, in
/// a replicated fleet, each server holds its own and converges through
/// [`Directory::delta_by_vector`]/[`Directory::apply_delta`].
#[derive(Debug)]
pub struct Directory {
    inner: Mutex<DirInner>,
    published: RwLock<Arc<RingSnapshot>>,
}

/// Recovers a poisoned lock: every mutation leaves the directory state
/// consistent before unlocking, so a panicking *caller* must not wedge
/// membership for the whole fleet.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Default for Directory {
    fn default() -> Self {
        Self::new()
    }
}

impl Directory {
    /// An empty directory at epoch 0 (members join dynamically), writing
    /// with the [`UNATTRIBUTED`] origin — the right shape for clients
    /// and single-directory fleets.
    pub fn new() -> Self {
        Self::with_origin(UNATTRIBUTED)
    }

    /// An empty directory replica writing with `origin`'s identity — the
    /// shape a server's own replica takes ([`Directory::join_as`]
    /// announces the server itself; gossip spreads everything else).
    pub fn new_replica(origin: ServerId) -> Self {
        Self::with_origin(origin.0)
    }

    fn with_origin(origin: u64) -> Self {
        Directory {
            inner: Mutex::new(DirInner {
                origin,
                epoch: 0,
                vector: BTreeMap::new(),
                next_id: 0,
                members: Vec::new(),
                tombstones: BTreeMap::new(),
                log: VecDeque::new(),
                log_floor: 0,
            }),
            published: RwLock::new(Arc::new(RingSnapshot::build(0, Vec::new(), Vec::new()))),
        }
    }

    /// A directory pre-populated with `entries` (one join per entry, so
    /// the resulting epoch equals the entry count).
    pub fn bootstrap<I: IntoIterator<Item = ServerEntry>>(entries: I) -> Self {
        let dir = Directory::new();
        for entry in entries {
            dir.join(entry.addr, &entry.name);
        }
        dir
    }

    /// A directory cloned from a published snapshot, preserving ids,
    /// epoch, and the epoch vector — how a remote client bootstraps its
    /// local membership view before keeping it current through
    /// `DirectoryUpdate`/`GossipDelta` deltas.
    pub fn from_snapshot(snapshot: &RingSnapshot) -> Self {
        let members = snapshot.members().to_vec();
        let next_id = members.iter().map(|m| m.id.0 + 1).max().unwrap_or(0);
        let epoch = snapshot.epoch();
        let mut vector: BTreeMap<u64, u64> = snapshot.vector().iter().copied().collect();
        // Uphold `epoch == sum(vector)` even for a vector-less legacy
        // snapshot: attribute the shortfall to the unattributed origin.
        let sum: u64 = vector.values().fold(0u64, |a, &v| a.saturating_add(v));
        if sum < epoch {
            *vector.entry(UNATTRIBUTED).or_insert(0) += epoch - sum;
        }
        Directory {
            inner: Mutex::new(DirInner {
                origin: UNATTRIBUTED,
                epoch,
                vector,
                next_id,
                members: members.clone(),
                tombstones: BTreeMap::new(),
                log: VecDeque::new(),
                // Nothing before `epoch` is replayable from here.
                log_floor: epoch,
            }),
            published: RwLock::new(Arc::new(RingSnapshot::build(
                epoch,
                snapshot.vector().to_vec(),
                members,
            ))),
        }
    }

    /// The current membership epoch.
    pub fn epoch(&self) -> u64 {
        self.snapshot().epoch()
    }

    /// The current per-origin epoch vector (ascending by origin) — what
    /// an anti-entropy pull presents to a peer.
    pub fn epoch_vector(&self) -> Vec<(u64, u64)> {
        lock(&self.inner).vector_list()
    }

    /// This directory's stamp origin ([`UNATTRIBUTED`] unless built with
    /// [`Directory::new_replica`]).
    pub fn origin(&self) -> u64 {
        lock(&self.inner).origin
    }

    /// The current published snapshot (an `Arc` clone under a read lock;
    /// the request path's only touch on the control plane).
    pub fn snapshot(&self) -> Arc<RingSnapshot> {
        Arc::clone(
            &self
                .published
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        )
    }

    /// The lease holder under the current snapshot (see
    /// [`RingSnapshot::lease_holder`]).
    pub fn lease_holder(&self) -> Option<ServerId> {
        self.snapshot().lease_holder()
    }

    /// Publishes a committed snapshot. Mutations commit under the inner
    /// mutex but publish after dropping it, so two racing mutations can
    /// arrive here out of order — the epoch guard keeps the published
    /// view (which `epoch()`, `snapshot()`, and the server fence all
    /// read) from ever regressing to a stale membership.
    fn publish(&self, snapshot: Arc<RingSnapshot>) {
        let mut published = self
            .published
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if snapshot.epoch() > published.epoch() {
            *published = snapshot;
        }
    }

    /// Adds a server (state `Up`) and returns its stable id, bumping the
    /// epoch. Joining an address that is already a live member marks
    /// that member `Up` again and returns its existing id (idempotent
    /// rejoin after a suspect mark or an aborted drain); re-joining an
    /// already-`Up` member is a pure no-op — no epoch bump, so a retried
    /// bootstrap does not fence the whole fleet for nothing.
    pub fn join(&self, addr: SocketAddr, name: &str) -> ServerId {
        self.join_weighted(addr, name, 1)
    }

    /// [`Directory::join`] with an explicit ring weight (clamped to
    /// `1..=`[`MAX_WEIGHT`] at ring build).
    pub fn join_weighted(&self, addr: SocketAddr, name: &str, weight: u32) -> ServerId {
        let mut inner = lock(&self.inner);
        if let Some(pos) = inner.members.iter().position(|m| m.addr == addr) {
            let id = inner.members[pos].id;
            if inner.members[pos].state == MemberState::Up && inner.members[pos].weight == weight {
                return id;
            }
            let prev = inner.members[pos].stamp.version;
            let stamp = inner.bump_over(prev);
            let existing = &mut inner.members[pos];
            existing.state = MemberState::Up;
            existing.weight = weight;
            existing.stamp = stamp;
            let record = existing.to_record();
            let snap = inner.commit(record);
            drop(inner);
            self.publish(snap);
            return id;
        }
        let id = ServerId(inner.next_id);
        inner.next_id += 1;
        let stamp = inner.bump();
        let member = Member {
            id,
            addr,
            name: name.to_string(),
            state: MemberState::Up,
            weight,
            stamp,
        };
        let record = member.to_record();
        inner.members.push(member);
        let snap = inner.commit(record);
        drop(inner);
        self.publish(snap);
        id
    }

    /// Self-announcement with an operator-assigned id: upserts member
    /// `id` as `Up` at `addr` with the given name and weight, bumping
    /// the epoch (and clearing any tombstone for the id — a server
    /// evicted during a partition re-announces itself with a fresh,
    /// winning stamp). A no-op (returning `false`) when the member is
    /// already present in exactly this shape.
    pub fn join_as(&self, id: ServerId, addr: SocketAddr, name: &str, weight: u32) -> bool {
        let mut inner = lock(&self.inner);
        if let Some(member) = inner.member_mut(id) {
            if member.state == MemberState::Up
                && member.addr == addr
                && member.weight == weight
                && member.name == name
            {
                return false;
            }
        }
        // Out-stamp whatever this announcement replaces — in particular
        // a peer's eviction tombstone, so a single re-announce wins the
        // merge everywhere.
        let prev = inner
            .member_mut(id)
            .map(|m| m.stamp.version)
            .into_iter()
            .chain(inner.tombstones.get(&id.0).map(|t| t.version))
            .max()
            .unwrap_or(0);
        let stamp = inner.bump_over(prev);
        inner.tombstones.remove(&id.0);
        let member = Member {
            id,
            addr,
            name: name.to_string(),
            state: MemberState::Up,
            weight,
            stamp,
        };
        match inner.members.iter_mut().find(|m| m.id == id) {
            Some(existing) => *existing = member.clone(),
            None => inner.members.push(member.clone()),
        }
        inner.next_id = inner.next_id.max(id.0.saturating_add(1));
        let record = member.to_record();
        let snap = inner.commit(record);
        drop(inner);
        self.publish(snap);
        true
    }

    /// Removes a member (crash eviction or completed drain), bumping the
    /// epoch. Returns whether the member existed.
    pub fn leave(&self, id: ServerId) -> bool {
        self.mutate(id, None)
    }

    /// Marks a member draining: it stays in the membership (existing
    /// sessions finish there) but leaves the ring, so no new session
    /// homes on it. Returns whether the member existed.
    pub fn drain(&self, id: ServerId) -> bool {
        self.mutate(id, Some(MemberState::Draining))
    }

    /// Marks a member suspect (failed health probes): out of the ring
    /// until [`Directory::mark_up`] or eviction. Returns whether the
    /// member existed.
    pub fn mark_suspect(&self, id: ServerId) -> bool {
        self.mutate(id, Some(MemberState::Suspect))
    }

    /// Marks a member healthy and routable again. Returns whether the
    /// member existed.
    pub fn mark_up(&self, id: ServerId) -> bool {
        self.mutate(id, Some(MemberState::Up))
    }

    /// Compare-and-set state transition: moves the member from `from` to
    /// `to` only if it is currently in `from`; returns whether the
    /// transition happened. This is what the health checker uses — its
    /// probe verdicts are based on a sweep-start snapshot that may be
    /// seconds stale, and an unconditional `mark_up` after a successful
    /// probe could override a `drain` issued mid-sweep.
    pub fn transition(&self, id: ServerId, from: MemberState, to: MemberState) -> bool {
        let mut inner = lock(&self.inner);
        let Some(member) = inner.member_mut(id) else {
            return false;
        };
        if member.state != from || from == to {
            return false;
        }
        let prev = member.stamp.version;
        let stamp = inner.bump_over(prev);
        let member = inner.member_mut(id).expect("member checked above");
        member.state = to;
        member.stamp = stamp;
        let record = member.to_record();
        let snap = inner.commit(record);
        drop(inner);
        self.publish(snap);
        true
    }

    /// The shared mutation path: `None` removes, `Some(state)` restates.
    /// No-op (and no epoch bump) when the member is absent or already in
    /// the requested state.
    fn mutate(&self, id: ServerId, state: Option<MemberState>) -> bool {
        let mut inner = lock(&self.inner);
        let record = match state {
            None => {
                let Some(pos) = inner.members.iter().position(|m| m.id == id) else {
                    return false;
                };
                let prev = inner.members[pos].stamp.version;
                let stamp = inner.bump_over(prev);
                let removed = inner.members.remove(pos);
                let record = MemberRecord {
                    state: MemberWireState::Left,
                    origin: stamp.origin,
                    version: stamp.version,
                    ..removed.to_record()
                };
                inner.tombstones.insert(id.0, record.clone());
                inner.prune_tombstones();
                record
            }
            Some(new_state) => {
                let Some(member) = inner.member_mut(id) else {
                    return false;
                };
                if member.state == new_state {
                    return true;
                }
                let prev = member.stamp.version;
                let stamp = inner.bump_over(prev);
                let member = inner.member_mut(id).expect("member checked above");
                member.state = new_state;
                member.stamp = stamp;
                member.to_record()
            }
        };
        let snap = inner.commit(record);
        drop(inner);
        self.publish(snap);
        true
    }

    /// Applies a membership delta — from a server's `Sync` answer or an
    /// anti-entropy `GossipDelta` — under the stamp merge rule: each
    /// record lands only if its stamp strictly wins over what this
    /// replica holds, removals become tombstones, and the delta's epoch
    /// vector folds in by pointwise maximum. Order-independent,
    /// duplicate-safe, and convergent (see the module docs); returns
    /// whether anything changed.
    ///
    /// A *full* delta additionally removes members this replica holds
    /// that are absent from the snapshot **and** whose stamps the
    /// sender's vector covers — the sender saw those writes and still
    /// excludes the member, so the member was removed in a gap the
    /// change log could not replay. (Members with uncovered stamps are
    /// concurrent news the sender missed; they stay.)
    pub fn apply_delta(&self, delta: &DirectoryDelta) -> bool {
        let mut inner = lock(&self.inner);
        let mut changed = false;
        for record in &delta.members {
            changed |= inner.apply_record(record, delta.epoch);
        }
        if delta.full && !delta.vector.is_empty() {
            let sender: BTreeMap<u64, u64> = delta.vector.iter().copied().collect();
            let mentioned = |id: u64| delta.members.iter().any(|r| r.id == id);
            inner.members.retain(|m| {
                let drop = !mentioned(m.id.0) && m.stamp.covered_by(&sender);
                changed |= drop;
                !drop
            });
        }
        // Fold in the sender's vector — and the stamps of the records
        // just applied, so coverage claims always include every write
        // this replica has incorporated.
        let stamps = delta.members.iter().map(|r| (r.origin, r.version));
        for (origin, version) in delta.vector.iter().copied().chain(stamps) {
            let seen = inner.vector.entry(origin).or_insert(0);
            if version > *seen {
                *seen = version;
                changed = true;
            }
        }
        if !changed {
            return false;
        }
        let sum = inner
            .vector
            .values()
            .fold(0u64, |a, &v| a.saturating_add(v));
        inner.epoch = inner.epoch.max(sum);
        if delta.full {
            // A snapshot replaced the membership wholesale: the log no
            // longer knows which members were *removed* between our old
            // epoch and the snapshot's, so nothing older than the
            // snapshot epoch may be answered incrementally from here.
            inner.log.clear();
            inner.log_floor = inner.epoch;
        }
        inner.truncate_log();
        let snap = inner.snapshot();
        drop(inner);
        self.publish(snap);
        true
    }

    /// The membership changes between `epoch` and now, deduplicated to
    /// each member's latest state — or a full snapshot when the change
    /// log has been truncated past `epoch`. The empty delta (current
    /// epoch, no members) answers an already-current requester.
    ///
    /// Scalar-epoch filtering is only meaningful within one replica's
    /// lineage (the v4 client `Sync` flow: bootstrap from this replica's
    /// snapshot, then deltas from the same replica). Cross-replica
    /// convergence uses [`Directory::delta_by_vector`] instead.
    pub fn delta_since(&self, epoch: u64) -> DirectoryDelta {
        let inner = lock(&self.inner);
        if epoch >= inner.epoch {
            return DirectoryDelta {
                epoch: inner.epoch,
                full: false,
                vector: inner.vector_list(),
                members: Vec::new(),
            };
        }
        if epoch >= inner.log_floor {
            // Dedup keep-last: later changes to the same member override
            // earlier ones within the window.
            let mut members: Vec<MemberRecord> = Vec::new();
            for (change_epoch, record) in &inner.log {
                if *change_epoch <= epoch {
                    continue;
                }
                match members.iter_mut().find(|r| r.id == record.id) {
                    Some(existing) => *existing = record.clone(),
                    None => members.push(record.clone()),
                }
            }
            return DirectoryDelta {
                epoch: inner.epoch,
                full: false,
                vector: inner.vector_list(),
                members,
            };
        }
        let mut members: Vec<MemberRecord> = inner.members.iter().map(Member::to_record).collect();
        members.extend(inner.tombstones.values().cloned());
        DirectoryDelta {
            epoch: inner.epoch,
            full: true,
            vector: inner.vector_list(),
            members,
        }
    }

    /// The anti-entropy answer to a peer presenting `their` epoch
    /// vector: every record — live members and removal tombstones —
    /// whose stamp the vector does not cover, plus this replica's own
    /// vector. Never `full`: anti-entropy merges record by record, so a
    /// delta must not claim snapshot semantics that would erase the
    /// peer's concurrent writes.
    pub fn delta_by_vector(&self, their: &[(u64, u64)]) -> DirectoryDelta {
        let theirs: BTreeMap<u64, u64> = their.iter().copied().collect();
        let inner = lock(&self.inner);
        let uncovered =
            |origin: u64, version: u64| theirs.get(&origin).copied().unwrap_or(0) < version;
        let mut members: Vec<MemberRecord> = inner
            .members
            .iter()
            .filter(|m| uncovered(m.stamp.origin, m.stamp.version))
            .map(Member::to_record)
            .collect();
        members.extend(
            inner
                .tombstones
                .values()
                .filter(|t| uncovered(t.origin, t.version))
                .cloned(),
        );
        DirectoryDelta {
            epoch: inner.epoch,
            full: false,
            vector: inner.vector_list(),
            members,
        }
    }

    /// The member a draining server should hand an in-flight `session`
    /// to: the first `Up` member on the session's routing order that is
    /// not the drainer itself. `Some` only while member `self_id` is
    /// actually `Draining` — this doubles as the drain check, so the
    /// serving path asks one question per push.
    pub fn handoff_successor(&self, session: &str, self_id: u64) -> Option<Member> {
        let snap = self.snapshot();
        if snap.member(ServerId(self_id))?.state != MemberState::Draining {
            return None;
        }
        snap.route(session)
            .into_iter()
            .filter(|id| id.0 != self_id)
            .find_map(|id| {
                snap.member(id)
                    .filter(|m| m.state == MemberState::Up)
                    .cloned()
            })
    }
}

impl DirectoryView for Directory {
    fn epoch(&self) -> u64 {
        Directory::epoch(self)
    }

    fn delta_since(&self, epoch: u64) -> DirectoryDelta {
        Directory::delta_since(self, epoch)
    }

    fn gossip_delta(&self, vector: &[(u64, u64)]) -> Option<DirectoryDelta> {
        Some(Directory::delta_by_vector(self, vector))
    }

    fn successor_for(&self, session: &str, self_id: u64) -> Option<MemberRecord> {
        Directory::handoff_successor(self, session, self_id).map(|m| m.to_record())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(i: usize) -> SocketAddr {
        format!("10.0.0.{}:7000", i + 1)
            .parse()
            .expect("valid addr")
    }

    fn dir(n: usize) -> Directory {
        Directory::bootstrap((0..n).map(|i| ServerEntry {
            addr: addr(i),
            name: format!("local-{i}"),
        }))
    }

    #[test]
    fn home_is_deterministic_and_sticky() {
        let d = dir(3);
        let snap = d.snapshot();
        for session in ["alice", "bob", "resnet-worker-17", ""] {
            assert_eq!(snap.home(session), snap.home(session));
            assert!(snap.member(snap.home(session).unwrap()).is_some());
        }
    }

    #[test]
    fn route_covers_every_server_once_starting_at_home() {
        let d = dir(5);
        let snap = d.snapshot();
        for session in ["a", "b", "c", "worker-9000"] {
            let route = snap.route(session);
            assert_eq!(route[0], snap.home(session).unwrap());
            let mut sorted = route.clone();
            sorted.sort_unstable();
            assert_eq!(
                sorted,
                (0..5).map(|i| ServerId(i as u64)).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn sessions_spread_across_servers() {
        let snap = dir(3).snapshot();
        let mut hits = [0usize; 3];
        for i in 0..300 {
            hits[snap.home(&format!("session-{i}")).unwrap().0 as usize] += 1;
        }
        // Consistent hashing with 64 vnodes/server is not perfectly even,
        // but nothing should be starved or dominant.
        for &h in &hits {
            assert!(h > 30, "server starved: {hits:?}");
        }
    }

    #[test]
    fn weighted_member_takes_a_proportional_arc() {
        let d = dir(2);
        let heavy = d.join_weighted(addr(7), "heavy", 4);
        let snap = d.snapshot();
        let mut hits = [0usize; 3];
        for i in 0..1200 {
            hits[snap.home(&format!("w-session-{i}")).unwrap().0 as usize] += 1;
        }
        let heavy_share = hits[heavy.0 as usize] as f64 / 1200.0;
        // Weight 4 of total weight 6 ⇒ ideal 2/3; allow hashing slack.
        assert!(
            (0.5..0.85).contains(&heavy_share),
            "weight-4 member took {heavy_share:.2} of sessions: {hits:?}"
        );
        // And the base members are not starved.
        assert!(hits[0] > 60 && hits[1] > 60, "{hits:?}");
    }

    #[test]
    fn epoch_bumps_on_every_mutation_and_is_monotonic() {
        let d = dir(2);
        assert_eq!(d.epoch(), 2);
        let id = d.join(addr(9), "late");
        assert_eq!(d.epoch(), 3);
        assert!(d.drain(id));
        assert_eq!(d.epoch(), 4);
        assert!(d.mark_suspect(id));
        assert_eq!(d.epoch(), 5);
        assert!(d.mark_up(id));
        assert_eq!(d.epoch(), 6);
        assert!(d.leave(id));
        assert_eq!(d.epoch(), 7);
        // Absent members are no-ops with no epoch bump.
        assert!(!d.leave(id));
        assert!(!d.drain(ServerId(404)));
        assert_eq!(d.epoch(), 7);
        // The scalar epoch is the vector sum throughout.
        let sum: u64 = d.epoch_vector().iter().map(|&(_, v)| v).sum();
        assert_eq!(d.epoch(), sum);
    }

    #[test]
    fn draining_member_leaves_the_ring_but_not_the_membership() {
        let d = dir(3);
        let snap = d.snapshot();
        // Find a session homed on each server, then drain one server.
        let victim = snap.home("victim-session").unwrap();
        assert!(d.drain(victim));
        let drained = d.snapshot();
        assert_eq!(drained.len(), 3, "drained member stays a member");
        assert_ne!(drained.home("victim-session").unwrap(), victim);
        // And no session homes on it any more.
        for i in 0..200 {
            assert_ne!(drained.home(&format!("s{i}")).unwrap(), victim);
        }
        // Last-resort failover still reaches it at the end of the route.
        assert!(drained.route("victim-session").contains(&victim));
    }

    #[test]
    fn all_members_down_fall_back_to_degraded_routing() {
        let d = dir(2);
        let ids: Vec<ServerId> = d.snapshot().members().iter().map(|m| m.id).collect();
        for id in &ids {
            d.mark_suspect(*id);
        }
        let snap = d.snapshot();
        assert!(snap.home("anyone").is_some(), "degraded ring still routes");
    }

    #[test]
    fn rejoin_same_addr_is_idempotent() {
        let d = dir(2);
        let snap = d.snapshot();
        let id = snap.members()[0].id;
        d.mark_suspect(id);
        let rejoined = d.join(snap.members()[0].addr, "ignored");
        assert_eq!(rejoined, id, "same address keeps its stable id");
        assert_eq!(
            d.snapshot().member(id).unwrap().state,
            MemberState::Up,
            "rejoin heals the suspect mark"
        );
        // Re-joining an already-Up member changes nothing and must not
        // fence the fleet with a pointless epoch bump.
        let epoch = d.epoch();
        assert_eq!(d.join(snap.members()[0].addr, "ignored"), id);
        assert_eq!(d.epoch(), epoch);
    }

    #[test]
    fn transition_is_compare_and_set() {
        let d = dir(1);
        let id = d.snapshot().members()[0].id;
        // Wrong `from` is a no-op with no epoch bump.
        let epoch = d.epoch();
        assert!(!d.transition(id, MemberState::Suspect, MemberState::Up));
        assert_eq!(d.epoch(), epoch);
        // A drain is never overridden by the suspect-recovery CAS (the
        // health checker's stale-snapshot hazard).
        d.drain(id);
        assert!(!d.transition(id, MemberState::Suspect, MemberState::Up));
        assert_eq!(
            d.snapshot().member(id).unwrap().state,
            MemberState::Draining
        );
        d.mark_suspect(id);
        assert!(d.transition(id, MemberState::Suspect, MemberState::Up));
        assert_eq!(d.snapshot().member(id).unwrap().state, MemberState::Up);
    }

    #[test]
    fn delta_since_replays_changes_and_applies_cleanly() {
        let d = dir(3);
        let follower = Directory::from_snapshot(&d.snapshot());
        assert_eq!(follower.epoch(), d.epoch());

        let late = d.join(addr(7), "late");
        let victim = d.snapshot().members()[0].id;
        d.drain(victim);
        d.leave(victim);

        let delta = d.delta_since(follower.epoch());
        assert!(!delta.full, "log covers the follower's epoch");
        assert!(follower.apply_delta(&delta));
        assert_eq!(follower.epoch(), d.epoch());
        let snap = follower.snapshot();
        assert!(snap.member(late).is_some());
        assert!(snap.member(victim).is_none());
        // The two views now route identically.
        let leader = d.snapshot();
        for i in 0..100 {
            let s = format!("s{i}");
            assert_eq!(snap.home(&s), leader.home(&s));
        }
        // Re-applying the same delta is a no-op.
        assert!(!follower.apply_delta(&delta));
    }

    #[test]
    fn truncated_log_falls_back_to_full_snapshot() {
        let d = dir(1);
        let follower = Directory::from_snapshot(&d.snapshot());
        // Push far more changes than the log retains.
        for i in 0..(LOG_CAP + 40) {
            let id = d.join(addr(2 + (i % 8)), "churner");
            d.leave(id);
        }
        let id = d.join(addr(99), "kept");
        let delta = d.delta_since(follower.epoch());
        assert!(delta.full, "ancient epoch must get a snapshot");
        assert!(follower.apply_delta(&delta));
        assert_eq!(follower.epoch(), d.epoch());
        assert!(follower.snapshot().member(id).is_some());
        assert_eq!(follower.snapshot().len(), d.snapshot().len());
    }

    #[test]
    fn full_snapshot_apply_truncates_incremental_history() {
        let d = dir(2);
        let follower = Directory::from_snapshot(&d.snapshot());
        // Evolve the leader far past its change log.
        for i in 0..(LOG_CAP + 10) {
            let id = d.join(addr(10 + (i as u64 % 5) as usize), "x");
            d.leave(id);
        }
        let gap_epoch = follower.epoch() + 1;
        let delta = d.delta_since(follower.epoch());
        assert!(delta.full);
        assert!(follower.apply_delta(&delta));
        // The follower cannot reconstruct removals inside the gap it
        // jumped over: an in-gap epoch must be answered with a full
        // snapshot, never an incremental delta missing `Left` records.
        assert!(follower.delta_since(gap_epoch).full);
    }

    #[test]
    fn empty_directory_routes_nothing() {
        let d = Directory::new();
        assert_eq!(d.epoch(), 0);
        assert!(d.snapshot().home("anyone").is_none());
        assert!(d.snapshot().route("anyone").is_empty());
    }

    #[test]
    fn replicas_converge_through_bidirectional_gossip() {
        // Two server replicas, each knowing only itself — the real
        // bootstrap shape of a replicated fleet.
        let a = Directory::new_replica(ServerId(0));
        let b = Directory::new_replica(ServerId(1));
        assert!(a.join_as(ServerId(0), addr(0), "a", 1));
        assert!(b.join_as(ServerId(1), addr(1), "b", 2));

        // One pull each way converges them.
        assert!(a.apply_delta(&b.delta_by_vector(&a.epoch_vector())));
        assert!(b.apply_delta(&a.delta_by_vector(&b.epoch_vector())));
        assert_eq!(a.epoch(), b.epoch());
        assert_eq!(a.epoch_vector(), b.epoch_vector());
        assert_eq!(a.snapshot().len(), 2);
        assert_eq!(b.snapshot().len(), 2);
        assert_eq!(a.snapshot().member(ServerId(1)).unwrap().weight, 2);

        // Converged replicas exchange empty deltas.
        assert!(a.delta_by_vector(&b.epoch_vector()).members.is_empty());
        assert!(!b.apply_delta(&a.delta_by_vector(&b.epoch_vector())));
    }

    #[test]
    fn concurrent_writes_resolve_deterministically_in_any_order() {
        // A partition: both replicas mutate the same member concurrently.
        let a = Directory::new_replica(ServerId(0));
        let b = Directory::new_replica(ServerId(1));
        a.join_as(ServerId(0), addr(0), "a", 1);
        a.join_as(ServerId(2), addr(2), "c", 1);
        b.apply_delta(&a.delta_by_vector(&b.epoch_vector()));
        b.join_as(ServerId(1), addr(1), "b", 1);
        a.apply_delta(&b.delta_by_vector(&a.epoch_vector()));

        // Partition: a drains member 2 while b marks it suspect.
        assert!(a.drain(ServerId(2)));
        assert!(b.mark_suspect(ServerId(2)));

        // Heal, exchanging deltas in both orders.
        let to_a = b.delta_by_vector(&a.epoch_vector());
        let to_b = a.delta_by_vector(&b.epoch_vector());
        a.apply_delta(&to_a);
        b.apply_delta(&to_b);
        a.apply_delta(&b.delta_by_vector(&a.epoch_vector()));
        b.apply_delta(&a.delta_by_vector(&b.epoch_vector()));
        let sa = a.snapshot().member(ServerId(2)).unwrap().state;
        let sb = b.snapshot().member(ServerId(2)).unwrap().state;
        assert_eq!(sa, sb, "replicas disagree after heal");
        // Equal versions tie-break to the lower origin: a's drain wins.
        assert_eq!(sa, MemberState::Draining);
        assert_eq!(a.epoch(), b.epoch());
    }

    #[test]
    fn removal_tombstone_beats_stale_live_record() {
        let a = Directory::new_replica(ServerId(0));
        a.join_as(ServerId(0), addr(0), "a", 1);
        a.join_as(ServerId(2), addr(2), "c", 1);
        // A stale replica that saw member 2 alive but not its removal.
        let stale = Directory::from_snapshot(&a.snapshot());
        assert!(a.leave(ServerId(2)));

        // The removal reaches the stale replica…
        assert!(stale.apply_delta(&a.delta_by_vector(&stale.epoch_vector())));
        assert!(stale.snapshot().member(ServerId(2)).is_none());
        // …and the stale live record can no longer resurrect it, in
        // either direction.
        let echo = stale.delta_by_vector(&[]);
        let before = a.epoch();
        a.apply_delta(&echo);
        assert!(a.snapshot().member(ServerId(2)).is_none());
        assert_eq!(a.epoch(), before, "stale echo must not advance the epoch");
    }

    #[test]
    fn evicted_replica_rejoins_with_a_winning_stamp() {
        let a = Directory::new_replica(ServerId(0));
        let b = Directory::new_replica(ServerId(1));
        a.join_as(ServerId(0), addr(0), "a", 1);
        b.join_as(ServerId(1), addr(1), "b", 1);
        a.apply_delta(&b.delta_by_vector(&a.epoch_vector()));
        b.apply_delta(&a.delta_by_vector(&b.epoch_vector()));

        // a evicts b during a partition. On heal, b pulls from a and
        // learns of its own eviction…
        assert!(a.leave(ServerId(1)));
        assert!(b.apply_delta(&a.delta_by_vector(&b.epoch_vector())));
        assert!(b.snapshot().member(ServerId(1)).is_none());
        // …then re-announces itself (the gossiper's own-id-absent rule)
        // with a stamp that out-versions the eviction, so one announce
        // wins the merge on both replicas.
        assert!(b.join_as(ServerId(1), addr(1), "b", 1), "self re-announce");
        assert!(a.apply_delta(&b.delta_by_vector(&a.epoch_vector())));
        b.apply_delta(&a.delta_by_vector(&b.epoch_vector()));
        let sa = a.snapshot().member(ServerId(1)).map(|m| m.state);
        let sb = b.snapshot().member(ServerId(1)).map(|m| m.state);
        assert_eq!(sa, Some(MemberState::Up), "re-announce beats eviction");
        assert_eq!(sa, sb);
        assert_eq!(a.epoch(), b.epoch());
        assert_eq!(a.epoch_vector(), b.epoch_vector());
    }

    #[test]
    fn lease_holder_is_lowest_live_id() {
        let d = dir(3);
        assert_eq!(d.lease_holder(), Some(ServerId(0)));
        d.mark_suspect(ServerId(0));
        assert_eq!(d.lease_holder(), Some(ServerId(1)), "lease expires");
        d.mark_up(ServerId(0));
        assert_eq!(d.lease_holder(), Some(ServerId(0)), "lease returns");
        d.mark_suspect(ServerId(0));
        d.mark_suspect(ServerId(1));
        d.mark_suspect(ServerId(2));
        assert_eq!(
            d.lease_holder(),
            Some(ServerId(0)),
            "all-down falls back to lowest id"
        );
        assert_eq!(Directory::new().lease_holder(), None);
    }

    #[test]
    fn handoff_successor_names_an_up_member_only_while_draining() {
        let d = dir(3);
        let snap = d.snapshot();
        let home = snap.home("handoff-session").unwrap();
        assert!(
            d.handoff_successor("handoff-session", home.0).is_none(),
            "not draining: no handoff"
        );
        d.drain(home);
        let succ = d
            .handoff_successor("handoff-session", home.0)
            .expect("draining member has a successor");
        assert_ne!(succ.id, home);
        assert_eq!(succ.state, MemberState::Up);
        assert_eq!(
            succ.id,
            d.snapshot().home("handoff-session").unwrap(),
            "successor is the session's new home"
        );
    }

    #[test]
    fn ring_successor_inherits_the_largest_arc_share() {
        let d = dir(4);
        let snap = d.snapshot();
        let victim = snap.home("succession").unwrap();
        let succ = snap.successor(victim).expect("successor exists");
        assert_ne!(succ, victim);
        // The successor inherits the victim's arcs: sessions homed on
        // the victim mostly move to it after the victim leaves.
        d.leave(victim);
        let after = d.snapshot();
        let mut moved: BTreeMap<ServerId, usize> = BTreeMap::new();
        for i in 0..600 {
            let s = format!("arc-{i}");
            if snap.home(&s) == Some(victim) {
                *moved.entry(after.home(&s).unwrap()).or_insert(0) += 1;
            }
        }
        let top = moved
            .iter()
            .max_by_key(|&(id, &c)| (c, std::cmp::Reverse(*id)))
            .map(|(&id, _)| id);
        assert_eq!(top, Some(succ), "successor did not inherit: {moved:?}");
    }

    #[test]
    fn single_member_has_no_successor() {
        let d = dir(1);
        assert!(d.snapshot().successor(ServerId(0)).is_none());
        assert!(Directory::new().snapshot().successor(ServerId(0)).is_none());
    }
}
