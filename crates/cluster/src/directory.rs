//! The cluster control plane: an epoch-versioned, mutable membership
//! [`Directory`] publishing copy-on-write [`RingSnapshot`]s.
//!
//! PR 2's `ClusterDirectory` was an immutable fleet snapshot: a crash,
//! join, or drain meant rebuilding every client by hand. The [`Directory`]
//! replaces it with a control plane:
//!
//! * **Membership mutations** — [`Directory::join`], [`Directory::leave`],
//!   [`Directory::drain`], and the health checker's
//!   [`Directory::mark_suspect`]/[`Directory::mark_up`] — happen under one
//!   mutex and bump a monotonically increasing **epoch**.
//! * Every mutation **publishes** a fresh immutable [`RingSnapshot`]
//!   (members + consistent-hash ring) behind a read lock held only for an
//!   `Arc` clone, so the request path routes on an immutable snapshot and
//!   never contends with membership churn.
//! * A bounded **change log** lets servers answer `Sync{epoch}` with the
//!   exact membership delta ([`Directory::delta_since`]); clients apply it
//!   with [`Directory::apply_delta`]. When the log no longer reaches back
//!   to the requested epoch, a full snapshot is sent instead.
//!
//! Routing stays a consistent-hash ring: each *routable* member
//! contributes [`VIRTUAL_NODES`] points (hashes of `addr#replica`), and a
//! session lands on the first point clockwise of its own hash. Two
//! properties matter for a COT fleet:
//!
//! * **Stickiness** — a session resolves to the same *home* server for as
//!   long as the membership holds (one `Δ` stream per server session).
//! * **Minimal reshuffle** — a join or leave moves only the sessions
//!   whose arcs the changed server owned (property-tested in
//!   `tests/directory_props.rs`).
//!
//! Draining and suspect members stay *in* the membership but out of the
//! ring: existing sessions may finish their work there (hitless drain),
//! while no new session homes on them. If no member is `Up`, the ring
//! falls back to every live member — degraded routing beats none.

use ironman_net::{DirectoryDelta, DirectoryView, MemberRecord, MemberWireState};
use std::collections::VecDeque;
use std::fmt;
use std::net::SocketAddr;
use std::sync::{Arc, Mutex, RwLock};

/// Virtual nodes per server on the hash ring; enough that a 3-server
/// directory spreads sessions within a few percent of evenly.
pub const VIRTUAL_NODES: usize = 64;

/// Change-log entries retained for delta replies; a client whose epoch
/// fell further behind than this receives a full snapshot instead.
const LOG_CAP: usize = 128;

/// FNV-1a with a murmur-style finalizer: plain FNV does not avalanche
/// its high bits on short, similar strings (all `session-N` names would
/// land on one arc of the ring), so the mix step is load-bearing.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^ (h >> 33)
}

/// A stable server identity, assigned at [`Directory::join`] and kept
/// across state changes; the unit clients key their per-server sessions
/// and load counters by (directory *indices* shift as members come and
/// go — ids never do).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ServerId(pub u64);

impl fmt::Display for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A fleet member's lifecycle state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemberState {
    /// Serving and routable.
    Up,
    /// Finishing existing sessions; receives no new homes (hitless
    /// drain).
    Draining,
    /// Failed recent health probes; out of the ring until it recovers or
    /// the checker evicts it.
    Suspect,
}

impl MemberState {
    fn to_wire(self) -> MemberWireState {
        match self {
            MemberState::Up => MemberWireState::Up,
            MemberState::Draining => MemberWireState::Draining,
            MemberState::Suspect => MemberWireState::Suspect,
        }
    }

    fn from_wire(state: MemberWireState) -> Option<Self> {
        match state {
            MemberWireState::Up => Some(MemberState::Up),
            MemberWireState::Draining => Some(MemberState::Draining),
            MemberWireState::Suspect => Some(MemberState::Suspect),
            MemberWireState::Left => None,
        }
    }
}

/// One server known to the directory.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Member {
    /// Stable identity.
    pub id: ServerId,
    /// The server's listening address.
    pub addr: SocketAddr,
    /// Display name (logs, stats).
    pub name: String,
    /// Current lifecycle state.
    pub state: MemberState,
}

impl Member {
    fn to_record(&self) -> MemberRecord {
        MemberRecord {
            id: self.id.0,
            state: self.state.to_wire(),
            addr: self.addr.to_string(),
            name: self.name.clone(),
        }
    }
}

/// A bare address + name pair for bootstrapping a directory before ids
/// are assigned.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServerEntry {
    /// The server's listening address.
    pub addr: SocketAddr,
    /// Display name (logs, stats).
    pub name: String,
}

/// An immutable point-in-time view of the fleet: the members at one
/// epoch and the consistent-hash ring over the routable ones. The
/// request path routes on a snapshot and never touches the directory's
/// locks.
#[derive(Clone, Debug)]
pub struct RingSnapshot {
    epoch: u64,
    members: Vec<Member>,
    /// Sorted `(ring point, members index)` pairs over routable members.
    ring: Vec<(u64, usize)>,
}

impl RingSnapshot {
    fn build(epoch: u64, members: Vec<Member>) -> Self {
        // Up members own the ring; with none up, every live member does
        // (degraded routing beats an unroutable fleet).
        let routable: Vec<usize> = {
            let up: Vec<usize> = members
                .iter()
                .enumerate()
                .filter(|(_, m)| m.state == MemberState::Up)
                .map(|(i, _)| i)
                .collect();
            if up.is_empty() {
                (0..members.len()).collect()
            } else {
                up
            }
        };
        let mut ring = Vec::with_capacity(routable.len() * VIRTUAL_NODES);
        for &idx in &routable {
            for replica in 0..VIRTUAL_NODES {
                let point = fnv1a(format!("{}#{replica}", members[idx].addr).as_bytes());
                ring.push((point, idx));
            }
        }
        ring.sort_unstable();
        RingSnapshot {
            epoch,
            members,
            ring,
        }
    }

    /// The membership epoch this snapshot was published at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// All members, in join order (every state, including draining and
    /// suspect).
    pub fn members(&self) -> &[Member] {
        &self.members
    }

    /// The member with id `id`, if present.
    pub fn member(&self, id: ServerId) -> Option<&Member> {
        self.members.iter().find(|m| m.id == id)
    }

    /// Number of members (every state).
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the fleet has no members at all.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The session's home server: the first ring point clockwise of the
    /// session's hash, or `None` when the fleet is empty.
    pub fn home(&self, session: &str) -> Option<ServerId> {
        if self.ring.is_empty() {
            return None;
        }
        let h = fnv1a(session.as_bytes());
        let at = self.ring.partition_point(|&(point, _)| point < h);
        Some(self.members[self.ring[at % self.ring.len()].1].id)
    }

    /// The session's full routing order: home first, then each remaining
    /// *routable* server in the order the ring walk first reaches it,
    /// then any non-routable members (draining/suspect) as a last
    /// resort. Every member appears exactly once; walking this list is
    /// the deterministic failover policy.
    pub fn route(&self, session: &str) -> Vec<ServerId> {
        let mut order = Vec::with_capacity(self.members.len());
        if !self.ring.is_empty() {
            let h = fnv1a(session.as_bytes());
            let start = self.ring.partition_point(|&(point, _)| point < h);
            for offset in 0..self.ring.len() {
                let id = self.members[self.ring[(start + offset) % self.ring.len()].1].id;
                if !order.contains(&id) {
                    order.push(id);
                }
            }
        }
        for m in &self.members {
            if !order.contains(&m.id) {
                order.push(m.id);
            }
        }
        order
    }
}

#[derive(Debug)]
struct DirInner {
    epoch: u64,
    next_id: u64,
    members: Vec<Member>,
    /// `(epoch, change)` entries, oldest first; covers `(log_floor,
    /// epoch]`.
    log: VecDeque<(u64, MemberRecord)>,
    /// Epoch below which the log has been truncated.
    log_floor: u64,
}

impl DirInner {
    /// Bumps the epoch, records `record` in the change log, and returns
    /// the snapshot to publish.
    fn commit(&mut self, record: MemberRecord) -> Arc<RingSnapshot> {
        self.epoch += 1;
        self.log.push_back((self.epoch, record));
        self.truncate_log();
        Arc::new(RingSnapshot::build(self.epoch, self.members.clone()))
    }

    fn truncate_log(&mut self) {
        while self.log.len() > LOG_CAP {
            if let Some((epoch, _)) = self.log.pop_front() {
                self.log_floor = epoch;
            }
        }
    }

    fn member_mut(&mut self, id: ServerId) -> Option<&mut Member> {
        self.members.iter_mut().find(|m| m.id == id)
    }
}

/// The mutable, epoch-versioned membership directory (see the module
/// docs). Cheap to share: servers, clients, the health checker, and the
/// fleet warm-up controller all hold the same `Arc<Directory>`.
#[derive(Debug)]
pub struct Directory {
    inner: Mutex<DirInner>,
    published: RwLock<Arc<RingSnapshot>>,
}

/// Recovers a poisoned lock: every mutation leaves the directory state
/// consistent before unlocking, so a panicking *caller* must not wedge
/// membership for the whole fleet.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Default for Directory {
    fn default() -> Self {
        Self::new()
    }
}

impl Directory {
    /// An empty directory at epoch 0 (members join dynamically).
    pub fn new() -> Self {
        Directory {
            inner: Mutex::new(DirInner {
                epoch: 0,
                next_id: 0,
                members: Vec::new(),
                log: VecDeque::new(),
                log_floor: 0,
            }),
            published: RwLock::new(Arc::new(RingSnapshot::build(0, Vec::new()))),
        }
    }

    /// A directory pre-populated with `entries` (one join per entry, so
    /// the resulting epoch equals the entry count).
    pub fn bootstrap<I: IntoIterator<Item = ServerEntry>>(entries: I) -> Self {
        let dir = Directory::new();
        for entry in entries {
            dir.join(entry.addr, &entry.name);
        }
        dir
    }

    /// A directory cloned from a published snapshot, preserving ids and
    /// epoch — how a remote client bootstraps its local membership view
    /// before keeping it current through `DirectoryUpdate` deltas.
    pub fn from_snapshot(snapshot: &RingSnapshot) -> Self {
        let members = snapshot.members().to_vec();
        let next_id = members.iter().map(|m| m.id.0 + 1).max().unwrap_or(0);
        let epoch = snapshot.epoch();
        Directory {
            inner: Mutex::new(DirInner {
                epoch,
                next_id,
                members: members.clone(),
                log: VecDeque::new(),
                // Nothing before `epoch` is replayable from here.
                log_floor: epoch,
            }),
            published: RwLock::new(Arc::new(RingSnapshot::build(epoch, members))),
        }
    }

    /// The current membership epoch.
    pub fn epoch(&self) -> u64 {
        self.snapshot().epoch()
    }

    /// The current published snapshot (an `Arc` clone under a read lock;
    /// the request path's only touch on the control plane).
    pub fn snapshot(&self) -> Arc<RingSnapshot> {
        Arc::clone(
            &self
                .published
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        )
    }

    /// Publishes a committed snapshot. Mutations commit under the inner
    /// mutex but publish after dropping it, so two racing mutations can
    /// arrive here out of order — the epoch guard keeps the published
    /// view (which `epoch()`, `snapshot()`, and the server fence all
    /// read) from ever regressing to a stale membership.
    fn publish(&self, snapshot: Arc<RingSnapshot>) {
        let mut published = self
            .published
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if snapshot.epoch() > published.epoch() {
            *published = snapshot;
        }
    }

    /// Adds a server (state `Up`) and returns its stable id, bumping the
    /// epoch. Joining an address that is already a live member marks
    /// that member `Up` again and returns its existing id (idempotent
    /// rejoin after a suspect mark or an aborted drain); re-joining an
    /// already-`Up` member is a pure no-op — no epoch bump, so a retried
    /// bootstrap does not fence the whole fleet for nothing.
    pub fn join(&self, addr: SocketAddr, name: &str) -> ServerId {
        let mut inner = lock(&self.inner);
        if let Some(existing) = inner.members.iter_mut().find(|m| m.addr == addr) {
            let id = existing.id;
            if existing.state == MemberState::Up {
                return id;
            }
            existing.state = MemberState::Up;
            let record = existing.to_record();
            let snap = inner.commit(record);
            drop(inner);
            self.publish(snap);
            return id;
        }
        let id = ServerId(inner.next_id);
        inner.next_id += 1;
        let member = Member {
            id,
            addr,
            name: name.to_string(),
            state: MemberState::Up,
        };
        let record = member.to_record();
        inner.members.push(member);
        let snap = inner.commit(record);
        drop(inner);
        self.publish(snap);
        id
    }

    /// Removes a member (crash eviction or completed drain), bumping the
    /// epoch. Returns whether the member existed.
    pub fn leave(&self, id: ServerId) -> bool {
        self.mutate(id, None)
    }

    /// Marks a member draining: it stays in the membership (existing
    /// sessions finish there) but leaves the ring, so no new session
    /// homes on it. Returns whether the member existed.
    pub fn drain(&self, id: ServerId) -> bool {
        self.mutate(id, Some(MemberState::Draining))
    }

    /// Marks a member suspect (failed health probes): out of the ring
    /// until [`Directory::mark_up`] or eviction. Returns whether the
    /// member existed.
    pub fn mark_suspect(&self, id: ServerId) -> bool {
        self.mutate(id, Some(MemberState::Suspect))
    }

    /// Marks a member healthy and routable again. Returns whether the
    /// member existed.
    pub fn mark_up(&self, id: ServerId) -> bool {
        self.mutate(id, Some(MemberState::Up))
    }

    /// Compare-and-set state transition: moves the member from `from` to
    /// `to` only if it is currently in `from`; returns whether the
    /// transition happened. This is what the health checker uses — its
    /// probe verdicts are based on a sweep-start snapshot that may be
    /// seconds stale, and an unconditional `mark_up` after a successful
    /// probe could override a `drain` issued mid-sweep.
    pub fn transition(&self, id: ServerId, from: MemberState, to: MemberState) -> bool {
        let mut inner = lock(&self.inner);
        let Some(member) = inner.member_mut(id) else {
            return false;
        };
        if member.state != from || from == to {
            return false;
        }
        member.state = to;
        let record = member.to_record();
        let snap = inner.commit(record);
        drop(inner);
        self.publish(snap);
        true
    }

    /// The shared mutation path: `None` removes, `Some(state)` restates.
    /// No-op (and no epoch bump) when the member is absent or already in
    /// the requested state.
    fn mutate(&self, id: ServerId, state: Option<MemberState>) -> bool {
        let mut inner = lock(&self.inner);
        let record = match state {
            None => {
                let Some(pos) = inner.members.iter().position(|m| m.id == id) else {
                    return false;
                };
                let removed = inner.members.remove(pos);
                MemberRecord {
                    state: MemberWireState::Left,
                    ..removed.to_record()
                }
            }
            Some(new_state) => {
                let Some(member) = inner.member_mut(id) else {
                    return false;
                };
                if member.state == new_state {
                    return true;
                }
                member.state = new_state;
                member.to_record()
            }
        };
        let snap = inner.commit(record);
        drop(inner);
        self.publish(snap);
        true
    }

    /// Applies a membership delta received from a server (see
    /// [`Directory::delta_since`]); no-op when `delta.epoch` does not
    /// advance this directory. Returns whether anything changed.
    pub fn apply_delta(&self, delta: &DirectoryDelta) -> bool {
        let mut inner = lock(&self.inner);
        if delta.epoch <= inner.epoch {
            return false;
        }
        if delta.full {
            inner.members.clear();
        }
        for record in &delta.members {
            match MemberState::from_wire(record.state) {
                None => inner.members.retain(|m| m.id.0 != record.id),
                Some(state) => {
                    // A record whose address does not parse cannot be
                    // routed to; drop it rather than poison the ring.
                    let Ok(addr) = record.addr.parse::<SocketAddr>() else {
                        continue;
                    };
                    match inner.members.iter_mut().find(|m| m.id.0 == record.id) {
                        Some(member) => {
                            member.addr = addr;
                            member.name = record.name.clone();
                            member.state = state;
                        }
                        None => inner.members.push(Member {
                            id: ServerId(record.id),
                            addr,
                            name: record.name.clone(),
                            state,
                        }),
                    }
                }
            }
            inner.log.push_back((delta.epoch, record.clone()));
        }
        inner.next_id = inner
            .next_id
            .max(delta.members.iter().map(|r| r.id + 1).max().unwrap_or(0));
        inner.epoch = delta.epoch;
        if delta.full {
            // A snapshot replaced the membership wholesale: the log no
            // longer knows which members were *removed* between our old
            // epoch and the snapshot's, so nothing older than the
            // snapshot epoch may be answered incrementally from here.
            inner.log.clear();
            inner.log_floor = delta.epoch;
        }
        inner.truncate_log();
        let snap = Arc::new(RingSnapshot::build(inner.epoch, inner.members.clone()));
        drop(inner);
        self.publish(snap);
        true
    }

    /// The membership changes between `epoch` and now, deduplicated to
    /// each member's latest state — or a full snapshot when the change
    /// log has been truncated past `epoch`. The empty delta (current
    /// epoch, no members) answers an already-current requester.
    pub fn delta_since(&self, epoch: u64) -> DirectoryDelta {
        let inner = lock(&self.inner);
        if epoch >= inner.epoch {
            return DirectoryDelta {
                epoch: inner.epoch,
                full: false,
                members: Vec::new(),
            };
        }
        if epoch >= inner.log_floor {
            // Dedup keep-last: later changes to the same member override
            // earlier ones within the window.
            let mut members: Vec<MemberRecord> = Vec::new();
            for (change_epoch, record) in &inner.log {
                if *change_epoch <= epoch {
                    continue;
                }
                match members.iter_mut().find(|r| r.id == record.id) {
                    Some(existing) => *existing = record.clone(),
                    None => members.push(record.clone()),
                }
            }
            return DirectoryDelta {
                epoch: inner.epoch,
                full: false,
                members,
            };
        }
        DirectoryDelta {
            epoch: inner.epoch,
            full: true,
            members: inner.members.iter().map(Member::to_record).collect(),
        }
    }
}

impl DirectoryView for Directory {
    fn epoch(&self) -> u64 {
        Directory::epoch(self)
    }

    fn delta_since(&self, epoch: u64) -> DirectoryDelta {
        Directory::delta_since(self, epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(i: usize) -> SocketAddr {
        format!("10.0.0.{}:7000", i + 1)
            .parse()
            .expect("valid addr")
    }

    fn dir(n: usize) -> Directory {
        Directory::bootstrap((0..n).map(|i| ServerEntry {
            addr: addr(i),
            name: format!("local-{i}"),
        }))
    }

    #[test]
    fn home_is_deterministic_and_sticky() {
        let d = dir(3);
        let snap = d.snapshot();
        for session in ["alice", "bob", "resnet-worker-17", ""] {
            assert_eq!(snap.home(session), snap.home(session));
            assert!(snap.member(snap.home(session).unwrap()).is_some());
        }
    }

    #[test]
    fn route_covers_every_server_once_starting_at_home() {
        let d = dir(5);
        let snap = d.snapshot();
        for session in ["a", "b", "c", "worker-9000"] {
            let route = snap.route(session);
            assert_eq!(route[0], snap.home(session).unwrap());
            let mut sorted = route.clone();
            sorted.sort_unstable();
            assert_eq!(
                sorted,
                (0..5).map(|i| ServerId(i as u64)).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn sessions_spread_across_servers() {
        let snap = dir(3).snapshot();
        let mut hits = [0usize; 3];
        for i in 0..300 {
            hits[snap.home(&format!("session-{i}")).unwrap().0 as usize] += 1;
        }
        // Consistent hashing with 64 vnodes/server is not perfectly even,
        // but nothing should be starved or dominant.
        for &h in &hits {
            assert!(h > 30, "server starved: {hits:?}");
        }
    }

    #[test]
    fn epoch_bumps_on_every_mutation_and_is_monotonic() {
        let d = dir(2);
        assert_eq!(d.epoch(), 2);
        let id = d.join(addr(9), "late");
        assert_eq!(d.epoch(), 3);
        assert!(d.drain(id));
        assert_eq!(d.epoch(), 4);
        assert!(d.mark_suspect(id));
        assert_eq!(d.epoch(), 5);
        assert!(d.mark_up(id));
        assert_eq!(d.epoch(), 6);
        assert!(d.leave(id));
        assert_eq!(d.epoch(), 7);
        // Absent members are no-ops with no epoch bump.
        assert!(!d.leave(id));
        assert!(!d.drain(ServerId(404)));
        assert_eq!(d.epoch(), 7);
    }

    #[test]
    fn draining_member_leaves_the_ring_but_not_the_membership() {
        let d = dir(3);
        let snap = d.snapshot();
        // Find a session homed on each server, then drain one server.
        let victim = snap.home("victim-session").unwrap();
        assert!(d.drain(victim));
        let drained = d.snapshot();
        assert_eq!(drained.len(), 3, "drained member stays a member");
        assert_ne!(drained.home("victim-session").unwrap(), victim);
        // And no session homes on it any more.
        for i in 0..200 {
            assert_ne!(drained.home(&format!("s{i}")).unwrap(), victim);
        }
        // Last-resort failover still reaches it at the end of the route.
        assert!(drained.route("victim-session").contains(&victim));
    }

    #[test]
    fn all_members_down_fall_back_to_degraded_routing() {
        let d = dir(2);
        let ids: Vec<ServerId> = d.snapshot().members().iter().map(|m| m.id).collect();
        for id in &ids {
            d.mark_suspect(*id);
        }
        let snap = d.snapshot();
        assert!(snap.home("anyone").is_some(), "degraded ring still routes");
    }

    #[test]
    fn rejoin_same_addr_is_idempotent() {
        let d = dir(2);
        let snap = d.snapshot();
        let id = snap.members()[0].id;
        d.mark_suspect(id);
        let rejoined = d.join(snap.members()[0].addr, "ignored");
        assert_eq!(rejoined, id, "same address keeps its stable id");
        assert_eq!(
            d.snapshot().member(id).unwrap().state,
            MemberState::Up,
            "rejoin heals the suspect mark"
        );
        // Re-joining an already-Up member changes nothing and must not
        // fence the fleet with a pointless epoch bump.
        let epoch = d.epoch();
        assert_eq!(d.join(snap.members()[0].addr, "ignored"), id);
        assert_eq!(d.epoch(), epoch);
    }

    #[test]
    fn transition_is_compare_and_set() {
        let d = dir(1);
        let id = d.snapshot().members()[0].id;
        // Wrong `from` is a no-op with no epoch bump.
        let epoch = d.epoch();
        assert!(!d.transition(id, MemberState::Suspect, MemberState::Up));
        assert_eq!(d.epoch(), epoch);
        // A drain is never overridden by the suspect-recovery CAS (the
        // health checker's stale-snapshot hazard).
        d.drain(id);
        assert!(!d.transition(id, MemberState::Suspect, MemberState::Up));
        assert_eq!(
            d.snapshot().member(id).unwrap().state,
            MemberState::Draining
        );
        d.mark_suspect(id);
        assert!(d.transition(id, MemberState::Suspect, MemberState::Up));
        assert_eq!(d.snapshot().member(id).unwrap().state, MemberState::Up);
    }

    #[test]
    fn delta_since_replays_changes_and_applies_cleanly() {
        let d = dir(3);
        let follower = Directory::from_snapshot(&d.snapshot());
        assert_eq!(follower.epoch(), d.epoch());

        let late = d.join(addr(7), "late");
        let victim = d.snapshot().members()[0].id;
        d.drain(victim);
        d.leave(victim);

        let delta = d.delta_since(follower.epoch());
        assert!(!delta.full, "log covers the follower's epoch");
        assert!(follower.apply_delta(&delta));
        assert_eq!(follower.epoch(), d.epoch());
        let snap = follower.snapshot();
        assert!(snap.member(late).is_some());
        assert!(snap.member(victim).is_none());
        // The two views now route identically.
        let leader = d.snapshot();
        for i in 0..100 {
            let s = format!("s{i}");
            assert_eq!(snap.home(&s), leader.home(&s));
        }
        // Re-applying the same delta is a no-op.
        assert!(!follower.apply_delta(&delta));
    }

    #[test]
    fn truncated_log_falls_back_to_full_snapshot() {
        let d = dir(1);
        let follower = Directory::from_snapshot(&d.snapshot());
        // Push far more changes than the log retains.
        for i in 0..(LOG_CAP + 40) {
            let id = d.join(addr(2 + (i % 8)), "churner");
            d.leave(id);
        }
        let id = d.join(addr(99), "kept");
        let delta = d.delta_since(follower.epoch());
        assert!(delta.full, "ancient epoch must get a snapshot");
        assert!(follower.apply_delta(&delta));
        assert_eq!(follower.epoch(), d.epoch());
        assert!(follower.snapshot().member(id).is_some());
        assert_eq!(follower.snapshot().len(), d.snapshot().len());
    }

    #[test]
    fn full_snapshot_apply_truncates_incremental_history() {
        let d = dir(2);
        let follower = Directory::from_snapshot(&d.snapshot());
        // Evolve the leader far past its change log.
        for i in 0..(LOG_CAP + 10) {
            let id = d.join(addr(10 + (i as u64 % 5) as usize), "x");
            d.leave(id);
        }
        let gap_epoch = follower.epoch() + 1;
        let delta = d.delta_since(follower.epoch());
        assert!(delta.full);
        assert!(follower.apply_delta(&delta));
        // The follower cannot reconstruct removals inside the gap it
        // jumped over: an in-gap epoch must be answered with a full
        // snapshot, never an incremental delta missing `Left` records.
        assert!(follower.delta_since(gap_epoch).full);
    }

    #[test]
    fn empty_directory_routes_nothing() {
        let d = Directory::new();
        assert_eq!(d.epoch(), 0);
        assert!(d.snapshot().home("anyone").is_none());
        assert!(d.snapshot().route("anyone").is_empty());
    }
}
