//! Health checking: a background prober that keeps the [`Directory`]
//! honest about which members can actually serve.
//!
//! Each sweep probes every member with the cheapest full-protocol round
//! trip the service offers — a fresh connect (handshake + `Hello`/
//! `Welcome`) followed by one `Stats` request — so a probe success means
//! the server is accepting sessions *and* answering requests, not merely
//! holding a listening socket open. Every probe step (connect, read,
//! write) is bounded by [`HealthConfig::timeout`]: a blackholed host
//! (packets dropped, no RST — the failure a health checker exists for)
//! costs one timeout, not an OS-default connect stall that would freeze
//! the whole sweep.
//!
//! Strike policy (consecutive failed probes per member):
//!
//! * `suspect_after` strikes → [`Directory::mark_suspect`]: the member
//!   leaves the ring (no new homes) but stays in the membership, so a
//!   blip recovers without a reshuffle-churn round trip.
//! * `evict_after` strikes → [`Directory::leave`]: the member is removed
//!   and the epoch bump propagates to every client through the
//!   `WrongEpoch`/`DirectoryUpdate` fence.
//! * Any successful probe resets the member's strikes and, if it was
//!   suspect, marks it up again.
//!
//! Every state change is an ordinary directory mutation, so the health
//! checker composes with manual `join`/`drain`/`leave` calls and with
//! clients applying deltas — there is exactly one membership truth.

use crate::background::BackgroundLoop;
use crate::directory::{Directory, MemberState, ServerId};
use ironman_net::{CotClient, EPOCH_UNAWARE};
use ironman_telemetry::{Histogram, HistogramSnapshot, Stopwatch};
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

/// Configuration of a [`HealthChecker`].
#[derive(Clone, Copy, Debug)]
pub struct HealthConfig {
    /// Pause between probe sweeps.
    pub interval: Duration,
    /// Per-step probe timeout (connect, and each read/write of the
    /// `Hello`/`Stats` round trip).
    pub timeout: Duration,
    /// Consecutive failed probes before a member is marked suspect.
    pub suspect_after: u32,
    /// Consecutive failed probes before a member is evicted. Clamped to
    /// at least `suspect_after`.
    pub evict_after: u32,
    /// The id of the server this checker runs on, in replicated fleets.
    /// With it set, *evictions* are leader-gated: a struck-out member is
    /// only removed while this server holds the membership lease (lowest
    /// live id), so a minority partition suspects its unreachable peers
    /// but cannot evict the majority. Suspect/up marks are never gated —
    /// they *are* the lease-expiry mechanism. `None` (the default, and
    /// the shared-directory shape) keeps the ungated v4 behavior.
    pub self_id: Option<ServerId>,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            interval: Duration::from_millis(25),
            timeout: Duration::from_millis(500),
            suspect_after: 2,
            evict_after: 4,
            self_id: None,
        }
    }
}

/// A running background health prober over a shared [`Directory`].
///
/// Stops (and joins its thread) on [`HealthChecker::stop`] or drop.
#[derive(Debug)]
pub struct HealthChecker {
    inner: BackgroundLoop,
    probe_rtt: Arc<Histogram>,
}

impl HealthChecker {
    /// Starts the prober thread over `directory`.
    pub fn spawn(directory: Arc<Directory>, cfg: HealthConfig) -> HealthChecker {
        let evict_after = cfg.evict_after.max(cfg.suspect_after).max(1);
        let suspect_after = cfg.suspect_after.max(1);
        let timeout = cfg.timeout.max(Duration::from_millis(1));
        let mut strikes: HashMap<ServerId, u32> = HashMap::new();
        let probe_rtt = Arc::new(Histogram::new());
        let inner = {
            let probe_rtt = Arc::clone(&probe_rtt);
            BackgroundLoop::spawn(move || {
                sweep(
                    &directory,
                    &mut strikes,
                    suspect_after,
                    evict_after,
                    timeout,
                    cfg.self_id,
                    &probe_rtt,
                );
                Some(cfg.interval)
            })
        };
        HealthChecker { inner, probe_rtt }
    }

    /// The distribution of successful probe round-trip times (connect +
    /// `Hello`/`Welcome` + `Stats`), in nanoseconds. Failed probes are
    /// not recorded — their "RTT" is the timeout, which would drown the
    /// signal this histogram exists for: how slow the *live* fleet is.
    pub fn probe_rtt(&self) -> HistogramSnapshot {
        self.probe_rtt.snapshot()
    }

    /// Stops the prober and waits for its thread to exit.
    pub fn stop(self) {
        self.inner.stop();
    }
}

/// One probe sweep over the current membership.
fn sweep(
    directory: &Directory,
    strikes: &mut HashMap<ServerId, u32>,
    suspect_after: u32,
    evict_after: u32,
    timeout: Duration,
    self_id: Option<ServerId>,
    probe_rtt: &Histogram,
) {
    let snapshot = directory.snapshot();
    // Forget strikes of members that are gone (manual leave, or our own
    // eviction last sweep) so a rejoining id starts clean.
    strikes.retain(|id, _| snapshot.member(*id).is_some());
    // Leader-gated eviction (replicated fleets): only the lease holder
    // removes members. Re-read per sweep — when the holder goes suspect
    // everywhere, the lease lands here without any extra protocol.
    let may_evict = self_id.is_none_or(|me| snapshot.lease_holder() == Some(me));
    for member in snapshot.members() {
        if Some(member.id) == self_id {
            // A replica never probes itself over loopback-of-one: its own
            // liveness is its peers' verdict.
            continue;
        }
        let watch = Stopwatch::start();
        if probe(member.addr, timeout) {
            probe_rtt.record_elapsed(watch);
            strikes.remove(&member.id);
            // Recovery is a compare-and-set from Suspect only: the
            // member's snapshot state may be seconds stale by now, and an
            // unconditional mark-up could override a drain issued
            // mid-sweep.
            directory.transition(member.id, MemberState::Suspect, MemberState::Up);
            continue;
        }
        let count = strikes.entry(member.id).or_insert(0);
        *count += 1;
        if *count >= evict_after && may_evict {
            directory.leave(member.id);
            strikes.remove(&member.id);
        } else if *count >= suspect_after {
            // Same stale-snapshot discipline: only escalate Up → Suspect;
            // a member drained mid-sweep keeps its Draining state.
            directory.transition(member.id, MemberState::Up, MemberState::Suspect);
        }
    }
}

/// One probe: connect (handshake, `Hello`/`Welcome`) and ask for
/// `Stats`, every step bounded by `timeout`. Epoch-unaware on purpose —
/// a probe must never be fenced.
fn probe(addr: SocketAddr, timeout: Duration) -> bool {
    match CotClient::connect_timeout(addr, "health-probe", EPOCH_UNAWARE, timeout) {
        Ok(mut client) => client.stats().is_ok(),
        Err(_) => false,
    }
}
