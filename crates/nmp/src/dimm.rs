//! DIMM-NMP module: the SPCOT engine (paper §5.1.1, Fig. 9(b)).
//!
//! Each DIMM module owns `prg_cores_per_dimm` pipelined PRG cores fed by
//! the hybrid GGM expansion schedule (§4.3) plus the unified XOR-tree unit
//! (§5.2). Trees are distributed across cores; within a core the hybrid
//! schedule keeps the pipeline full, so large batches run at ~100%
//! utilization. The cycle model reuses `ironman-ggm`'s schedule simulator
//! on a sample and scales — the steady state is periodic, making the
//! extrapolation exact up to edge effects.

use crate::{NmpConfig, Role, UnifiedUnit};
use ironman_ggm::{schedule, Arity, ExpansionSchedule, PipelineModel};
use ironman_prg::{Block, PrgKind};
use serde::{Deserialize, Serialize};

/// SPCOT work for one protocol execution (all DIMMs together).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpcotWork {
    /// Number of GGM trees (`t`).
    pub trees: usize,
    /// Leaves per tree (`ℓ`).
    pub leaves: usize,
    /// Tree arity.
    pub arity: Arity,
    /// PRG instantiation.
    pub prg: PrgKind,
    /// Which role's datapath to model (sender does twice the XOR-tree
    /// work, §5.2).
    pub role: Role,
}

impl SpcotWork {
    /// The Ironman configuration: 4-ary ChaCha8 trees.
    pub fn ironman(trees: usize, leaves: usize, role: Role) -> Self {
        SpcotWork {
            trees,
            leaves,
            arity: Arity::QUAD,
            prg: PrgKind::CHACHA8,
            role,
        }
    }
}

/// Simulation result for the SPCOT phase on one DIMM module.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DimmSpcotReport {
    /// Cycles until the last leaf is produced (per DIMM; DIMMs run in
    /// parallel).
    pub cycles: u64,
    /// PRG calls issued on this DIMM.
    pub calls: u64,
    /// Pipeline utilization achieved by the schedule.
    pub utilization: f64,
    /// Cycles spent in the unified XOR-tree unit (overlapped with
    /// expansion; reported for the ablation).
    pub xor_cycles: u64,
}

/// Pipeline model for a PRG kind: one stage per round (ChaCha) or per AES
/// round, with the PRG's native output width.
pub fn pipeline_for(prg: PrgKind) -> PipelineModel {
    match prg {
        PrgKind::Aes => PipelineModel::AES,
        PrgKind::ChaCha { rounds } => PipelineModel {
            stages: rounds as usize,
            blocks_per_call: 4,
        },
    }
}

/// Simulates the SPCOT phase on one DIMM given its share of the trees.
///
/// Large batches are extrapolated from a sampled schedule simulation:
/// `sample` trees (default 16) are simulated per core and the cycle count
/// scales linearly in the remaining full rounds.
pub fn simulate_dimm(cfg: &NmpConfig, work: &SpcotWork, trees_on_dimm: usize) -> DimmSpcotReport {
    let pipeline = pipeline_for(work.prg);
    let cores = cfg.prg_cores_per_dimm.max(1);
    let trees_per_core = trees_on_dimm.div_ceil(cores);
    if trees_per_core == 0 {
        return DimmSpcotReport {
            cycles: 0,
            calls: 0,
            utilization: 0.0,
            xor_cycles: 0,
        };
    }

    // Sample the schedule: enough trees to reach steady state.
    let sample = trees_per_core.min(16);
    let sim = schedule::simulate(
        ExpansionSchedule::Hybrid,
        pipeline,
        sample,
        work.arity,
        work.leaves,
    );
    let scale = trees_per_core as f64 / sample as f64;
    let expansion_cycles = (sim.cycles as f64 * scale).round() as u64;
    let calls_per_core = (sim.calls as f64 * scale).round() as u64;

    // Unified-unit work: every produced node is folded into a branch sum
    // once per level (sender computes all branch sums; receiver one).
    let nodes_per_tree: u64 = work.arity.expansion_blocks(work.leaves);
    let mut unit = UnifiedUnit::for_cores(cores);
    // One representative pass per level batch to account cycles; we model
    // the fold throughput as width blocks/cycle.
    let total_nodes = nodes_per_tree * trees_on_dimm as u64;
    // The Key Generator folds even and odd sums in parallel accumulator
    // lanes, consuming the full core output every cycle; the Message
    // Decoder needs only one sum and can drain at twice the node rate
    // (Fig. 10(b) vs (c)).
    let xor_cycles = match work.role {
        Role::Sender => total_nodes.div_ceil(unit.width() as u64),
        Role::Receiver => total_nodes.div_ceil(2 * unit.width() as u64),
    };
    // Keep the functional path of the unit warm (tests elsewhere verify
    // its algebra); here only the cycle figure matters.
    let _ = unit.branch_sums(work.role, &[Block::ZERO; 4], 2);

    // The XOR tree runs concurrently with expansion; it only extends the
    // critical path if it is slower.
    let cycles = expansion_cycles.max(xor_cycles);
    DimmSpcotReport {
        cycles,
        calls: calls_per_core * cores as u64,
        utilization: sim.utilization(),
        xor_cycles,
    }
}

/// Distributes `work.trees` across the active DIMMs and returns the
/// critical-path report (the slowest DIMM; they run in parallel).
pub fn simulate_spcot(cfg: &NmpConfig, work: &SpcotWork) -> DimmSpcotReport {
    let dimms = cfg.dimms().max(1);
    let trees_per_dimm = work.trees.div_ceil(dimms);
    simulate_dimm(cfg, work, trees_per_dimm)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> NmpConfig {
        NmpConfig::with_ranks_and_cache(8, 256 * 1024)
    }

    #[test]
    fn chacha_quad_beats_aes_binary() {
        // Fig. 13(a): 4-ary + ChaCha is ~6x fewer ops than 2-ary + AES.
        let c = cfg();
        let quad = simulate_spcot(
            &c,
            &SpcotWork {
                trees: 32,
                leaves: 1024,
                arity: Arity::QUAD,
                prg: PrgKind::CHACHA8,
                role: Role::Sender,
            },
        );
        let bin = simulate_spcot(
            &c,
            &SpcotWork {
                trees: 32,
                leaves: 1024,
                arity: Arity::BINARY,
                prg: PrgKind::Aes,
                role: Role::Sender,
            },
        );
        assert!(
            bin.cycles > 4 * quad.cycles,
            "binary {} should dwarf quad {}",
            bin.cycles,
            quad.cycles
        );
    }

    #[test]
    fn hybrid_utilization_high_with_many_trees() {
        // 256 trees on 4 DIMMs × 4 cores = 16 trees per pipeline, enough
        // in-flight trees to hide the 8-stage latency (§4.3's 100% claim).
        let r = simulate_spcot(&cfg(), &SpcotWork::ironman(256, 1024, Role::Sender));
        assert!(r.utilization > 0.9, "utilization {}", r.utilization);
    }

    #[test]
    fn more_dimms_fewer_cycles() {
        let small = NmpConfig::with_ranks_and_cache(2, 256 * 1024);
        let large = NmpConfig::with_ranks_and_cache(16, 256 * 1024);
        let w = SpcotWork::ironman(128, 1024, Role::Sender);
        let a = simulate_spcot(&small, &w);
        let b = simulate_spcot(&large, &w);
        assert!(
            b.cycles < a.cycles,
            "16-rank {} !< 2-rank {}",
            b.cycles,
            a.cycles
        );
    }

    #[test]
    fn receiver_xor_cheaper() {
        let s = simulate_spcot(&cfg(), &SpcotWork::ironman(32, 1024, Role::Sender));
        let r = simulate_spcot(&cfg(), &SpcotWork::ironman(32, 1024, Role::Receiver));
        assert!(r.xor_cycles < s.xor_cycles);
    }

    #[test]
    fn zero_trees_zero_cycles() {
        let r = simulate_dimm(&cfg(), &SpcotWork::ironman(0, 1024, Role::Sender), 0);
        assert_eq!(r.cycles, 0);
    }

    #[test]
    fn call_extrapolation_consistent() {
        // Call count must equal trees × calls/tree regardless of sampling.
        let c = cfg();
        let w = SpcotWork::ironman(64, 256, Role::Sender);
        let r = simulate_spcot(&c, &w);
        let per_tree = (256 - 1) / 3; // 4-ary ChaCha on ℓ=256
        let dimms = c.dimms();
        let per_dimm = 64usize.div_ceil(dimms);
        let expected = (per_dimm as u64).div_ceil(c.prg_cores_per_dimm as u64)
            * c.prg_cores_per_dimm as u64
            * per_tree as u64;
        assert_eq!(r.calls, expected);
    }
}
