//! The unified unit: one XOR-tree datapath for both protocol roles
//! (paper §5.2, Fig. 10).
//!
//! During SPCOT the sender must compute the even/odd (or per-branch) XOR
//! sums of each GGM level (**Key Generator** mode), while the receiver
//! must fold a received sum with its reconstructed nodes to recover the
//! missing sibling (**Message Decoder** mode). Both are XOR reductions, so
//! Ironman shares one XOR tree whose input width matches the ChaCha cores'
//! aggregate output (`2x` nodes for `x` cores).

use ironman_prg::Block;
use serde::{Deserialize, Serialize};

/// Which protocol role the unit is serving.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Role {
    /// Key Generator: compute per-branch level sums for the OT messages.
    Sender,
    /// Message Decoder: recover the punctured parent's sibling from a
    /// received sum and locally known nodes.
    Receiver,
}

/// A `width`-input XOR tree with single-cycle stages.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct UnifiedUnit {
    width: usize,
    cycles: u64,
}

impl UnifiedUnit {
    /// Creates a unit sized for `prg_cores` ChaCha cores (each delivering
    /// four blocks per cycle; the tree takes all of them).
    ///
    /// # Panics
    ///
    /// Panics if `prg_cores == 0`.
    pub fn for_cores(prg_cores: usize) -> Self {
        assert!(prg_cores > 0, "need at least one PRG core");
        UnifiedUnit {
            width: 4 * prg_cores,
            cycles: 0,
        }
    }

    /// Input width of the XOR tree.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Cycles consumed so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Folds `values` into per-branch sums: `sums[j] = ⊕ values[i]` over
    /// `i % branches == j`. One tree pass handles `width` inputs per cycle
    /// per branch lane.
    ///
    /// In sender (Key Generator) mode all `branches` sums are produced; in
    /// receiver (Message Decoder) mode only one is, costing proportionally
    /// fewer passes (Fig. 10(b) vs (c)).
    ///
    /// # Panics
    ///
    /// Panics if `branches == 0`.
    pub fn branch_sums(&mut self, role: Role, values: &[Block], branches: usize) -> Vec<Block> {
        assert!(branches > 0, "need at least one branch lane");
        let mut sums = vec![Block::ZERO; branches];
        for (i, &v) in values.iter().enumerate() {
            sums[i % branches] ^= v;
        }
        // Cycle cost: ceil(inputs/width) tree passes per produced sum;
        // the receiver produces a single sum.
        let passes = (values.len().div_ceil(self.width)) as u64;
        let produced = match role {
            Role::Sender => branches as u64,
            Role::Receiver => 1,
        };
        self.cycles += passes.max(1) * produced;
        sums
    }

    /// Message-decoder helper: recover the punctured parent's branch value
    /// `K ⊕ (⊕ known)` (Fig. 3(b) step ③) in one reduction.
    pub fn decode_sibling(&mut self, received_sum: Block, known: &[Block]) -> Block {
        let folded = self.branch_sums(Role::Receiver, known, 1)[0];
        received_sum ^ folded
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sender_sums_match_reference() {
        let mut u = UnifiedUnit::for_cores(4);
        let values: Vec<Block> = (0..32u128).map(|i| Block::from(i * 11 + 3)).collect();
        let sums = u.branch_sums(Role::Sender, &values, 4);
        for (j, &sum) in sums.iter().enumerate().take(4) {
            let expect = Block::xor_all(
                values
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % 4 == j)
                    .map(|(_, &b)| b),
            );
            assert_eq!(sum, expect);
        }
    }

    #[test]
    fn receiver_cheaper_than_sender() {
        let values: Vec<Block> = (0..64u128).map(Block::from).collect();
        let mut s = UnifiedUnit::for_cores(2);
        let mut r = UnifiedUnit::for_cores(2);
        s.branch_sums(Role::Sender, &values, 2);
        r.branch_sums(Role::Receiver, &values, 2);
        assert!(
            r.cycles() < s.cycles(),
            "receiver {} !< sender {}",
            r.cycles(),
            s.cycles()
        );
    }

    #[test]
    fn decode_sibling_inverts_key_generation() {
        // Sender: K = XOR of all even nodes. Receiver knows all even nodes
        // except one and recovers it.
        let nodes: Vec<Block> = (0..16u128).map(|i| Block::from(i * 7 + 1)).collect();
        let k = Block::xor_all(nodes.iter().copied());
        let (missing, known) = nodes.split_first().unwrap();
        let mut u = UnifiedUnit::for_cores(1);
        assert_eq!(u.decode_sibling(k, known), *missing);
    }

    #[test]
    fn same_datapath_both_roles() {
        // The unified claim: one unit instance serves both roles in turn.
        let mut u = UnifiedUnit::for_cores(2);
        let values: Vec<Block> = (0..8u128).map(Block::from).collect();
        let s = u.branch_sums(Role::Sender, &values, 2);
        let r = u.branch_sums(Role::Receiver, &values, 2);
        assert_eq!(s, r, "role must not change the computed sums");
    }

    #[test]
    fn width_matches_cores() {
        assert_eq!(UnifiedUnit::for_cores(4).width(), 16);
    }
}
