//! The Ironman-NMP architecture model (paper §5, Fig. 9).
//!
//! Ironman places one processing unit on each DIMM's buffer chip:
//!
//! * a **DIMM-NMP module** with pipelined ChaCha8 cores (GGM tree
//!   expansion), a **unified unit** (an XOR tree acting as Key Generator
//!   for the sender or Message Decoder for the receiver) and a node
//!   buffer — this executes SPCOT;
//! * two **Rank-NMP modules**, each owning one DRAM rank, with an index
//!   address generator and a **memory-side cache** — these execute the LPN
//!   gather with rank-level parallelism.
//!
//! This crate is the *timing* model: it consumes work descriptions and
//! access traces from the functional crates and produces cycle counts by
//! composing `ironman-ggm`'s pipeline schedules, `ironman-cache` and
//! `ironman-dram`. Figures 12, 13 and 14 are regenerated from
//! [`OteSimulator`].
//!
//! # Example
//!
//! ```
//! use ironman_nmp::{NmpConfig, OteSimulator, OteWork};
//!
//! let cfg = NmpConfig::with_ranks_and_cache(16, 1024 * 1024);
//! let sim = OteSimulator::new(cfg);
//! let work = OteWork::ferret_2ary_aes(1 << 14, 64, 24, 1024, 10);
//! let report = sim.simulate(&work, 0x5eed);
//! assert!(report.total_cycles > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod dimm;
pub mod driver;
pub mod inst;
pub mod ote;
pub mod rank_lpn;
pub mod unified;

pub use config::NmpConfig;
pub use dimm::{DimmSpcotReport, SpcotWork};
pub use driver::{compile_ote, execute, ProgramContext, ProgramReport};
pub use inst::{NmpInst, NmpOp};
pub use ote::{OteReport, OteSimulator, OteWork};
pub use rank_lpn::{LpnWork, RankLpnReport};
pub use unified::{Role, UnifiedUnit};
