//! End-to-end OTE simulation on the Ironman-NMP architecture.
//!
//! Composes the DIMM-level SPCOT model and the rank-level LPN model into
//! one protocol-execution latency. SPCOT and LPN are decoupled and
//! overlapped (§5.1), so the execution takes
//! `max(SPCOT cycles, LPN cycles)`; COT offload to the host is streamed
//! concurrently with generation and per §5.1.3 contributes no extra
//! latency beyond a drain term.

use crate::dimm::{simulate_spcot, SpcotWork};
use crate::rank_lpn::{simulate_rank, LpnWork, RankLpnReport};
use crate::{DimmSpcotReport, NmpConfig, Role};
use ironman_ggm::Arity;
use ironman_lpn::sorting::SortConfig;
use ironman_lpn::{LpnMatrix, SortedLpnMatrix};
use ironman_prg::{Block, PrgKind};
use serde::{Deserialize, Serialize};

/// Work content of one OTE protocol execution.
#[derive(Clone, Debug)]
pub struct OteWork {
    /// LPN output length `n`.
    pub n: usize,
    /// GGM leaves `ℓ`.
    pub leaves: usize,
    /// Tree count `t`.
    pub trees: usize,
    /// LPN input length `k`.
    pub k: usize,
    /// LPN row weight `d`.
    pub weight: usize,
    /// Tree arity.
    pub arity: Arity,
    /// PRG kind.
    pub prg: PrgKind,
    /// Protocol role being accelerated.
    pub role: Role,
    /// Compile-time index sorting for the LPN matrix (§5.3).
    pub sort: Option<SortConfig>,
    /// LPN rows actually simulated per rank (the rest is extrapolated);
    /// `None` simulates every row.
    pub sample_rows: Option<usize>,
}

impl OteWork {
    /// The Ferret CPU-style workload: binary AES trees, unsorted matrix.
    pub fn ferret_2ary_aes(n: usize, leaves: usize, trees: usize, k: usize, weight: usize) -> Self {
        OteWork {
            n,
            leaves,
            trees,
            k,
            weight,
            arity: Arity::BINARY,
            prg: PrgKind::Aes,
            role: Role::Sender,
            sort: None,
            sample_rows: Some(16_384),
        }
    }

    /// The Ironman workload: 4-ary ChaCha8 trees with sorted indices.
    pub fn ironman(n: usize, leaves: usize, trees: usize, k: usize, weight: usize) -> Self {
        OteWork {
            arity: Arity::QUAD,
            prg: PrgKind::CHACHA8,
            sort: Some(SortConfig::default()),
            ..OteWork::ferret_2ary_aes(n, leaves, trees, k, weight)
        }
    }
}

/// Simulation result of one OTE execution.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct OteReport {
    /// SPCOT-phase cycles (critical-path DIMM).
    pub spcot_cycles: u64,
    /// LPN-phase cycles (critical-path rank).
    pub lpn_cycles: u64,
    /// COT offload drain cycles not hidden by overlap.
    pub offload_cycles: u64,
    /// Total execution cycles (phases overlap).
    pub total_cycles: u64,
    /// Memory-side cache hit rate observed by the simulated rank.
    pub cache_hit_rate: f64,
    /// DIMM-level SPCOT details.
    pub spcot: DimmSpcotReport,
    /// Rank-level LPN details.
    pub lpn: RankLpnReport,
}

impl OteReport {
    /// Execution latency in milliseconds at the NMP clock.
    pub fn latency_ms(&self, cfg: &NmpConfig) -> f64 {
        cfg.cycles_to_ms(self.total_cycles)
    }
}

/// The end-to-end simulator.
#[derive(Clone, Copy, Debug)]
pub struct OteSimulator {
    cfg: NmpConfig,
}

impl OteSimulator {
    /// Creates a simulator for a deployment configuration.
    pub fn new(cfg: NmpConfig) -> Self {
        OteSimulator { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &NmpConfig {
        &self.cfg
    }

    /// Builds the per-rank LPN trace: the first simulated rank's row
    /// partition, optionally index-sorted, sampled to `sample_rows`.
    ///
    /// The trace is a pure function of `(rows, k, d, seed, sort)` and the
    /// engine's timing-estimation path rebuilds it with identical inputs
    /// on every call (e.g. once per pool refill), so the most recent
    /// trace is memoized process-wide; only a shape change regenerates.
    fn lpn_work(&self, work: &OteWork, seed: u64) -> LpnWork {
        type TraceKey = (usize, usize, usize, u64, Option<SortConfig>);
        static LAST_TRACE: std::sync::Mutex<Option<(TraceKey, std::sync::Arc<Vec<u32>>)>> =
            std::sync::Mutex::new(None);

        let rows_per_rank = work.n.div_ceil(self.cfg.ranks);
        let sim_rows = work
            .sample_rows
            .unwrap_or(rows_per_rank)
            .min(rows_per_rank)
            .max(1);
        let key: TraceKey = (sim_rows, work.k, work.weight, seed, work.sort);
        let mut last = LAST_TRACE
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let trace = match &*last {
            Some((cached_key, trace)) if *cached_key == key => std::sync::Arc::clone(trace),
            _ => {
                let matrix = LpnMatrix::generate_untracked(
                    sim_rows,
                    work.k,
                    work.weight,
                    Block::from(seed as u128 | 1),
                );
                let trace: Vec<u32> = match &work.sort {
                    Some(cfg) => {
                        let sorted = SortedLpnMatrix::sort(&matrix, *cfg);
                        sorted.access_trace().collect()
                    }
                    None => matrix.colidx().to_vec(),
                };
                let trace = std::sync::Arc::new(trace);
                *last = Some((key, std::sync::Arc::clone(&trace)));
                trace
            }
        };
        drop(last);
        LpnWork {
            trace: trace.to_vec(),
            represented_accesses: (rows_per_rank * work.weight) as u64,
        }
    }

    /// Simulates one OTE execution.
    pub fn simulate(&self, work: &OteWork, seed: u64) -> OteReport {
        let spcot = simulate_spcot(
            &self.cfg,
            &SpcotWork {
                trees: work.trees,
                leaves: work.leaves,
                arity: work.arity,
                prg: work.prg,
                role: work.role,
            },
        );
        let lpn = simulate_rank(&self.cfg, &self.lpn_work(work, seed));

        // Offload: n × 16 bytes stream back to the host over the channel
        // at DDR4 burst rate, overlapped with generation; only the tail of
        // the last burst group is exposed (§5.1.3 — "the offloading cost
        // becomes negligible").
        let bytes_per_cycle = self.cfg.dram.access_bytes as u64 / self.cfg.dram.timing.t_bl;
        let full_drain = (work.n as u64 * 16).div_ceil(bytes_per_cycle * self.cfg.ranks as u64);
        let offload_cycles = (full_drain / 100).max(16); // ≥99% hidden by overlap

        let total_cycles = spcot.cycles.max(lpn.cycles) + offload_cycles;
        OteReport {
            spcot_cycles: spcot.cycles,
            lpn_cycles: lpn.cycles,
            offload_cycles,
            total_cycles,
            cache_hit_rate: lpn.hit_rate(),
            spcot,
            lpn,
        }
    }

    /// Latency in milliseconds to generate `total_ots` correlations by
    /// repeating executions of `work`.
    pub fn batch_latency_ms(&self, work: &OteWork, total_ots: u64, seed: u64) -> f64 {
        let report = self.simulate(work, seed);
        let per_exec_outputs = work.n as u64;
        let execs = (total_ots as f64 / per_exec_outputs as f64).ceil();
        execs * report.latency_ms(&self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_work() -> OteWork {
        OteWork {
            sample_rows: Some(2048),
            ..OteWork::ironman(100_000, 1024, 48, 16_384, 10)
        }
    }

    #[test]
    fn lpn_dominates_with_ironman_spcot() {
        // Fig. 13(b): with 4-ary ChaCha, SPCOT stays below LPN.
        let sim = OteSimulator::new(NmpConfig::with_ranks_and_cache(4, 256 * 1024));
        let r = sim.simulate(&toy_work(), 1);
        assert!(
            r.spcot_cycles < r.lpn_cycles,
            "SPCOT {} should be under LPN {}",
            r.spcot_cycles,
            r.lpn_cycles
        );
    }

    #[test]
    fn aes_binary_spcot_exceeds_lpn() {
        // Fig. 13(b)'s counterpart: with the unoptimized 2-ary AES trees
        // the SPCOT phase dominates once the cache keeps LPN fast (here:
        // full Table-4-scale tree workload against an in-cache k-vector).
        let sim = OteSimulator::new(NmpConfig::with_ranks_and_cache(16, 256 * 1024));
        let work = OteWork {
            sample_rows: Some(2048),
            ..OteWork::ferret_2ary_aes(100_000, 4096, 480, 16_384, 10)
        };
        let r = sim.simulate(&work, 1);
        assert!(
            r.spcot_cycles > r.lpn_cycles,
            "AES SPCOT {} should exceed LPN {}",
            r.spcot_cycles,
            r.lpn_cycles
        );
    }

    #[test]
    fn more_ranks_faster() {
        let w = toy_work();
        let two = OteSimulator::new(NmpConfig::with_ranks_and_cache(2, 256 * 1024));
        let sixteen = OteSimulator::new(NmpConfig::with_ranks_and_cache(16, 256 * 1024));
        let a = two.simulate(&w, 2);
        let b = sixteen.simulate(&w, 2);
        assert!(b.total_cycles < a.total_cycles);
    }

    #[test]
    fn sorting_helps_latency() {
        let sim = OteSimulator::new(NmpConfig::with_ranks_and_cache(4, 256 * 1024));
        let sorted = toy_work();
        let unsorted = OteWork {
            sort: None,
            ..toy_work()
        };
        let rs = sim.simulate(&sorted, 3);
        let ru = sim.simulate(&unsorted, 3);
        assert!(rs.cache_hit_rate > ru.cache_hit_rate);
        assert!(rs.lpn_cycles <= ru.lpn_cycles);
    }

    #[test]
    fn offload_is_negligible() {
        let sim = OteSimulator::new(NmpConfig::ironman_max());
        let r = sim.simulate(&toy_work(), 4);
        assert!(
            r.offload_cycles * 20 < r.total_cycles,
            "offload must be hidden: {r:?}"
        );
    }

    #[test]
    fn batch_scales_with_target() {
        let sim = OteSimulator::new(NmpConfig::ironman_max());
        let w = toy_work();
        let one = sim.batch_latency_ms(&w, 100_000, 5);
        let ten = sim.batch_latency_ms(&w, 1_000_000, 5);
        assert!((ten / one - 10.0).abs() < 0.01);
    }
}

/// Result of executing *two* OTE protocols concurrently with swapped roles
/// (§1: "two parties execute two OTE protocols in parallel when switching
/// roles ... The parallel OTE execution allows us to reduce the protocol
/// latency"). The unified unit (§5.2) is what makes this possible on one
/// PU: the same XOR-tree datapath serves the Key-Generator and
/// Message-Decoder passes.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DualRoleReport {
    /// This party acting as sender.
    pub as_sender: OteReport,
    /// This party acting as receiver (the swapped-role session).
    pub as_receiver: OteReport,
    /// Total cycles when both sessions share the PU (resources interleave;
    /// LPN gathers serialize on the ranks, SPCOT passes share the cores).
    pub shared_cycles: u64,
    /// Total cycles if the two sessions ran back-to-back instead.
    pub sequential_cycles: u64,
}

impl DualRoleReport {
    /// Latency saved by overlapping the two sessions.
    pub fn overlap_gain(&self) -> f64 {
        if self.shared_cycles == 0 {
            return 1.0;
        }
        self.sequential_cycles as f64 / self.shared_cycles as f64
    }
}

impl OteSimulator {
    /// Simulates one party running both directions of a role-switched
    /// protocol pair on its PU. The rank-side LPN work doubles (two
    /// gathers over the same ranks, serialized), while the DIMM-side SPCOT
    /// work overlaps the cheaper Message-Decoder pass under the
    /// Key-Generator pass.
    pub fn simulate_dual_role(&self, work: &OteWork, seed: u64) -> DualRoleReport {
        let as_sender = self.simulate(
            &OteWork {
                role: Role::Sender,
                ..work.clone()
            },
            seed,
        );
        let as_receiver = self.simulate(
            &OteWork {
                role: Role::Receiver,
                ..work.clone()
            },
            seed ^ 0xD0A1,
        );
        // Shared execution: both LPN gathers contend for the same ranks
        // (serialize); the two SPCOT passes time-share the PRG cores
        // (serialize) but overlap with the combined LPN.
        let lpn = as_sender.lpn_cycles + as_receiver.lpn_cycles;
        let spcot = as_sender.spcot_cycles + as_receiver.spcot_cycles;
        let offload = as_sender.offload_cycles.max(as_receiver.offload_cycles);
        let shared_cycles = lpn.max(spcot) + offload;
        let sequential_cycles = as_sender.total_cycles + as_receiver.total_cycles;
        DualRoleReport {
            as_sender,
            as_receiver,
            shared_cycles,
            sequential_cycles,
        }
    }
}

#[cfg(test)]
mod dual_role_tests {
    use super::*;

    fn work() -> OteWork {
        OteWork {
            sample_rows: Some(2048),
            ..OteWork::ironman(100_000, 1024, 48, 16_384, 10)
        }
    }

    #[test]
    fn dual_role_overlap_saves_latency() {
        let sim = OteSimulator::new(NmpConfig::with_ranks_and_cache(8, 256 * 1024));
        let r = sim.simulate_dual_role(&work(), 11);
        assert!(r.shared_cycles < r.sequential_cycles);
        let gain = r.overlap_gain();
        assert!((1.0..=2.0).contains(&gain), "gain {gain}");
    }

    #[test]
    fn receiver_role_is_cheaper_on_spcot() {
        // Message Decoder does half the XOR-tree work (Fig. 10).
        let sim = OteSimulator::new(NmpConfig::with_ranks_and_cache(8, 256 * 1024));
        let r = sim.simulate_dual_role(&work(), 12);
        assert!(r.as_receiver.spcot_cycles <= r.as_sender.spcot_cycles);
    }

    #[test]
    fn shared_never_below_single_session() {
        let sim = OteSimulator::new(NmpConfig::with_ranks_and_cache(4, 256 * 1024));
        let r = sim.simulate_dual_role(&work(), 13);
        assert!(r.shared_cycles >= r.as_sender.total_cycles.max(r.as_receiver.total_cycles));
    }
}
