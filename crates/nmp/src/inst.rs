//! The NMP instruction set (Fig. 9).
//!
//! The memory controller drives the PU with NMP instructions; the DIMM
//! module dispatches them to rank modules by rank address (Fig. 9(a–b)).
//! The encoding is 64 bits: `[op:4 | rank:4 | count:24 | addr:32]`.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Operation kinds understood by the Ironman-NMP PU.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NmpOp {
    /// Broadcast a segment of the pre-generated vector to a rank's DRAM.
    WriteVector,
    /// Execute an LPN gather over `count` rows starting at the Colidx
    /// address `addr` on the addressed rank.
    LpnGather,
    /// Run SPCOT tree expansions on the DIMM module (`count` trees).
    SpcotExpand,
    /// Stream `count` finished COT correlations back to the host.
    ReadCot,
}

impl NmpOp {
    const ALL: [NmpOp; 4] = [
        NmpOp::WriteVector,
        NmpOp::LpnGather,
        NmpOp::SpcotExpand,
        NmpOp::ReadCot,
    ];

    fn code(self) -> u8 {
        match self {
            NmpOp::WriteVector => 0,
            NmpOp::LpnGather => 1,
            NmpOp::SpcotExpand => 2,
            NmpOp::ReadCot => 3,
        }
    }

    fn from_code(code: u8) -> Option<NmpOp> {
        NmpOp::ALL.iter().copied().find(|op| op.code() == code)
    }
}

/// One decoded NMP instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NmpInst {
    /// Operation.
    pub op: NmpOp,
    /// Target rank within the DIMM (ignored by DIMM-level ops).
    pub rank: u8,
    /// Work-item count (rows, trees or correlations).
    pub count: u32,
    /// Base address operand.
    pub addr: u32,
}

/// Error returned when decoding an invalid instruction word.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DecodeInstError(u64);

impl fmt::Display for DecodeInstError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid NMP instruction word {:#018x}", self.0)
    }
}

impl std::error::Error for DecodeInstError {}

impl NmpInst {
    /// Maximum encodable count (24 bits).
    pub const MAX_COUNT: u32 = (1 << 24) - 1;

    /// Creates an instruction, validating field widths.
    ///
    /// # Panics
    ///
    /// Panics if `count` exceeds [`Self::MAX_COUNT`] or `rank >= 16`.
    pub fn new(op: NmpOp, rank: u8, count: u32, addr: u32) -> Self {
        assert!(count <= Self::MAX_COUNT, "count {count} exceeds 24 bits");
        assert!(rank < 16, "rank {rank} exceeds 4 bits");
        NmpInst {
            op,
            rank,
            count,
            addr,
        }
    }

    /// Encodes to the 64-bit wire format.
    pub fn encode(&self) -> u64 {
        (self.op.code() as u64) << 60
            | (self.rank as u64) << 56
            | (self.count as u64) << 32
            | self.addr as u64
    }

    /// Decodes from the wire format.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeInstError`] for unknown opcodes.
    pub fn decode(word: u64) -> Result<Self, DecodeInstError> {
        let op = NmpOp::from_code((word >> 60) as u8).ok_or(DecodeInstError(word))?;
        Ok(NmpInst {
            op,
            rank: (word >> 56) as u8 & 0xf,
            count: (word >> 32) as u32 & 0xff_ffff,
            addr: word as u32,
        })
    }
}

/// Splits an LPN gather over `rows` rows evenly across `ranks` rank
/// modules, producing one instruction per rank (the host-side partitioning
/// of §5.1: "evenly partitions the index matrix and distributes them
/// across the ranks").
pub fn partition_gather(rows: u32, ranks: u8) -> Vec<NmpInst> {
    assert!(ranks > 0, "need at least one rank");
    let per = rows.div_ceil(ranks as u32);
    (0..ranks)
        .map(|r| {
            let start = r as u32 * per;
            let count = per.min(rows.saturating_sub(start));
            NmpInst::new(NmpOp::LpnGather, r, count, start)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        for op in NmpOp::ALL {
            let inst = NmpInst::new(op, 3, 123_456, 0xdead_beef);
            assert_eq!(NmpInst::decode(inst.encode()).unwrap(), inst);
        }
    }

    #[test]
    fn bad_opcode_rejected() {
        let word = 0xF000_0000_0000_0000u64;
        assert!(NmpInst::decode(word).is_err());
    }

    #[test]
    #[should_panic(expected = "24 bits")]
    fn oversized_count_rejected() {
        let _ = NmpInst::new(NmpOp::LpnGather, 0, 1 << 24, 0);
    }

    #[test]
    fn partition_covers_all_rows() {
        let insts = partition_gather(1000, 3);
        assert_eq!(insts.len(), 3);
        let total: u32 = insts.iter().map(|i| i.count).sum();
        assert_eq!(total, 1000);
        assert_eq!(insts[0].addr, 0);
        assert_eq!(insts[1].addr, insts[0].count);
    }

    #[test]
    fn partition_balanced() {
        let insts = partition_gather(16_000, 16);
        assert!(insts.iter().all(|i| i.count == 1000));
    }
}
