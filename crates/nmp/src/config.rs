//! NMP system configuration.

use ironman_cache::CacheConfig;
use ironman_dram::DramConfig;
use ironman_ggm::PipelineModel;
use serde::{Deserialize, Serialize};

/// Configuration of the Ironman-NMP deployment.
///
/// The paper's system (Table 3) has 4 channels × 2 DIMMs × 2 ranks;
/// experiments sweep the number of *active* ranks (2–16, Fig. 12) and the
/// per-rank memory-side cache (32 KB–2 MB, Fig. 14).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct NmpConfig {
    /// Active ranks (each contributes one Rank-NMP module).
    pub ranks: usize,
    /// Ranks per DIMM (fixed at 2 in the paper's system).
    pub ranks_per_dimm: usize,
    /// ChaCha/AES PRG cores per DIMM-NMP module (Fig. 9(b) shows four
    /// GGM-tree expansion units).
    pub prg_cores_per_dimm: usize,
    /// The PRG pipeline being modeled.
    pub pipeline: PipelineModel,
    /// Per-rank memory-side cache.
    pub cache: CacheConfig,
    /// DRAM timing/geometry per rank.
    pub dram: DramConfig,
    /// Element accesses the rank logic can retire per cycle on cache hits
    /// (a 64-byte SRAM port feeds the XOR tree: four 16-byte elements).
    pub hit_lanes: usize,
}

impl NmpConfig {
    /// The paper's largest configuration: 16 ranks, 1 MB caches.
    pub fn ironman_max() -> Self {
        NmpConfig::with_ranks_and_cache(16, 1024 * 1024)
    }

    /// A configuration with a given active-rank count and per-rank cache
    /// capacity in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `ranks` is zero or odd (ranks come in pairs per DIMM).
    pub fn with_ranks_and_cache(ranks: usize, cache_bytes: usize) -> Self {
        assert!(
            ranks > 0 && ranks.is_multiple_of(2),
            "ranks must be a positive even count"
        );
        NmpConfig {
            ranks,
            ranks_per_dimm: 2,
            prg_cores_per_dimm: 4,
            pipeline: PipelineModel::CHACHA8,
            cache: CacheConfig::kb(cache_bytes / 1024),
            dram: DramConfig::ddr4_2400(),
            hit_lanes: 4,
        }
    }

    /// Active DIMMs.
    pub fn dimms(&self) -> usize {
        self.ranks / self.ranks_per_dimm
    }

    /// Total PRG cores across active DIMMs.
    pub fn total_prg_cores(&self) -> usize {
        self.dimms() * self.prg_cores_per_dimm
    }

    /// NMP logic clock in MHz (the buffer chip runs at the DRAM clock).
    pub fn clock_mhz(&self) -> f64 {
        self.dram.clock_mhz
    }

    /// Converts cycles to milliseconds at the NMP clock.
    pub fn cycles_to_ms(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.clock_mhz() * 1e3)
    }
}

impl Default for NmpConfig {
    fn default() -> Self {
        NmpConfig::ironman_max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configurations() {
        for ranks in [2usize, 4, 8, 16] {
            let c = NmpConfig::with_ranks_and_cache(ranks, 256 * 1024);
            assert_eq!(c.dimms(), ranks / 2);
            assert_eq!(c.total_prg_cores(), ranks / 2 * 4);
        }
    }

    #[test]
    fn cycle_conversion() {
        let c = NmpConfig::ironman_max();
        // 1.2e6 cycles at 1200 MHz = 1 ms.
        assert!((c.cycles_to_ms(1_200_000) - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_ranks_rejected() {
        let _ = NmpConfig::with_ranks_and_cache(3, 256 * 1024);
    }
}
