//! Rank-NMP module: the LPN gather engine (paper §5.1.2, Fig. 9(c)).
//!
//! Each rank module receives its row partition of the LPN matrix, streams
//! the `Colidx` array from its rank (sequential, bandwidth-friendly),
//! checks every element access against the memory-side cache, and sends
//! misses to the DRAM rank under FR-FCFS. Cache hits feed the XOR tree at
//! `hit_lanes` elements per cycle.

use crate::NmpConfig;
use ironman_cache::{Cache, CacheStats};
use ironman_dram::{DramStats, RankSim, Request};
use ironman_prg::Block;
use serde::{Deserialize, Serialize};

/// The LPN work assigned to one rank module.
#[derive(Clone, Debug)]
pub struct LpnWork {
    /// Element-index access trace (each entry reads one 16-byte element of
    /// the length-`k` input vector).
    pub trace: Vec<u32>,
    /// Total accesses this trace stands for. When the trace is a sampled
    /// prefix of a huge matrix, the simulator scales its cycle counts by
    /// `represented_accesses / trace.len()`.
    pub represented_accesses: u64,
}

impl LpnWork {
    /// Work that is fully materialized (no sampling).
    pub fn exact(trace: Vec<u32>) -> Self {
        let represented = trace.len() as u64;
        LpnWork {
            trace,
            represented_accesses: represented,
        }
    }

    /// The scale factor applied to simulated cycles.
    pub fn scale(&self) -> f64 {
        if self.trace.is_empty() {
            1.0
        } else {
            self.represented_accesses as f64 / self.trace.len() as f64
        }
    }
}

/// Simulation result for one rank module.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RankLpnReport {
    /// Total cycles to drain the gather (after sampling scale-up).
    pub cycles: u64,
    /// Memory-side cache statistics (of the simulated sample).
    pub cache: CacheStats,
    /// DRAM statistics of the miss stream (of the simulated sample).
    pub dram: DramStats,
    /// Cycles spent streaming the Colidx array.
    pub index_stream_cycles: u64,
}

impl RankLpnReport {
    /// Cache hit rate of the gather.
    pub fn hit_rate(&self) -> f64 {
        self.cache.hit_rate()
    }
}

/// Runs one rank module's gather.
///
/// The model: every element access probes the cache (element address =
/// `index · 16`). Misses become 64-byte line reads replayed through the
/// DDR4 rank model. The rank's issue logic retires up to
/// `cfg.hit_lanes` hit elements per cycle; DRAM work and the sequential
/// Colidx stream share the rank's data bus, so the gather drains in
/// `max(issue cycles, DRAM cycles + index-stream cycles)`.
pub fn simulate_rank(cfg: &NmpConfig, work: &LpnWork) -> RankLpnReport {
    let mut cache = Cache::new(cfg.cache);
    let mut miss_lines: Vec<Request> = Vec::new();
    let mut last_line = u64::MAX;
    for &idx in &work.trace {
        let addr = idx as u64 * Block::BYTES as u64;
        if !cache.access(addr) {
            let line = addr / cfg.dram.access_bytes as u64 * cfg.dram.access_bytes as u64;
            // Coalesce immediately repeated lines (a single fill serves
            // back-to-back misses to the same line).
            if line != last_line {
                miss_lines.push(Request::read(line));
                last_line = line;
            }
        }
    }
    let cache_stats = cache.stats();
    let dram_stats = RankSim::new(cfg.dram).run(&miss_lines);

    // Colidx streaming: 4 bytes per access at the rank's peak sequential
    // rate (access_bytes per tBL cycles).
    let idx_bytes = work.trace.len() as u64 * 4;
    let bytes_per_cycle = cfg.dram.access_bytes as u64 / cfg.dram.timing.t_bl;
    let index_stream_cycles = idx_bytes.div_ceil(bytes_per_cycle.max(1));

    let issue_cycles = (work.trace.len() as u64).div_ceil(cfg.hit_lanes as u64)
        + cache_stats.misses * cfg.cache.hit_latency;
    let memory_cycles = dram_stats.total_cycles + index_stream_cycles;
    let sample_cycles = issue_cycles.max(memory_cycles);
    let cycles = (sample_cycles as f64 * work.scale()).round() as u64;

    RankLpnReport {
        cycles,
        cache: cache_stats,
        dram: dram_stats,
        index_stream_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> NmpConfig {
        NmpConfig::with_ranks_and_cache(2, 256 * 1024)
    }

    #[test]
    fn empty_work_is_free() {
        let r = simulate_rank(&cfg(), &LpnWork::exact(vec![]));
        assert_eq!(r.cycles, 0);
        assert_eq!(r.cache.accesses(), 0);
    }

    #[test]
    fn hot_trace_is_cache_fast() {
        // All accesses to a handful of elements: everything hits after
        // warm-up, so cycles approach accesses / hit_lanes.
        let trace: Vec<u32> = (0..100_000u32).map(|i| i % 64).collect();
        let r = simulate_rank(&cfg(), &LpnWork::exact(trace.clone()));
        assert!(r.hit_rate() > 0.99);
        let issue = trace.len() as u64 / cfg().hit_lanes as u64;
        assert!(r.cycles < issue * 3, "cycles {} vs issue {issue}", r.cycles);
    }

    #[test]
    fn cold_random_trace_is_dram_bound() {
        // Strided accesses over a vector far larger than the cache.
        let trace: Vec<u32> = (0..50_000u32)
            .map(|i| (i.wrapping_mul(7919)) % 4_000_000)
            .collect();
        let r = simulate_rank(&cfg(), &LpnWork::exact(trace));
        assert!(r.hit_rate() < 0.2, "hit rate {}", r.hit_rate());
        assert!(r.dram.total_cycles > 0);
        assert!(r.cycles >= r.dram.total_cycles);
    }

    #[test]
    fn bigger_cache_fewer_cycles_on_medium_working_set() {
        // Working set ~512 KB: fits in 1 MB, thrashes 256 KB... use a
        // looping trace so temporal locality exists.
        let elems = 32 * 1024u32; // 512 KB of 16-byte elements
        let trace: Vec<u32> = (0..200_000u32).map(|i| (i * 37) % elems).collect();
        let small = simulate_rank(
            &NmpConfig::with_ranks_and_cache(2, 128 * 1024),
            &LpnWork::exact(trace.clone()),
        );
        let large = simulate_rank(
            &NmpConfig::with_ranks_and_cache(2, 1024 * 1024),
            &LpnWork::exact(trace),
        );
        assert!(large.hit_rate() > small.hit_rate());
        assert!(
            large.cycles < small.cycles,
            "large {} !< small {}",
            large.cycles,
            small.cycles
        );
    }

    #[test]
    fn sampling_scales_cycles() {
        let trace: Vec<u32> = (0..10_000u32).map(|i| i * 131 % 100_000).collect();
        let exact = LpnWork::exact(trace.clone());
        let sampled = LpnWork {
            trace,
            represented_accesses: 100_000,
        };
        let a = simulate_rank(&cfg(), &exact);
        let b = simulate_rank(&cfg(), &sampled);
        assert!((b.cycles as f64 / a.cycles as f64 - 10.0).abs() < 0.5);
    }

    #[test]
    fn index_stream_cycles_proportional() {
        let trace: Vec<u32> = vec![0; 16_000];
        let r = simulate_rank(&cfg(), &LpnWork::exact(trace));
        // 64 KB of indices at 16 B/cycle = 4096 cycles.
        assert_eq!(r.index_stream_cycles, 4000);
    }
}
