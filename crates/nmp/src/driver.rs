//! Instruction-driven execution: the host side of Fig. 9(a).
//!
//! The memory controller drives the PU with NMP instructions; this module
//! provides the compiler (an OTE work description → instruction program)
//! and the interpreter (program → cycle counts through the same DIMM/rank
//! models the direct simulator uses). It exists to demonstrate that the
//! ISA of [`crate::inst`] is sufficient to express a full OTE execution,
//! and to model the host-visible phases the direct simulator folds away
//! (vector broadcast, result streaming).

use crate::dimm::{simulate_dimm, SpcotWork};
use crate::inst::{partition_gather, NmpInst, NmpOp};
use crate::rank_lpn::{simulate_rank, LpnWork};
use crate::{NmpConfig, Role};
use ironman_lpn::LpnMatrix;
use ironman_prg::Block;
use serde::{Deserialize, Serialize};

/// Everything the interpreter needs besides the instruction stream: the
/// geometry of the OTE execution being driven.
#[derive(Clone, Debug)]
pub struct ProgramContext {
    /// LPN output rows `n`.
    pub n: usize,
    /// LPN input length `k`.
    pub k: usize,
    /// LPN row weight.
    pub weight: usize,
    /// GGM tree shape.
    pub leaves: usize,
    /// Tree arity.
    pub arity: ironman_ggm::Arity,
    /// PRG kind.
    pub prg: ironman_prg::PrgKind,
    /// Matrix seed (drives the gather traces).
    pub seed: Block,
    /// Rows actually simulated per gather instruction (sampled).
    pub sample_rows: usize,
}

/// Per-phase cycle accounting of one interpreted program.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProgramReport {
    /// Instructions executed.
    pub instructions: usize,
    /// Cycles broadcasting the pre-generated vector to the ranks.
    pub write_cycles: u64,
    /// Cycles of the slowest LPN gather (ranks run in parallel).
    pub gather_cycles: u64,
    /// Cycles of the slowest SPCOT expansion (DIMMs run in parallel).
    pub spcot_cycles: u64,
    /// Cycles streaming results back (overlapped; residual only).
    pub read_cycles: u64,
}

impl ProgramReport {
    /// End-to-end cycles with the §5.1 overlap of SPCOT and LPN.
    pub fn total_cycles(&self) -> u64 {
        self.write_cycles + self.gather_cycles.max(self.spcot_cycles) + self.read_cycles
    }
}

/// Compiles an OTE execution into an instruction program: one vector
/// broadcast, one gather per rank, one SPCOT batch per DIMM, one result
/// stream per rank.
pub fn compile_ote(cfg: &NmpConfig, n: usize, trees: usize) -> Vec<NmpInst> {
    let mut program = Vec::new();
    for rank in 0..cfg.ranks.min(16) as u8 {
        program.push(NmpInst::new(NmpOp::WriteVector, rank, 0, 0));
    }
    program.extend(partition_gather(n as u32, cfg.ranks.min(16) as u8));
    let dimms = cfg.dimms().max(1);
    let per_dimm = trees.div_ceil(dimms) as u32;
    for d in 0..dimms.min(16) as u8 {
        program.push(NmpInst::new(NmpOp::SpcotExpand, d, per_dimm, 0));
    }
    for rank in 0..cfg.ranks.min(16) as u8 {
        let per_rank = (n / cfg.ranks) as u32;
        program.push(NmpInst::new(
            NmpOp::ReadCot,
            rank,
            per_rank.min(NmpInst::MAX_COUNT),
            0,
        ));
    }
    program
}

/// Interprets a program against the cycle models.
///
/// # Panics
///
/// Panics if the program contains counts inconsistent with the context
/// (e.g. a gather larger than `ctx.n`).
pub fn execute(cfg: &NmpConfig, ctx: &ProgramContext, program: &[NmpInst]) -> ProgramReport {
    let mut report = ProgramReport {
        instructions: program.len(),
        ..Default::default()
    };
    let bytes_per_cycle = (cfg.dram.access_bytes as u64 / cfg.dram.timing.t_bl).max(1);

    for inst in program {
        match inst.op {
            NmpOp::WriteVector => {
                // Broadcast the k-vector to one rank's DRAM, sequential.
                let bytes = (ctx.k * Block::BYTES) as u64;
                report.write_cycles = report.write_cycles.max(bytes.div_ceil(bytes_per_cycle));
            }
            NmpOp::LpnGather => {
                assert!(
                    (inst.count as usize) <= ctx.n,
                    "gather of {} rows exceeds n = {}",
                    inst.count,
                    ctx.n
                );
                let rows = (inst.count as usize).min(ctx.sample_rows).max(1);
                let matrix = LpnMatrix::generate_untracked(rows, ctx.k, ctx.weight, ctx.seed);
                let work = LpnWork {
                    trace: matrix.colidx().to_vec(),
                    represented_accesses: inst.count as u64 * ctx.weight as u64,
                };
                let r = simulate_rank(cfg, &work);
                report.gather_cycles = report.gather_cycles.max(r.cycles);
            }
            NmpOp::SpcotExpand => {
                let work = SpcotWork {
                    trees: inst.count as usize,
                    leaves: ctx.leaves,
                    arity: ctx.arity,
                    prg: ctx.prg,
                    role: Role::Sender,
                };
                let r = simulate_dimm(cfg, &work, inst.count as usize);
                report.spcot_cycles = report.spcot_cycles.max(r.cycles);
            }
            NmpOp::ReadCot => {
                // Overlapped streaming: only the residual tail shows.
                let bytes = inst.count as u64 * Block::BYTES as u64;
                report.read_cycles = report
                    .read_cycles
                    .max((bytes.div_ceil(bytes_per_cycle) / 100).max(16));
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use ironman_ggm::Arity;
    use ironman_prg::PrgKind;

    fn ctx() -> ProgramContext {
        ProgramContext {
            n: 100_000,
            k: 16_384,
            weight: 10,
            leaves: 1024,
            arity: Arity::QUAD,
            prg: PrgKind::CHACHA8,
            seed: Block::from(3u128),
            sample_rows: 2048,
        }
    }

    #[test]
    fn compiled_program_shape() {
        let cfg = NmpConfig::with_ranks_and_cache(8, 256 * 1024);
        let program = compile_ote(&cfg, 100_000, 48);
        let gathers = program.iter().filter(|i| i.op == NmpOp::LpnGather).count();
        let spcots = program
            .iter()
            .filter(|i| i.op == NmpOp::SpcotExpand)
            .count();
        assert_eq!(gathers, 8);
        assert_eq!(spcots, 4);
        // Round-trip through the wire format.
        for inst in &program {
            assert_eq!(NmpInst::decode(inst.encode()).unwrap(), *inst);
        }
    }

    #[test]
    fn interpreter_matches_direct_simulator_shape() {
        // The program-driven path must agree with the direct OTE simulator
        // on the dominant phase and the overlap arithmetic.
        let cfg = NmpConfig::with_ranks_and_cache(4, 256 * 1024);
        let c = ctx();
        let program = compile_ote(&cfg, c.n, 48);
        let report = execute(&cfg, &c, &program);
        assert!(report.gather_cycles > report.spcot_cycles, "{report:?}");
        assert!(report.total_cycles() >= report.gather_cycles);
        // Write-in and read-back are minor next to the gather.
        assert!(report.write_cycles + report.read_cycles < report.gather_cycles);
    }

    #[test]
    fn more_ranks_shrink_gather() {
        let c = ctx();
        let few = {
            let cfg = NmpConfig::with_ranks_and_cache(2, 256 * 1024);
            execute(&cfg, &c, &compile_ote(&cfg, c.n, 48))
        };
        let many = {
            let cfg = NmpConfig::with_ranks_and_cache(16, 256 * 1024);
            execute(&cfg, &c, &compile_ote(&cfg, c.n, 48))
        };
        assert!(many.gather_cycles < few.gather_cycles);
    }

    #[test]
    #[should_panic(expected = "exceeds n")]
    fn oversized_gather_rejected() {
        let cfg = NmpConfig::with_ranks_and_cache(2, 256 * 1024);
        let c = ctx();
        let bad = [NmpInst::new(NmpOp::LpnGather, 0, (c.n + 1) as u32, 0)];
        execute(&cfg, &c, &bad);
    }
}
