//! The GPU baseline model (NVIDIA A6000), §6.1.
//!
//! The paper measures its GPU port of the OTE protocol at 5.88× the
//! full-thread CPU throughput, with a latency breakdown of 44.1% SPCOT /
//! 50.2% LPN, and reports that Ironman beats the GPU by 40.31× in latency
//! and 84.5× in power. We model the GPU as a scaled CPU with those
//! measured ratios.

use crate::cpu::{CpuModel, OteWorkload, PhaseLatency};
use serde::{Deserialize, Serialize};

/// Analytical A6000 baseline.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct GpuModel {
    /// Measured throughput gain over the full-thread CPU (paper: 5.88×).
    pub speedup_vs_cpu: f64,
    /// SPCOT share of execution latency (paper: 44.1%).
    pub spcot_share: f64,
    /// LPN share of execution latency (paper: 50.2%).
    pub lpn_share: f64,
    /// Board power under the OTE workload, W. Chosen so that Ironman's
    /// 1.43 W (Table 6) is an 84.5× reduction, per §6.1.
    pub power_w: f64,
}

impl GpuModel {
    /// The paper's A6000 operating point.
    pub fn a6000() -> Self {
        GpuModel {
            speedup_vs_cpu: 5.88,
            spcot_share: 0.441,
            lpn_share: 0.502,
            power_w: 120.8,
        }
    }

    /// Latency of one OTE execution: CPU latency scaled by the measured
    /// speedup, redistributed across phases per the measured breakdown.
    pub fn execution_latency(&self, cpu: &CpuModel, w: &OteWorkload) -> PhaseLatency {
        let total = cpu.execution_latency(w, false).total_s() / self.speedup_vs_cpu;
        PhaseLatency {
            init_s: total * (1.0 - self.spcot_share - self.lpn_share),
            spcot_s: total * self.spcot_share,
            lpn_s: total * self.lpn_share,
        }
    }

    /// Latency for a batch of `total_ots` outputs.
    pub fn batch_latency_s(&self, cpu: &CpuModel, w: &OteWorkload, total_ots: u64) -> f64 {
        cpu.batch_latency_s(w, total_ots) / self.speedup_vs_cpu
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_faster_than_cpu_by_measured_factor() {
        let cpu = CpuModel::xeon_full_thread();
        let gpu = GpuModel::a6000();
        let w = OteWorkload::from_counts(480, 2 * 4095, 1_221_516, 10);
        let c = cpu.execution_latency(&w, false).total_s();
        let g = gpu.execution_latency(&cpu, &w).total_s();
        assert!((c / g - 5.88).abs() < 1e-9);
    }

    #[test]
    fn phase_shares_match_paper() {
        let cpu = CpuModel::xeon_full_thread();
        let gpu = GpuModel::a6000();
        let w = OteWorkload::from_counts(480, 2 * 4095, 1_221_516, 10);
        let l = gpu.execution_latency(&cpu, &w);
        assert!((l.spcot_s / l.total_s() - 0.441).abs() < 1e-9);
        assert!((l.lpn_s / l.total_s() - 0.502).abs() < 1e-9);
    }

    #[test]
    fn power_ratio_vs_ironman_is_84_5() {
        let gpu = GpuModel::a6000();
        let ratio = gpu.power_w / crate::area_power::NMP_1MB.power_w;
        assert!((ratio - 84.5).abs() < 0.5, "power ratio {ratio}");
    }
}
