//! Performance and cost models for the Ironman reproduction.
//!
//! Everything here is *analytical*: closed-form models whose constants come
//! either from the paper itself (Tables 2, 3, 6; §6.1's GPU measurements)
//! or from first-principles DDR4/AES-NI arithmetic, calibrated so the CPU
//! baseline reproduces the paper's full-thread Ferret performance. The
//! calibration story for every constant is written down in EXPERIMENTS.md.
//!
//! * [`roofline`] — the roofline model of Fig. 1(c).
//! * [`area_power`] — PRG core and Ironman-NMP area/power (Tables 2 & 6).
//! * [`cpu`] — the 24-core Xeon baseline (Fig. 1(b), Fig. 12's "CPU" bar).
//! * [`gpu`] — the A6000 baseline (Fig. 12's "GPU" bar).
//! * [`network`] — bandwidth/RTT link model (Fig. 7(c), Table 5's two
//!   network settings).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area_power;
pub mod cpu;
pub mod energy;
pub mod gpu;
pub mod network;
pub mod roofline;

pub use cpu::{CpuModel, OteWorkload, PhaseLatency};
pub use gpu::GpuModel;
pub use network::NetworkModel;
pub use roofline::Roofline;
