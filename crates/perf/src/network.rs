//! Link model for the two-party protocol.
//!
//! The paper evaluates under two cloud settings (§6.5, following Cheetah):
//! a LAN-like link (3 Gbps, 0.15 ms RTT) and a WAN-like link
//! (400 Mbps, 20 ms RTT). Protocol time on a link is
//! `rounds · RTT + bytes · 8 / bandwidth` — combined with the measured
//! byte/round counters from `ironman-ot`'s channels this regenerates
//! Fig. 7(c) and Table 5's two column groups.

use serde::{Deserialize, Serialize};

/// A symmetric link with fixed bandwidth and round-trip time.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct NetworkModel {
    /// Bandwidth in bits per second.
    pub bandwidth_bps: f64,
    /// Round-trip latency in seconds.
    pub rtt_s: f64,
    /// Display name.
    pub name: &'static str,
}

impl NetworkModel {
    /// The paper's LAN setting: 3 Gbps, 0.15 ms.
    pub const LAN: NetworkModel = NetworkModel {
        bandwidth_bps: 3.0e9,
        rtt_s: 0.15e-3,
        name: "LAN (3Gbps, 0.15ms)",
    };

    /// The paper's WAN setting: 400 Mbps, 20 ms.
    pub const WAN: NetworkModel = NetworkModel {
        bandwidth_bps: 400.0e6,
        rtt_s: 20e-3,
        name: "WAN (400Mbps, 20ms)",
    };

    /// Time to complete a protocol that moves `bytes` and takes `rounds`
    /// sequential round trips, in seconds.
    pub fn protocol_time_s(&self, bytes: u64, rounds: u64) -> f64 {
        rounds as f64 * self.rtt_s + bytes as f64 * 8.0 / self.bandwidth_bps
    }

    /// Pure transfer time of `bytes`, ignoring rounds.
    pub fn transfer_time_s(&self, bytes: u64) -> f64 {
        self.protocol_time_s(bytes, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wan_slower_than_lan() {
        let bytes = 10 * 1024 * 1024;
        assert!(
            NetworkModel::WAN.protocol_time_s(bytes, 10)
                > NetworkModel::LAN.protocol_time_s(bytes, 10)
        );
    }

    #[test]
    fn bandwidth_term() {
        // 3 Gbps moves 375 MB/s: 375 MB should take ~1 s.
        let t = NetworkModel::LAN.transfer_time_s(375_000_000);
        assert!((t - 1.0).abs() < 1e-9);
    }

    #[test]
    fn round_term() {
        let t = NetworkModel::WAN.protocol_time_s(0, 50);
        assert!((t - 1.0).abs() < 1e-9); // 50 × 20 ms
    }

    #[test]
    fn rounds_dominate_small_wan_protocols() {
        // The paper's §6.5 observation: at low bandwidth and high RTT the
        // network, not computation, bounds OT-based protocols.
        let t_rounds = NetworkModel::WAN.protocol_time_s(1024, 100);
        let t_bytes = NetworkModel::WAN.protocol_time_s(1024 * 1024, 1);
        assert!(t_rounds > t_bytes);
    }
}
