//! The roofline model of Fig. 1(c).
//!
//! The paper measures SPCOT and LPN in "AES operations per second" against
//! operational intensity in "AES per byte". SPCOT sits at high intensity
//! (compute-bound, near the peak-AES ceiling); LPN sits at very low
//! intensity (memory-bandwidth-bound on the sloped roof). That one figure
//! justifies the whole design split — compute acceleration for SPCOT, NMP
//! for LPN — so we reproduce it quantitatively.

use serde::{Deserialize, Serialize};

/// A two-parameter roofline: compute ceiling and memory slope.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Roofline {
    /// Peak compute in AES-equivalent operations per second.
    pub peak_ops_per_s: f64,
    /// Peak memory bandwidth in bytes per second.
    pub mem_bw_bytes_per_s: f64,
}

/// One plotted kernel: measured operation and byte counts.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RooflinePoint {
    /// Operational intensity in ops/byte.
    pub intensity: f64,
    /// Attainable performance at that intensity, ops/s.
    pub attainable_ops_per_s: f64,
    /// Whether the kernel is compute-bound at this intensity.
    pub compute_bound: bool,
}

impl Roofline {
    /// The paper's CPU platform: 24-core Xeon Gold 5220R with AES-NI
    /// (≈5 G AES-equivalents/s across all threads) and 4-channel DDR4-2400
    /// (76.8 GB/s peak).
    pub fn xeon_5220r() -> Self {
        Roofline {
            peak_ops_per_s: 5.0e9,
            mem_bw_bytes_per_s: 76.8e9,
        }
    }

    /// The ridge point: intensity at which compute and memory roofs meet.
    pub fn ridge_intensity(&self) -> f64 {
        self.peak_ops_per_s / self.mem_bw_bytes_per_s
    }

    /// Evaluates the roofline at a kernel's measured `(ops, bytes)`.
    ///
    /// # Panics
    ///
    /// Panics if `bytes == 0.0`.
    pub fn point(&self, ops: f64, bytes: f64) -> RooflinePoint {
        assert!(
            bytes > 0.0,
            "a kernel that moves zero bytes has undefined intensity"
        );
        let intensity = ops / bytes;
        let mem_roof = intensity * self.mem_bw_bytes_per_s;
        let attainable = mem_roof.min(self.peak_ops_per_s);
        RooflinePoint {
            intensity,
            attainable_ops_per_s: attainable,
            compute_bound: intensity >= self.ridge_intensity(),
        }
    }
}

/// SPCOT's DRAM traffic per AES-equivalent op. Interior GGM nodes live and
/// die inside the cache (the depth-first working set is tiny); only the
/// leaf layer reaches memory — 16 bytes per leaf, with two AES ops per
/// leaf on the binary baseline, i.e. 8 bytes per op. Intensity ≈ 1/8
/// op/byte, an order of magnitude above LPN's.
pub fn spcot_traffic_bytes(ops: u64) -> f64 {
    ops as f64 * 8.0
}

/// LPN's traffic per output element: `d` random 16-byte element reads plus
/// `d` 4-byte index reads plus one 16-byte output write, against roughly
/// `d/3` AES-equivalents of index generation (one AES yields ~3 indices).
pub fn lpn_traffic_bytes(outputs: u64, weight: u64) -> f64 {
    outputs as f64 * (weight as f64 * 20.0 + 16.0)
}

/// AES-equivalent op count of LPN index generation.
pub fn lpn_ops(outputs: u64, weight: u64) -> f64 {
    outputs as f64 * weight as f64 / 3.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ridge_point_math() {
        let r = Roofline {
            peak_ops_per_s: 100.0,
            mem_bw_bytes_per_s: 50.0,
        };
        assert_eq!(r.ridge_intensity(), 2.0);
    }

    #[test]
    fn spcot_is_compute_bound_on_xeon() {
        // Fig. 1(c)'s key claim: SPCOT above the ridge, LPN below it.
        let r = Roofline::xeon_5220r();
        let ops = 2.0 * 4095.0 * 480.0; // 2^20 set, binary AES trees
        let p = r.point(ops, spcot_traffic_bytes(ops as u64));
        assert!(p.compute_bound, "SPCOT must be compute-bound: {p:?}");
    }

    #[test]
    fn lpn_is_memory_bound_on_xeon() {
        let r = Roofline::xeon_5220r();
        let n = 1_221_516u64;
        let p = r.point(lpn_ops(n, 10), lpn_traffic_bytes(n, 10));
        assert!(!p.compute_bound, "LPN must be memory-bound: {p:?}");
        assert!(p.attainable_ops_per_s < r.peak_ops_per_s);
    }

    #[test]
    fn intensities_match_fig1c_orders_of_magnitude() {
        // Fig. 1(c): SPCOT ~1e-1..1e0 AES/byte, LPN ~1e-3..1e-2.
        let r = Roofline::xeon_5220r();
        let spcot = r.point(1e6, spcot_traffic_bytes(1_000_000));
        let lpn = r.point(lpn_ops(1 << 20, 10), lpn_traffic_bytes(1 << 20, 10));
        assert!(
            (0.01..=1.0).contains(&spcot.intensity),
            "SPCOT {}",
            spcot.intensity
        );
        assert!(
            (0.001..=0.1).contains(&lpn.intensity),
            "LPN {}",
            lpn.intensity
        );
        assert!(spcot.intensity > 5.0 * lpn.intensity);
    }

    #[test]
    fn attainable_capped_at_peak() {
        let r = Roofline::xeon_5220r();
        let p = r.point(1e12, 1.0);
        assert_eq!(p.attainable_ops_per_s, r.peak_ops_per_s);
    }

    #[test]
    #[should_panic(expected = "zero bytes")]
    fn zero_bytes_rejected() {
        Roofline::xeon_5220r().point(1.0, 0.0);
    }
}
