//! Energy comparison across backends — an extension of §6.1's power
//! observation (Ironman beats the GPU by 84.5× in *power*; combining power
//! with the measured latencies yields energy-per-COT, the figure of merit
//! for datacenter deployment).

use crate::area_power::{NMP_1MB, NMP_256KB};
use crate::gpu::GpuModel;
use serde::Serialize;

/// A backend's power envelope under the OTE workload.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct PowerEnvelope {
    /// Display name.
    pub name: &'static str,
    /// Sustained power draw in watts.
    pub watts: f64,
}

impl PowerEnvelope {
    /// The 24-core Xeon under full OTE load (TDP-class draw).
    pub const CPU_XEON: PowerEnvelope = PowerEnvelope {
        name: "CPU (Xeon 5220R)",
        watts: 150.0,
    };

    /// The A6000 under the OTE workload (calibrated to §6.1's 84.5× claim).
    pub fn gpu_a6000() -> PowerEnvelope {
        PowerEnvelope {
            name: "GPU (A6000)",
            watts: GpuModel::a6000().power_w,
        }
    }

    /// Ironman-NMP with 256 KB caches (Table 6).
    pub const IRONMAN_256KB: PowerEnvelope = PowerEnvelope {
        name: "Ironman (256KB)",
        watts: NMP_256KB.power_w,
    };

    /// Ironman-NMP with 1 MB caches (Table 6).
    pub const IRONMAN_1MB: PowerEnvelope = PowerEnvelope {
        name: "Ironman (1MB)",
        watts: NMP_1MB.power_w,
    };

    /// Energy in joules for a run of `latency_s` seconds.
    pub fn energy_j(&self, latency_s: f64) -> f64 {
        self.watts * latency_s
    }

    /// Energy per COT in nanojoules given a latency and output count.
    ///
    /// # Panics
    ///
    /// Panics if `outputs == 0`.
    pub fn energy_per_cot_nj(&self, latency_s: f64, outputs: u64) -> f64 {
        assert!(outputs > 0, "need at least one output COT");
        self.energy_j(latency_s) / outputs as f64 * 1e9
    }
}

/// One row of the energy comparison.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct EnergyRow {
    /// The backend.
    pub envelope: PowerEnvelope,
    /// Latency for the batch, seconds.
    pub latency_s: f64,
    /// Energy for the batch, joules.
    pub energy_j: f64,
    /// Energy per COT, nanojoules.
    pub nj_per_cot: f64,
}

/// Builds the energy comparison for a batch of `outputs` COTs produced at
/// the given per-backend latencies.
pub fn energy_comparison(backends: &[(PowerEnvelope, f64)], outputs: u64) -> Vec<EnergyRow> {
    backends
        .iter()
        .map(|&(envelope, latency_s)| EnergyRow {
            envelope,
            latency_s,
            energy_j: envelope.energy_j(latency_s),
            nj_per_cot: envelope.energy_per_cot_nj(latency_s, outputs),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_power_ratio_matches_paper() {
        let ratio = PowerEnvelope::gpu_a6000().watts / PowerEnvelope::IRONMAN_1MB.watts;
        assert!((ratio - 84.5).abs() < 0.5);
    }

    #[test]
    fn energy_math() {
        let e = PowerEnvelope::IRONMAN_1MB.energy_j(2.0);
        assert!((e - 2.86).abs() < 1e-9);
    }

    #[test]
    fn ironman_wins_energy_by_orders_of_magnitude() {
        // CPU 0.65 s vs Ironman 7 ms for the same 2^25 batch.
        let rows = energy_comparison(
            &[
                (PowerEnvelope::CPU_XEON, 0.65),
                (PowerEnvelope::gpu_a6000(), 0.11),
                (PowerEnvelope::IRONMAN_1MB, 0.007),
            ],
            1 << 25,
        );
        let cpu = rows[0].energy_j;
        let ironman = rows[2].energy_j;
        assert!(cpu / ironman > 1000.0, "energy ratio {}", cpu / ironman);
    }

    #[test]
    fn per_cot_energy_consistent() {
        let r = PowerEnvelope::IRONMAN_256KB.energy_per_cot_nj(1.0, 1_000_000_000);
        assert!((r - 1.301).abs() < 1e-9); // 1.301 W · 1 s / 1e9 = 1.301 nJ
    }
}
