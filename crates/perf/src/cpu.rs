//! The CPU baseline model: full-thread Ferret on a 24-core Xeon.
//!
//! The model is a two-term latency decomposition matching the paper's
//! profiling (Fig. 1(b)): SPCOT is compute-bound (AES-NI throughput), LPN
//! is bound by the *effective* random-access bandwidth of DDR4. Constants:
//!
//! * `aes_ops_per_s` — 5·10⁹ AES-equiv/s full-thread (24 cores × ~0.1
//!   AES/cycle/core at 2.2 GHz, matching Fig. 1(c)'s peak line).
//! * `random_access_bw` — 11.5 GB/s: 4-channel DDR4-2400 (76.8 GB/s peak)
//!   at ~15% efficiency for dependent 16-byte gathers, the standard
//!   pointer-chase derating.
//! * `init_s` — one-time base-OT setup, amortized away in throughput
//!   figures exactly as the paper does.
//!
//! With these constants, generating 2^25 COTs takes ~0.6–0.7 s regardless
//! of the Table 4 set used — consistent with the CPU anchors implied by
//! Fig. 12's speedup ranges (e.g. 237× over a 2.7 ms Ironman run).

use serde::{Deserialize, Serialize};

/// The work content of one OTE execution, backend-agnostic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OteWorkload {
    /// AES-equivalent PRG operations in the SPCOT phase.
    pub spcot_ops: u64,
    /// Random element accesses in the LPN phase (`n · d`).
    pub lpn_accesses: u64,
    /// Bytes moved per LPN access (element + index share).
    pub lpn_bytes_per_access: u64,
    /// Output COTs produced.
    pub outputs: u64,
}

impl OteWorkload {
    /// Builds the workload of one Ferret execution from its parameters.
    ///
    /// `spcot_ops_per_tree` should be the *measured* PRG call count per
    /// tree in AES equivalents (binary AES trees: `2(ℓ−1)`).
    pub fn from_counts(trees: u64, spcot_ops_per_tree: u64, n: u64, weight: u64) -> Self {
        OteWorkload {
            spcot_ops: trees * spcot_ops_per_tree,
            lpn_accesses: n * weight,
            lpn_bytes_per_access: 20, // 16-byte element + 4-byte index
            outputs: n,
        }
    }

    /// Total LPN traffic in bytes.
    pub fn lpn_bytes(&self) -> u64 {
        self.lpn_accesses * self.lpn_bytes_per_access
    }
}

/// Latency decomposition of one execution, in seconds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseLatency {
    /// One-time initialization share (zero when amortized).
    pub init_s: f64,
    /// SPCOT phase.
    pub spcot_s: f64,
    /// LPN phase.
    pub lpn_s: f64,
}

impl PhaseLatency {
    /// Total latency.
    pub fn total_s(&self) -> f64 {
        self.init_s + self.spcot_s + self.lpn_s
    }
}

/// The calibrated CPU model.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CpuModel {
    /// AES-equivalent operations per second (all threads).
    pub aes_ops_per_s: f64,
    /// Effective random-access bandwidth, bytes/s.
    pub random_access_bw: f64,
    /// One-time initialization cost, seconds.
    pub init_s: f64,
}

impl CpuModel {
    /// Full-thread 24-core Xeon Gold 5220R (Fig. 12's CPU baseline).
    pub fn xeon_full_thread() -> Self {
        CpuModel {
            aes_ops_per_s: 5.0e9,
            random_access_bw: 11.5e9,
            init_s: 0.15,
        }
    }

    /// Single-thread variant (Fig. 1(b)'s profiling is closer to this
    /// operating point).
    pub fn xeon_single_thread() -> Self {
        CpuModel {
            aes_ops_per_s: 5.0e9 / 16.0,
            random_access_bw: 3.0e9,
            init_s: 0.3,
        }
    }

    /// The Ferret-implementation reference point used as the Fig. 12
    /// baseline. The public Ferret/EMP code path is largely sequential, so
    /// its effective rates sit well below the machine's peaks: with these
    /// constants one 2^20-set execution costs ≈0.11 s and one 2^24-set
    /// execution ≈1.5 s, reproducing the per-execution latencies implied by
    /// Fig. 1(b) and the speedup bands of Fig. 12 (see EXPERIMENTS.md).
    pub fn ferret_reference() -> Self {
        CpuModel {
            aes_ops_per_s: 0.6e9,
            random_access_bw: 2.4e9,
            init_s: 0.2,
        }
    }

    /// Latency of one OTE execution.
    pub fn execution_latency(&self, w: &OteWorkload, include_init: bool) -> PhaseLatency {
        PhaseLatency {
            init_s: if include_init { self.init_s } else { 0.0 },
            spcot_s: w.spcot_ops as f64 / self.aes_ops_per_s,
            lpn_s: w.lpn_bytes() as f64 / self.random_access_bw,
        }
    }

    /// Latency to produce `total_ots` outputs by repeating executions of
    /// workload `w` (init amortized — the paper's throughput metric).
    pub fn batch_latency_s(&self, w: &OteWorkload, total_ots: u64) -> f64 {
        let execs = (total_ots as f64 / w.outputs as f64).ceil();
        execs * self.execution_latency(w, false).total_s()
    }

    /// Sustained COT throughput in OT/s.
    pub fn throughput_ots_per_s(&self, w: &OteWorkload) -> f64 {
        w.outputs as f64 / self.execution_latency(w, false).total_s()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wl_2pow20() -> OteWorkload {
        // Binary AES trees: 2(ℓ−1) AES per tree.
        OteWorkload::from_counts(480, 2 * 4095, 1_221_516, 10)
    }

    fn wl_2pow24() -> OteWorkload {
        OteWorkload::from_counts(2100, 2 * 8191, 17_262_496, 10)
    }

    #[test]
    fn lpn_dominates_on_cpu() {
        // Fig. 1(b): LPN is the dominant phase on CPU.
        let m = CpuModel::xeon_full_thread();
        let l = m.execution_latency(&wl_2pow20(), false);
        assert!(l.lpn_s > l.spcot_s, "LPN {l:?} must dominate");
    }

    #[test]
    fn full_2pow25_batch_near_calibration_anchor() {
        // Fig. 12's implied CPU anchor: ~0.6–0.7 s for 2^25 COTs.
        let m = CpuModel::xeon_full_thread();
        for w in [wl_2pow20(), wl_2pow24()] {
            let s = m.batch_latency_s(&w, 1 << 25);
            assert!(
                (0.4..1.0).contains(&s),
                "batch latency {s} outside anchor range"
            );
        }
    }

    #[test]
    fn single_thread_slower() {
        let full = CpuModel::xeon_full_thread();
        let single = CpuModel::xeon_single_thread();
        let w = wl_2pow20();
        assert!(
            single.execution_latency(&w, false).total_s()
                > 3.0 * full.execution_latency(&w, false).total_s()
        );
    }

    #[test]
    fn init_included_once() {
        let m = CpuModel::xeon_full_thread();
        let w = wl_2pow20();
        let with = m.execution_latency(&w, true).total_s();
        let without = m.execution_latency(&w, false).total_s();
        assert!((with - without - m.init_s).abs() < 1e-12);
    }

    #[test]
    fn throughput_consistent_with_latency() {
        let m = CpuModel::xeon_full_thread();
        let w = wl_2pow20();
        let t = m.throughput_ots_per_s(&w);
        let l = m.execution_latency(&w, false).total_s();
        assert!((t * l - w.outputs as f64).abs() / (w.outputs as f64) < 1e-9);
    }
}
