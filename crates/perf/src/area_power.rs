//! Area and power models (paper Tables 2 and 6).
//!
//! The paper synthesizes its ChaCha8 core with Synopsys DC at 45 nm and
//! evaluates SRAM with CACTI; we reproduce the reported constants and the
//! arithmetic that combines them into Table 6's Ironman-NMP totals.

use serde::{Deserialize, Serialize};

/// A PRG hardware core's cost figures (one row of Table 2).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PrgCore {
    /// Display name.
    pub name: &'static str,
    /// Output bits per call.
    pub output_bits: u32,
    /// Area in mm².
    pub area_mm2: f64,
    /// Power in mW.
    pub power_mw: f64,
}

/// Table 2, AES-128 row.
pub const AES_CORE: PrgCore = PrgCore {
    name: "AES-128",
    output_bits: 128,
    area_mm2: 0.233,
    power_mw: 35.05,
};

/// Table 2, ChaCha8 row.
pub const CHACHA8_CORE: PrgCore = PrgCore {
    name: "ChaCha8",
    output_bits: 512,
    area_mm2: 0.215,
    power_mw: 45.34,
};

impl PrgCore {
    /// 128-bit blocks produced per call.
    pub fn blocks_per_call(&self) -> u32 {
        self.output_bits / 128
    }

    /// Throughput-per-area ratio normalized to a reference core
    /// (Table 2's "Perf./Area Ratios" column, AES = 1).
    pub fn perf_per_area_vs(&self, reference: &PrgCore) -> f64 {
        let own = self.blocks_per_call() as f64 / self.area_mm2;
        let base = reference.blocks_per_call() as f64 / reference.area_mm2;
        own / base
    }

    /// Energy-per-block improvement vs. a reference core (Table 2's
    /// "Power/Block Ratios" column, AES = 1; larger is better).
    pub fn power_per_block_gain_vs(&self, reference: &PrgCore) -> f64 {
        let own = self.power_mw / self.blocks_per_call() as f64;
        let base = reference.power_mw / reference.blocks_per_call() as f64;
        base / own
    }
}

/// The Ironman-NMP processing-unit cost summary (one column of Table 6).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct NmpCost {
    /// Memory-side cache capacity per rank module, bytes.
    pub cache_bytes: usize,
    /// Total PU area in mm².
    pub area_mm2: f64,
    /// Total PU power in W.
    pub power_w: f64,
}

/// Table 6: Ironman-NMP with 256 KB caches.
pub const NMP_256KB: NmpCost = NmpCost {
    cache_bytes: 256 * 1024,
    area_mm2: 1.482,
    power_w: 1.301,
};

/// Table 6: Ironman-NMP with 1 MB caches.
pub const NMP_1MB: NmpCost = NmpCost {
    cache_bytes: 1024 * 1024,
    area_mm2: 2.995,
    power_w: 1.430,
};

/// Table 6: a typical DRAM chip, for scale.
pub const DRAM_CHIP: NmpCost = NmpCost {
    cache_bytes: 0,
    area_mm2: 100.0,
    power_w: 10.0,
};

/// Interpolates the Ironman-NMP PU cost for an arbitrary per-rank cache
/// size, anchored to the two deployed points (Table 6) with linear SRAM
/// scaling. Used by Fig. 14's area column.
pub fn nmp_cost_for_cache(cache_bytes: usize) -> NmpCost {
    let kb = cache_bytes as f64 / 1024.0;
    let (a0, a1) = (NMP_256KB.area_mm2, NMP_1MB.area_mm2);
    let (p0, p1) = (NMP_256KB.power_w, NMP_1MB.power_w);
    let slope_a = (a1 - a0) / (1024.0 - 256.0);
    let slope_p = (p1 - p0) / (1024.0 - 256.0);
    NmpCost {
        cache_bytes,
        area_mm2: a0 + slope_a * (kb - 256.0),
        power_w: p0 + slope_p * (kb - 256.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_perf_per_area() {
        // Paper: ChaCha8 perf/area ratio 4.491 vs AES.
        // Pure blocks/mm² arithmetic gives 4.34; the paper's 4.491 folds in
        // a small clock-frequency difference between the synthesized cores.
        let r = CHACHA8_CORE.perf_per_area_vs(&AES_CORE);
        assert!((r - 4.491).abs() < 0.25, "perf/area {r}");
    }

    #[test]
    fn table2_power_per_block() {
        // Paper: ChaCha8 power/block ratio 3.092 vs AES.
        let r = CHACHA8_CORE.power_per_block_gain_vs(&AES_CORE);
        assert!((r - 3.092).abs() < 0.15, "power/block {r}");
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // documents the Table 6 ordering
    fn chacha_area_smaller_than_aes() {
        assert!(CHACHA8_CORE.area_mm2 < AES_CORE.area_mm2);
    }

    #[test]
    fn table6_anchors_reproduced() {
        let c256 = nmp_cost_for_cache(256 * 1024);
        let c1m = nmp_cost_for_cache(1024 * 1024);
        assert!((c256.area_mm2 - 1.482).abs() < 1e-9);
        assert!((c1m.area_mm2 - 2.995).abs() < 1e-9);
        assert!((c256.power_w - 1.301).abs() < 1e-9);
        assert!((c1m.power_w - 1.430).abs() < 1e-9);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // documents the <3% headline
    fn nmp_is_tiny_next_to_dram_chip() {
        // The paper's headline: <3% of a typical DRAM chip's area.
        assert!(NMP_1MB.area_mm2 / DRAM_CHIP.area_mm2 < 0.03);
        assert!(NMP_1MB.power_w / DRAM_CHIP.power_w < 0.15);
    }

    #[test]
    fn interpolation_monotone() {
        let a = nmp_cost_for_cache(128 * 1024);
        let b = nmp_cost_for_cache(512 * 1024);
        let c = nmp_cost_for_cache(2048 * 1024);
        assert!(a.area_mm2 < b.area_mm2 && b.area_mm2 < c.area_mm2);
        assert!(a.power_w < b.power_w && b.power_w < c.power_w);
    }
}
