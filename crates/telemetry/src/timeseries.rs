//! Bounded retention for periodic snapshots, and counter→rate helpers.
//!
//! Cumulative counters and lifetime histograms answer "how much ever",
//! not "how fast now". [`TimeSeries`] keeps the last N timestamped
//! snapshots of anything (the fleet observer retains
//! `FleetSnapshot`s), so windowed views — rates over the last 5 s,
//! latency quantiles over the last minute — can be derived by pairing
//! the latest point with a baseline near the window start and
//! subtracting ([`HistogramSnapshot::delta`] for distributions,
//! [`counter_rate`] for monotonic counters).
//!
//! All timestamps are nanoseconds on one process-wide monotonic clock
//! ([`now_nanos`]); the ring assumes pushes arrive in nondecreasing
//! time order, which a single scrape loop guarantees.
//!
//! [`HistogramSnapshot::delta`]: crate::HistogramSnapshot::delta
//! [`now_nanos`]: crate::now_nanos

use std::collections::VecDeque;

/// One retained observation: a value and when it was taken.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SeriesPoint<T> {
    /// Monotonic capture time in nanoseconds (the [`crate::now_nanos`]
    /// clock).
    pub at_nanos: u64,
    /// The observed value.
    pub value: T,
}

/// A bounded ring of timestamped snapshots, oldest evicted first.
#[derive(Clone, Debug)]
pub struct TimeSeries<T> {
    capacity: usize,
    points: VecDeque<SeriesPoint<T>>,
}

impl<T> TimeSeries<T> {
    /// An empty series retaining at most `capacity` points.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> TimeSeries<T> {
        assert!(capacity > 0, "time series capacity must be positive");
        TimeSeries {
            capacity,
            points: VecDeque::with_capacity(capacity.min(1024)),
        }
    }

    /// Appends a point taken at `at_nanos`, evicting the oldest retained
    /// point if the ring is full.
    pub fn push(&mut self, at_nanos: u64, value: T) {
        if self.points.len() == self.capacity {
            self.points.pop_front();
        }
        self.points.push_back(SeriesPoint { at_nanos, value });
    }

    /// Points retained.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether nothing has been pushed (or everything evicted).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The retention bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The most recent point.
    pub fn latest(&self) -> Option<&SeriesPoint<T>> {
        self.points.back()
    }

    /// The baseline for a window ending at `now_nanos`: the newest
    /// retained point captured at or before `now_nanos − window_nanos`.
    /// When retention is shorter than the window, falls back to the
    /// oldest retained point — the caller derives the actual span from
    /// the returned timestamp, so a short ring yields a shorter
    /// (honest) window rather than an error.
    pub fn baseline(&self, now_nanos: u64, window_nanos: u64) -> Option<&SeriesPoint<T>> {
        let start = now_nanos.saturating_sub(window_nanos);
        self.points
            .iter()
            .rev()
            .find(|p| p.at_nanos <= start)
            .or_else(|| self.points.front())
    }

    /// Iterates the retained points, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &SeriesPoint<T>> {
        self.points.iter()
    }
}

/// The per-second rate of a monotonic counter over a window:
/// `(later − earlier) / dt`. A later value *below* the earlier one can
/// only mean the counting process restarted; the counter is then
/// cumulative since the restart, so the rate degrades to
/// `later / dt` instead of going negative. Returns 0 for an empty
/// window (`dt_nanos == 0`).
pub fn counter_rate(later: u64, earlier: u64, dt_nanos: u64) -> f64 {
    if dt_nanos == 0 {
        return 0.0;
    }
    let grew = if later >= earlier {
        later - earlier
    } else {
        later
    };
    grew as f64 * 1e9 / dt_nanos as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest() {
        let mut s = TimeSeries::new(3);
        for t in 0..5u64 {
            s.push(t * 100, t);
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.capacity(), 3);
        let kept: Vec<u64> = s.iter().map(|p| p.value).collect();
        assert_eq!(kept, vec![2, 3, 4]);
        assert_eq!(s.latest().unwrap().at_nanos, 400);
    }

    #[test]
    fn baseline_picks_newest_at_or_before_window_start() {
        let mut s = TimeSeries::new(16);
        for t in [100u64, 200, 300, 400, 500] {
            s.push(t, t);
        }
        // Window of 250 ending at 500 starts at 250: baseline is the
        // newest point at or before 250.
        assert_eq!(s.baseline(500, 250).unwrap().at_nanos, 200);
        // Exact boundary counts.
        assert_eq!(s.baseline(500, 200).unwrap().at_nanos, 300);
        // Window longer than retention: oldest point, honest short span.
        assert_eq!(s.baseline(500, 10_000).unwrap().at_nanos, 100);
        assert!(TimeSeries::<u64>::new(4).baseline(500, 100).is_none());
    }

    #[test]
    fn counter_rate_is_reset_aware() {
        // 1000 events over 2 seconds.
        assert_eq!(counter_rate(3000, 2000, 2_000_000_000), 500.0);
        // Restarted counter: never negative, degrades to since-restart.
        assert_eq!(counter_rate(40, 2000, 1_000_000_000), 40.0);
        // Empty window.
        assert_eq!(counter_rate(10, 0, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = TimeSeries::<u64>::new(0);
    }
}
