//! Bounded ring-buffer event tracing for the serving stack.
//!
//! A [`TraceLog`] holds the last `capacity` [`TraceEvent`]s — extension
//! and stall edges, chunk pushes, credit waits, refills, epoch fences,
//! failovers — each stamped on one process-wide monotonic clock
//! ([`now_nanos`]) so events from different components (session threads,
//! serving threads, cluster controllers) interleave meaningfully in one
//! dump. Pushing takes a short mutex on a preallocated ring; with the
//! crate's `noop` feature [`TraceLog::push`] compiles to an empty body,
//! keeping the hot path clean in the baseline build.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Instant;

/// Default ring capacity: enough for several seconds of serving events
/// without measurable memory cost (a few hundred KiB per log).
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

/// Nanoseconds since the process-wide trace epoch (the first call
/// anywhere in the process). All [`TraceLog`]s stamp on this one clock.
pub fn now_nanos() -> u64 {
    static ANCHOR: std::sync::OnceLock<Instant> = std::sync::OnceLock::new();
    let anchor = *ANCHOR.get_or_init(Instant::now);
    u64::try_from(anchor.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// What happened. The `u8` discriminants are the wire encoding (v6
/// `TraceDump` replies) and must stay stable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum EventKind {
    /// A FERRET extension began (arg: extension ordinal).
    ExtensionStart = 0,
    /// A FERRET extension finished. The arg packs the per-phase split —
    /// SPCOT nanoseconds in the high 32 bits, LPN nanoseconds in the
    /// low 32 (each saturating at `u32::MAX`); the total duration is
    /// this event's timestamp minus the matching
    /// [`EventKind::ExtensionStart`]'s.
    ExtensionEnd = 1,
    /// A consumer found the staging buffer empty and blocked.
    StallStart = 2,
    /// The blocked consumer was handed a batch (arg: nanoseconds
    /// spent stalled).
    StallEnd = 3,
    /// A streaming chunk was pushed to a subscriber (arg: COTs in the
    /// chunk).
    ChunkPush = 4,
    /// A streaming session ran out of credit and blocked waiting for
    /// more (arg: nanoseconds spent waiting).
    CreditWait = 5,
    /// A pool shard refilled from its supply (arg: COTs added).
    Refill = 6,
    /// A request was fenced for carrying a stale membership epoch
    /// (arg: the server's current epoch).
    EpochFence = 7,
    /// A cluster client failed over away from a server (arg: the
    /// server id it abandoned).
    Failover = 8,
    /// An operation hit its data-path deadline before the peer answered
    /// (arg: the deadline in nanoseconds).
    Timeout = 9,
    /// A client retried after backoff under its retry budget (arg: the
    /// backoff slept in nanoseconds).
    Retry = 10,
    /// A subscriber too slow to drain its pushes was evicted via tracked
    /// close (arg: COTs still pending for the stream at eviction).
    SubscriberEvicted = 11,
    /// A deterministic fault-injection layer fired (arg: a
    /// fault-kind discriminant; see `ironman-net`'s `FaultKind`).
    FaultInjected = 12,
    /// A server declined to serve while degraded (arg: the
    /// `retry_after_ms` hint it sent).
    Unavailable = 13,
}

impl EventKind {
    /// Every kind, in wire order.
    pub const ALL: [EventKind; 14] = [
        EventKind::ExtensionStart,
        EventKind::ExtensionEnd,
        EventKind::StallStart,
        EventKind::StallEnd,
        EventKind::ChunkPush,
        EventKind::CreditWait,
        EventKind::Refill,
        EventKind::EpochFence,
        EventKind::Failover,
        EventKind::Timeout,
        EventKind::Retry,
        EventKind::SubscriberEvicted,
        EventKind::FaultInjected,
        EventKind::Unavailable,
    ];

    /// The wire discriminant.
    pub fn as_u8(self) -> u8 {
        self as u8
    }

    /// Decodes a wire discriminant; `None` for unknown values.
    pub fn from_u8(v: u8) -> Option<EventKind> {
        EventKind::ALL.get(v as usize).copied()
    }

    /// A short human-readable label (trace dumps, demos).
    pub fn label(self) -> &'static str {
        match self {
            EventKind::ExtensionStart => "ext-start",
            EventKind::ExtensionEnd => "ext-end",
            EventKind::StallStart => "stall-start",
            EventKind::StallEnd => "stall-end",
            EventKind::ChunkPush => "chunk-push",
            EventKind::CreditWait => "credit-wait",
            EventKind::Refill => "refill",
            EventKind::EpochFence => "epoch-fence",
            EventKind::Failover => "failover",
            EventKind::Timeout => "timeout",
            EventKind::Retry => "retry",
            EventKind::SubscriberEvicted => "sub-evicted",
            EventKind::FaultInjected => "fault",
            EventKind::Unavailable => "unavailable",
        }
    }
}

/// Packs an extension's per-phase split into an
/// [`EventKind::ExtensionEnd`] arg: SPCOT nanoseconds high, LPN
/// nanoseconds low, each saturating at `u32::MAX` (~4.3 s — orders of
/// magnitude above any real extension phase).
pub fn pack_phase_split(spcot_nanos: u64, lpn_nanos: u64) -> u64 {
    (spcot_nanos.min(u64::from(u32::MAX)) << 32) | lpn_nanos.min(u64::from(u32::MAX))
}

/// Unpacks [`pack_phase_split`]: `(SPCOT, LPN)` nanoseconds.
pub fn unpack_phase_split(arg: u64) -> (u64, u64) {
    (arg >> 32, arg & u64::from(u32::MAX))
}

/// One timestamped event: when (on the [`now_nanos`] clock), what, and a
/// kind-specific argument (see [`EventKind`] variants).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// When the event happened, in [`now_nanos`] time.
    pub at_nanos: u64,
    /// What happened.
    pub kind: EventKind,
    /// Kind-specific argument (duration, size, ordinal, id).
    pub arg: u64,
}

/// A bounded ring of recent [`TraceEvent`]s. Full ⇒ the oldest event is
/// evicted; the log never blocks or grows. Dumpable on demand (locally
/// or over the wire via the v6 `Trace` RPC).
#[derive(Debug)]
pub struct TraceLog {
    events: Mutex<VecDeque<TraceEvent>>,
    capacity: usize,
}

impl TraceLog {
    /// An empty log retaining the most recent `capacity` events
    /// (clamped to ≥ 1).
    pub fn new(capacity: usize) -> TraceLog {
        let capacity = capacity.max(1);
        TraceLog {
            events: Mutex::new(VecDeque::with_capacity(capacity)),
            capacity,
        }
    }

    /// The retention bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records an event stamped [`now_nanos`]. Empty body under the
    /// `noop` feature.
    #[inline]
    pub fn push(&self, kind: EventKind, arg: u64) {
        #[cfg(not(feature = "noop"))]
        self.push_at(now_nanos(), kind, arg);
        #[cfg(feature = "noop")]
        let _ = (kind, arg);
    }

    /// Records an event with an explicit timestamp (tests, replaying
    /// decoded dumps). Not gated by `noop`.
    pub fn push_at(&self, at_nanos: u64, kind: EventKind, arg: u64) {
        let mut events = self.lock();
        if events.len() == self.capacity {
            events.pop_front();
        }
        events.push_back(TraceEvent {
            at_nanos,
            kind,
            arg,
        });
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether the log holds no events.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Copies the retained events out, oldest first.
    pub fn dump(&self) -> Vec<TraceEvent> {
        self.lock().iter().copied().collect()
    }

    /// Drops all retained events.
    pub fn clear(&self) {
        self.lock().clear();
    }

    /// A recording panicked mid-push at worst leaves a complete ring;
    /// keep serving rather than poisoning every later dump.
    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<TraceEvent>> {
        self.events
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl Default for TraceLog {
    fn default() -> TraceLog {
        TraceLog::new(DEFAULT_TRACE_CAPACITY)
    }
}

/// Merges several dumps into one timeline, sorted by timestamp and
/// truncated to the **most recent** `max_events` — what the v6 `Trace`
/// RPC returns when a server combines its per-shard and service logs.
pub fn merge_dumps(dumps: &[Vec<TraceEvent>], max_events: usize) -> Vec<TraceEvent> {
    let mut all: Vec<TraceEvent> = dumps.iter().flatten().copied().collect();
    all.sort_by_key(|e| e.at_nanos);
    if all.len() > max_events {
        all.drain(..all.len() - max_events);
    }
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_retains_most_recent() {
        let log = TraceLog::new(3);
        for i in 0..5u64 {
            log.push_at(i, EventKind::Refill, i * 10);
        }
        let events = log.dump();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].at_nanos, 2);
        assert_eq!(events[2].arg, 40);
    }

    #[test]
    fn kinds_round_trip_through_wire_discriminants() {
        for kind in EventKind::ALL {
            assert_eq!(EventKind::from_u8(kind.as_u8()), Some(kind));
        }
        assert_eq!(EventKind::from_u8(EventKind::ALL.len() as u8), None);
        assert_eq!(EventKind::from_u8(u8::MAX), None);
    }

    #[test]
    fn clock_is_monotonic() {
        let a = now_nanos();
        let b = now_nanos();
        assert!(b >= a);
    }

    #[cfg(not(feature = "noop"))]
    #[test]
    fn push_stamps_the_shared_clock() {
        let log = TraceLog::default();
        let before = now_nanos();
        log.push(EventKind::ChunkPush, 128);
        let after = now_nanos();
        let events = log.dump();
        assert_eq!(events.len(), 1);
        assert!(events[0].at_nanos >= before && events[0].at_nanos <= after);
    }

    #[test]
    fn merge_dumps_sorts_and_truncates() {
        let a = vec![
            TraceEvent {
                at_nanos: 5,
                kind: EventKind::Refill,
                arg: 0,
            },
            TraceEvent {
                at_nanos: 9,
                kind: EventKind::ChunkPush,
                arg: 0,
            },
        ];
        let b = vec![TraceEvent {
            at_nanos: 7,
            kind: EventKind::StallStart,
            arg: 0,
        }];
        let merged = merge_dumps(&[a, b], 2);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].at_nanos, 7);
        assert_eq!(merged[1].at_nanos, 9);
    }
}
