//! A lock-free, allocation-free log-bucketed latency histogram.
//!
//! [`Histogram::record`] is a handful of relaxed atomic adds on a fixed
//! bucket array — no locks, no allocation, no branches beyond the bucket
//! index — cheap enough for the serving hot path. Buckets follow an
//! HDR-style log-linear layout with 16 sub-buckets per octave: values
//! below 32 land in exact single-value buckets, and every wider bucket
//! spans at most 1/16 of its lower bound, so any quantile read off the
//! histogram overstates the true value by at most 6.25% (and is exact
//! under 32). [`HistogramSnapshot`] is the passive view: sparse,
//! mergeable (fleet aggregation is a merge-join of sorted bucket lists),
//! and wire-encodable for `Stats` replies.
//!
//! With the crate's `noop` feature, [`Histogram::record`] compiles to an
//! empty body and [`Stopwatch`] to a zero-sized type, so instrumented
//! call sites vanish entirely — the baseline side of the telemetry
//! overhead head-to-head in CI.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket resolution: 2^4 = 16 sub-buckets per octave, bounding the
/// relative width of any bucket (and so the quantile error) at 1/16.
const SUB_BITS: u32 = 4;

/// Total bucket count: 32 exact buckets for values `0..32`, then 16
/// sub-buckets for each octave up to `u64::MAX` (60 octave groups).
pub const NUM_BUCKETS: usize = ((64 - SUB_BITS as usize) + 1) << SUB_BITS;

/// Minimum encoded size of a [`HistogramSnapshot`] (empty histogram):
/// count, sum, and max as `u64` plus a `u16` sparse-bucket count.
pub const ENCODED_MIN_LEN: usize = 3 * 8 + 2;

/// Bytes per sparse bucket entry on the wire: `u16` index + `u64` count.
const ENTRY_LEN: usize = 2 + 8;

/// The bucket index recording `value`: the identity for `value < 32`,
/// log-linear above (highest set bit picks the octave, the next
/// [`SUB_BITS`] bits pick the sub-bucket).
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value < 32 {
        value as usize
    } else {
        let h = 63 - value.leading_zeros() as usize; // >= 5
        ((h - 3) << SUB_BITS) + ((value >> (h - SUB_BITS as usize)) & 15) as usize
    }
}

/// The smallest value landing in bucket `index` (inverse of
/// [`bucket_index`] on bucket boundaries).
///
/// # Panics
///
/// Panics if `index >= NUM_BUCKETS`.
#[inline]
pub fn bucket_floor(index: usize) -> u64 {
    assert!(index < NUM_BUCKETS, "bucket index out of range");
    if index < 32 {
        index as u64
    } else {
        let g = (index >> SUB_BITS) as u32; // >= 2
        (16 + (index & 15) as u64) << (g - 1)
    }
}

/// The largest value landing in bucket `index` — what quantile reads
/// report, making them overestimates by at most the bucket width
/// (6.25% relative, exact below 32).
///
/// # Panics
///
/// Panics if `index >= NUM_BUCKETS`.
#[inline]
pub fn bucket_ceiling(index: usize) -> u64 {
    assert!(index < NUM_BUCKETS, "bucket index out of range");
    if index + 1 < NUM_BUCKETS {
        bucket_floor(index + 1) - 1
    } else {
        u64::MAX
    }
}

/// A started wall-clock timer for latency recording. With the `noop`
/// feature this is a zero-sized type and [`Stopwatch::elapsed_nanos`]
/// returns 0, so call sites pay nothing — not even the `Instant::now()`
/// read.
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch {
    #[cfg(not(feature = "noop"))]
    started: std::time::Instant,
}

impl Stopwatch {
    /// Starts the timer.
    #[inline]
    pub fn start() -> Stopwatch {
        Stopwatch {
            #[cfg(not(feature = "noop"))]
            started: std::time::Instant::now(),
        }
    }

    /// Nanoseconds since [`Stopwatch::start`] (0 under `noop`),
    /// saturating at `u64::MAX`.
    #[inline]
    pub fn elapsed_nanos(&self) -> u64 {
        #[cfg(not(feature = "noop"))]
        {
            u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX)
        }
        #[cfg(feature = "noop")]
        0
    }
}

impl Default for Stopwatch {
    fn default() -> Stopwatch {
        Stopwatch::start()
    }
}

/// A lock-free log-bucketed histogram of `u64` samples (latencies in
/// nanoseconds, by convention). Concurrent [`Histogram::record`] calls
/// never lose samples: each is one relaxed `fetch_add` per touched
/// atomic, so a snapshot taken after all recorders quiesce holds exact
/// per-bucket counts.
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; NUM_BUCKETS],
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample: three relaxed atomic RMWs (bucket, sum, max).
    /// Compiles to nothing with the `noop` feature.
    #[inline]
    pub fn record(&self, value: u64) {
        #[cfg(not(feature = "noop"))]
        {
            self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(value, Ordering::Relaxed);
            self.max.fetch_max(value, Ordering::Relaxed);
        }
        #[cfg(feature = "noop")]
        let _ = value;
    }

    /// Records the elapsed nanoseconds of `sw` (a no-op under `noop`,
    /// where the stopwatch never read the clock in the first place).
    #[inline]
    pub fn record_elapsed(&self, sw: Stopwatch) {
        #[cfg(not(feature = "noop"))]
        self.record(sw.elapsed_nanos());
        #[cfg(feature = "noop")]
        let _ = sw;
    }

    /// A passive snapshot of the current contents. The snapshot's count
    /// is derived from the bucket array (not a separate counter), so it
    /// is always internally consistent even against in-flight recorders.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        let mut count = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n != 0 {
                count += n;
                buckets.push((i as u16, n));
            }
        }
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &snap.count())
            .field("max", &snap.max())
            .field("p50", &snap.p50())
            .field("p99", &snap.p99())
            .finish()
    }
}

/// A passive, mergeable view of a [`Histogram`]: sparse sorted
/// `(bucket index, count)` pairs plus the sample count, sum, and exact
/// maximum. This is what travels in wire-v6 `Stats` replies and what
/// the fleet observer merges across servers.
///
/// Quantiles report the **bucket ceiling** of the first bucket whose
/// cumulative count reaches `ceil(q · count)`. That makes quantile
/// extraction exactly order-preserving under merging — a merged
/// quantile always lies between the minimum and maximum of the inputs'
/// quantiles — at the cost of overstating the true sample by at most
/// one bucket width (6.25% relative; exact below 32).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    count: u64,
    sum: u64,
    max: u64,
    /// Sorted by bucket index; counts are nonzero.
    buckets: Vec<(u16, u64)>,
}

impl HistogramSnapshot {
    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded values (wrapping on overflow, like the
    /// underlying relaxed counter).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The exact largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean recorded value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The sparse `(bucket index, count)` pairs, sorted by index.
    pub fn buckets(&self) -> &[(u16, u64)] {
        &self.buckets
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as a bucket ceiling — an
    /// overestimate of the true sample by at most 6.25% (exact below
    /// 32). Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for &(i, n) in &self.buckets {
            cum += n;
            if cum >= rank {
                return bucket_ceiling(i as usize);
            }
        }
        // Unreachable for internally consistent snapshots (count is the
        // bucket total); fall back to the last bucket's ceiling.
        self.buckets
            .last()
            .map_or(0, |&(i, _)| bucket_ceiling(i as usize))
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Folds `other` into `self` (a merge-join of the sorted sparse
    /// bucket lists). Merging then extracting a quantile brackets the
    /// inputs: `merged.quantile(q)` lies in
    /// `[min, max]` of the inputs' `quantile(q)`.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        let mut merged = Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let mut a = self.buckets.iter().copied().peekable();
        let mut b = other.buckets.iter().copied().peekable();
        loop {
            match (a.peek(), b.peek()) {
                (Some(&(ia, na)), Some(&(ib, nb))) => {
                    if ia < ib {
                        merged.push((ia, na));
                        a.next();
                    } else if ib < ia {
                        merged.push((ib, nb));
                        b.next();
                    } else {
                        merged.push((ia, na + nb));
                        a.next();
                        b.next();
                    }
                }
                (Some(_), None) => {
                    merged.extend(a.by_ref());
                    break;
                }
                (None, Some(_)) => {
                    merged.extend(b.by_ref());
                    break;
                }
                (None, None) => break,
            }
        }
        self.buckets = merged;
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// The windowed difference `self − earlier`: the samples recorded
    /// between the moment `earlier` was taken and the moment `self`
    /// was, so quantiles extracted from the result describe the last
    /// window instead of process lifetime.
    ///
    /// The subtraction is monotone-checked bucket by bucket. When
    /// `earlier` is not a pointwise lower bound of `self` — some bucket
    /// shrank, which for a cumulative histogram can only mean the
    /// recording process restarted between the two snapshots — the
    /// method falls back to returning `self` unchanged: the window then
    /// covers "since the restart", which is the longest span the later
    /// snapshot can truthfully describe. Counts therefore never go
    /// negative.
    ///
    /// The result's `max()` is an upper bound, not an exact sample: the
    /// lifetime maximum may predate the window, so the window max is
    /// capped at the ceiling of the highest bucket that actually grew
    /// (and at the lifetime max). Quantiles keep their usual contract —
    /// ceilings that bound the true windowed samples from above by at
    /// most one bucket width.
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        if earlier.count == 0 {
            return self.clone();
        }
        let mut buckets = Vec::with_capacity(self.buckets.len());
        let mut old = earlier.buckets.iter().copied().peekable();
        for &(i, n) in &self.buckets {
            if old.peek().is_some_and(|&(io, _)| io < i) {
                // `earlier` holds a bucket `self` lost entirely: reset.
                return self.clone();
            }
            let was = match old.peek() {
                Some(&(io, no)) if io == i => {
                    old.next();
                    no
                }
                _ => 0,
            };
            if was > n {
                return self.clone();
            }
            if n > was {
                buckets.push((i, n - was));
            }
        }
        if old.peek().is_some() {
            return self.clone();
        }
        if buckets.is_empty() {
            // Nothing recorded in the window; sums of canonical
            // snapshots agree, so report a clean empty histogram.
            return HistogramSnapshot::default();
        }
        let count: u64 = buckets.iter().map(|&(_, n)| n).sum();
        let top = bucket_ceiling(buckets.last().map_or(0, |&(i, _)| i as usize));
        HistogramSnapshot {
            count,
            sum: self.sum.wrapping_sub(earlier.sum),
            max: self.max.min(top),
            buckets,
        }
    }

    /// Appends the compact wire encoding: count, sum, max (`u64` LE), a
    /// `u16` sparse-entry count, then `(u16 index, u64 count)` per
    /// entry. The encoding is canonical (sorted, nonzero, in-range
    /// entries whose counts total `count`), so encode→decode is the
    /// identity.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.count.to_le_bytes());
        out.extend_from_slice(&self.sum.to_le_bytes());
        out.extend_from_slice(&self.max.to_le_bytes());
        out.extend_from_slice(&(self.buckets.len() as u16).to_le_bytes());
        for &(i, n) in &self.buckets {
            out.extend_from_slice(&i.to_le_bytes());
            out.extend_from_slice(&n.to_le_bytes());
        }
    }

    /// Decodes one snapshot from the front of `bytes`, returning it and
    /// the bytes consumed. Returns `None` on truncation or any
    /// non-canonical form — entry count over [`NUM_BUCKETS`], indices
    /// out of range or not strictly increasing, zero or overflowing
    /// counts, or a stated count that disagrees with the bucket total —
    /// so a hostile peer can neither force large allocations nor forge
    /// an inconsistent histogram.
    pub fn decode_from(bytes: &[u8]) -> Option<(HistogramSnapshot, usize)> {
        if bytes.len() < ENCODED_MIN_LEN {
            return None;
        }
        let u64_at = |off: usize| u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap());
        let count = u64_at(0);
        let sum = u64_at(8);
        let max = u64_at(16);
        let entries = u16::from_le_bytes(bytes[24..26].try_into().unwrap()) as usize;
        if entries > NUM_BUCKETS {
            return None;
        }
        let need = entries.checked_mul(ENTRY_LEN)?;
        if need > bytes.len() - ENCODED_MIN_LEN {
            return None;
        }
        let mut buckets = Vec::with_capacity(entries);
        let mut total = 0u64;
        let mut prev: Option<u16> = None;
        let mut off = ENCODED_MIN_LEN;
        for _ in 0..entries {
            let i = u16::from_le_bytes(bytes[off..off + 2].try_into().unwrap());
            let n = u64_at(off + 2);
            off += ENTRY_LEN;
            if (i as usize) >= NUM_BUCKETS || n == 0 || prev.is_some_and(|p| i <= p) {
                return None;
            }
            total = total.checked_add(n)?;
            prev = Some(i);
            buckets.push((i, n));
        }
        if total != count {
            return None;
        }
        Some((
            HistogramSnapshot {
                count,
                sum,
                max,
                buckets,
            },
            off,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..32u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_floor(v as usize), v);
            assert_eq!(bucket_ceiling(v as usize), v);
        }
    }

    #[test]
    fn bucket_bounds_are_consistent() {
        // Every value lands between its bucket's floor and ceiling, and
        // boundaries invert exactly.
        for &v in &[0u64, 1, 31, 32, 33, 63, 64, 100, 1000, 1 << 20, u64::MAX] {
            let i = bucket_index(v);
            assert!(bucket_floor(i) <= v, "floor({i}) > {v}");
            assert!(v <= bucket_ceiling(i), "ceiling({i}) < {v}");
        }
        for i in 0..NUM_BUCKETS {
            assert_eq!(bucket_index(bucket_floor(i)), i, "floor of {i}");
            assert_eq!(bucket_index(bucket_ceiling(i)), i, "ceiling of {i}");
        }
    }

    #[test]
    fn bucket_error_bound_holds() {
        // Relative bucket width (the quantile error bound): <= 1/16.
        for i in 32..NUM_BUCKETS - 1 {
            let lo = bucket_floor(i);
            let hi = bucket_ceiling(i);
            assert!((hi - lo) as f64 / lo as f64 <= 1.0 / 16.0, "bucket {i}");
        }
    }

    #[cfg(not(feature = "noop"))]
    #[test]
    fn quantiles_track_recorded_values() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 1000);
        assert_eq!(s.max(), 1000);
        // Bucket-ceiling quantiles overestimate by at most 6.25%.
        for (q, expect) in [(0.50, 500u64), (0.90, 900), (0.99, 990), (1.0, 1000)] {
            let got = s.quantile(q);
            assert!(got >= expect, "q{q}: {got} < {expect}");
            assert!(
                got as f64 <= expect as f64 * (1.0 + 1.0 / 16.0) + 1.0,
                "q{q}: {got}"
            );
        }
    }

    #[test]
    fn empty_histogram_is_zero() {
        let s = Histogram::new().snapshot();
        assert!(s.is_empty());
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.max(), 0);
        assert_eq!(s.mean(), 0.0);
        let mut out = Vec::new();
        s.encode_into(&mut out);
        assert_eq!(out.len(), ENCODED_MIN_LEN);
        let (back, used) = HistogramSnapshot::decode_from(&out).unwrap();
        assert_eq!(back, s);
        assert_eq!(used, out.len());
    }

    #[cfg(not(feature = "noop"))]
    #[test]
    fn merge_accumulates() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in 0..100u64 {
            a.record(v);
            b.record(v * 1000);
        }
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count(), 200);
        assert_eq!(m.max(), 99_000);
        // The merged median sits between the two inputs' medians.
        let (pa, pb) = (a.snapshot().p50(), b.snapshot().p50());
        let pm = m.p50();
        assert!(pa.min(pb) <= pm && pm <= pa.max(pb), "{pa} {pm} {pb}");
    }

    #[cfg(not(feature = "noop"))]
    #[test]
    fn concurrent_recording_loses_nothing() {
        // Relaxed increments are still atomic RMWs: per-bucket counts
        // after all threads join are exact, not approximate.
        let h = std::sync::Arc::new(Histogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 1_000_000 + i % 128);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 40_000);
        let per_bucket: u64 = s.buckets().iter().map(|&(_, n)| n).sum();
        assert_eq!(per_bucket, 40_000);
    }

    #[cfg(not(feature = "noop"))]
    #[test]
    fn delta_describes_the_window() {
        let h = Histogram::new();
        for v in 0..100u64 {
            h.record(v);
        }
        let earlier = h.snapshot();
        for v in 0..50u64 {
            h.record(v * 1000);
        }
        let window = h.snapshot().delta(&earlier);
        assert_eq!(window.count(), 50);
        // The window holds only the large samples; its median must sit
        // far above the cumulative one.
        assert!(window.p50() >= 20_000, "p50 {}", window.p50());
        assert!(window.max() <= h.snapshot().max());
    }

    #[test]
    fn delta_against_reset_falls_back_to_later() {
        // A restarted process re-records from zero: the "later" snapshot
        // no longer dominates the earlier one, so delta returns it
        // unchanged rather than going negative.
        let before = {
            let h = Histogram::new();
            for _ in 0..100 {
                h.record(500);
            }
            h.snapshot()
        };
        let after_restart = {
            let h = Histogram::new();
            h.record(7);
            h.snapshot()
        };
        let window = after_restart.delta(&before);
        assert_eq!(window, after_restart);
    }

    #[test]
    fn delta_of_identical_snapshots_is_empty() {
        let h = Histogram::new();
        h.record(42);
        h.record(4242);
        let s = h.snapshot();
        let window = s.delta(&s);
        assert!(window.is_empty());
        assert_eq!(window, HistogramSnapshot::default());
    }

    #[cfg(not(feature = "noop"))]
    #[test]
    fn decode_rejects_hostile_encodings() {
        let h = Histogram::new();
        h.record(7);
        h.record(700);
        let mut good = Vec::new();
        h.snapshot().encode_into(&mut good);

        // Truncated.
        assert!(HistogramSnapshot::decode_from(&good[..good.len() - 1]).is_none());
        // Entry count over the bucket table with no bytes behind it.
        let mut huge = good.clone();
        huge[24..26].copy_from_slice(&u16::MAX.to_le_bytes());
        assert!(HistogramSnapshot::decode_from(&huge).is_none());
        // Count that disagrees with the bucket total.
        let mut lied = good.clone();
        lied[0..8].copy_from_slice(&999u64.to_le_bytes());
        assert!(HistogramSnapshot::decode_from(&lied).is_none());
    }
}
