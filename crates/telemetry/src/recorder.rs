//! A registry of named histograms and counters.
//!
//! Components that can't thread dedicated histogram handles through
//! their construction (background controllers, probes) grab them from a
//! shared [`Recorder`] by name instead. Lookup takes a mutex, so the
//! contract is: call [`Recorder::histogram`]/[`Recorder::counter`]
//! **once at setup** and cache the returned `Arc` — only the cached
//! handle's relaxed atomics may run on a hot path.

use crate::histogram::{Histogram, HistogramSnapshot};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// A named monotonic counter (relaxed increments; `noop`-gated like
/// [`Histogram::record`]).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n`. Empty body under the `noop` feature.
    #[inline]
    pub fn add(&self, n: u64) {
        #[cfg(not(feature = "noop"))]
        self.0.fetch_add(n, Ordering::Relaxed);
        #[cfg(feature = "noop")]
        let _ = n;
    }

    /// Adds 1.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Default)]
struct Registry {
    histograms: BTreeMap<String, Arc<Histogram>>,
    counters: BTreeMap<String, Arc<Counter>>,
}

/// Named histograms + counters, cheap to share (`Arc` it) and cheap to
/// read from. Creation is get-or-create: two callers asking for the
/// same name share one instrument.
#[derive(Debug, Default)]
pub struct Recorder {
    registry: Mutex<Registry>,
}

impl Recorder {
    /// An empty recorder.
    pub fn new() -> Recorder {
        Recorder::default()
    }

    /// The histogram named `name`, created empty on first use. Cache
    /// the handle; don't call this per-sample.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut reg = self.lock();
        if let Some(h) = reg.histograms.get(name) {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::new());
        reg.histograms.insert(name.to_string(), Arc::clone(&h));
        h
    }

    /// The counter named `name`, created at zero on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut reg = self.lock();
        if let Some(c) = reg.counters.get(name) {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::default());
        reg.counters.insert(name.to_string(), Arc::clone(&c));
        c
    }

    /// Snapshots of every registered histogram, sorted by name.
    pub fn histogram_snapshots(&self) -> Vec<(String, HistogramSnapshot)> {
        self.lock()
            .histograms
            .iter()
            .map(|(name, h)| (name.clone(), h.snapshot()))
            .collect()
    }

    /// Current values of every registered counter, sorted by name.
    pub fn counter_values(&self) -> Vec<(String, u64)> {
        self.lock()
            .counters
            .iter()
            .map(|(name, c)| (name.clone(), c.get()))
            .collect()
    }

    fn lock(&self) -> MutexGuard<'_, Registry> {
        // Registration never panics mid-mutation in a way that corrupts
        // the maps; recover rather than poisoning every later lookup.
        self.registry
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_shares_one_instrument() {
        let rec = Recorder::new();
        let a = rec.histogram("probe_rtt");
        let b = rec.histogram("probe_rtt");
        assert!(Arc::ptr_eq(&a, &b));
        let c1 = rec.counter("sweeps");
        let c2 = rec.counter("sweeps");
        assert!(Arc::ptr_eq(&c1, &c2));
    }

    #[cfg(not(feature = "noop"))]
    #[test]
    fn snapshots_list_by_name() {
        let rec = Recorder::new();
        rec.histogram("b_second").record(10);
        rec.histogram("a_first").record(20);
        rec.counter("hits").add(3);
        let snaps = rec.histogram_snapshots();
        assert_eq!(snaps.len(), 2);
        assert_eq!(snaps[0].0, "a_first");
        assert_eq!(snaps[1].1.count(), 1);
        assert_eq!(rec.counter_values(), vec![("hits".to_string(), 3)]);
    }
}
