//! Telemetry primitives for the Ironman serving stack: lock-free
//! latency histograms, named recorders, and bounded event tracing.
//!
//! The fleet's wire-v5 `Stats` were throughput averages and monotonic
//! counters; diagnosing tail behavior (the thing memory-bound MPC
//! serving is actually constrained by — see the paper's latency
//! *breakdowns*, not aggregates) needs distributions and timelines.
//! This crate provides both, under one hot-path contract:
//!
//! - [`Histogram`] — a fixed array of relaxed-atomic log buckets
//!   (16 sub-buckets per octave). Recording is three relaxed RMWs, no
//!   locks, no allocation. Quantiles extracted from a
//!   [`HistogramSnapshot`] overstate the true sample by at most
//!   **6.25%** (one bucket width; exact below 32 ns), and snapshots
//!   merge losslessly — fleet-wide aggregation is a merge-join of
//!   sparse bucket lists whose quantiles bracket the inputs'.
//! - [`Recorder`] — named histograms/counters for components that
//!   can't thread handles through construction. Lookup locks; the
//!   returned `Arc` is the hot-path handle.
//! - [`TraceLog`] — a bounded ring of timestamped [`TraceEvent`]s
//!   (extension/stall edges, chunk pushes, credit waits, refills,
//!   epoch fences, failovers) on one process-wide clock
//!   ([`now_nanos`]), dumpable on demand.
//! - [`TimeSeries`] — bounded retention of timestamped snapshots, with
//!   window-baseline lookup and a reset-aware [`counter_rate`]. Paired
//!   with [`HistogramSnapshot::delta`] (monotone-checked subtraction of
//!   an older cumulative snapshot) it turns lifetime telemetry into
//!   windowed views: "p99 over the last 5 s", not "p99 since boot".
//!
//! # The `noop` feature
//!
//! Building with `--features noop` compiles [`Histogram::record`],
//! [`TraceLog::push`], and [`Counter::add`] to empty bodies and
//! [`Stopwatch`] to a zero-sized type that never reads the clock. The
//! data structures, snapshots, and wire codecs remain, so everything
//! still compiles and returns (empty) answers. CI runs the hot-path
//! bench in both configurations and fails if the instrumented build is
//! more than 3% slower — the "measurably free" contract.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod histogram;
mod recorder;
mod timeseries;
mod trace;

pub use histogram::{
    bucket_ceiling, bucket_floor, bucket_index, Histogram, HistogramSnapshot, Stopwatch,
    ENCODED_MIN_LEN, NUM_BUCKETS,
};
pub use recorder::{Counter, Recorder};
pub use timeseries::{counter_rate, SeriesPoint, TimeSeries};
pub use trace::{
    merge_dumps, now_nanos, pack_phase_split, unpack_phase_split, EventKind, TraceEvent, TraceLog,
    DEFAULT_TRACE_CAPACITY,
};
