//! Property tests pinning the histogram contract: merge brackets the
//! inputs' quantiles, the wire encoding is lossless, concurrent relaxed
//! recording loses nothing, and quantiles stay within the documented
//! bucket error of the true (sorted-sample) quantile.

#![cfg(not(feature = "noop"))]

use ironman_telemetry::{bucket_ceiling, bucket_floor, bucket_index, Histogram, HistogramSnapshot};
use proptest::prelude::*;

fn snapshot_of(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

/// The true quantile under the same rank convention the histogram uses:
/// the `ceil(q·n)`-th smallest sample.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bucket_mapping_inverts(v in any::<u64>()) {
        let i = bucket_index(v);
        prop_assert!(bucket_floor(i) <= v);
        prop_assert!(v <= bucket_ceiling(i));
    }

    #[test]
    fn merged_quantiles_bound_the_inputs(
        a in proptest::collection::vec(0u64..1u64 << 40, 1..200),
        b in proptest::collection::vec(0u64..1u64 << 40, 1..200),
    ) {
        let sa = snapshot_of(&a);
        let sb = snapshot_of(&b);
        let mut merged = sa.clone();
        merged.merge(&sb);
        prop_assert_eq!(merged.count(), sa.count() + sb.count());
        prop_assert_eq!(merged.max(), sa.max().max(sb.max()));
        for q in [0.01, 0.25, 0.50, 0.90, 0.99, 0.999, 1.0] {
            let (qa, qb, qm) = (sa.quantile(q), sb.quantile(q), merged.quantile(q));
            prop_assert!(
                qa.min(qb) <= qm && qm <= qa.max(qb),
                "q={}: merged {} outside [{}, {}]", q, qm, qa.min(qb), qa.max(qb)
            );
        }
    }

    #[test]
    fn wire_encoding_round_trips(values in proptest::collection::vec(any::<u64>(), 0..300)) {
        let snap = snapshot_of(&values);
        let mut wire = vec![0xABu8; 3]; // nonzero prefix: decode must not assume offset 0 content
        let prefix = wire.len();
        snap.encode_into(&mut wire);
        let (back, used) = HistogramSnapshot::decode_from(&wire[prefix..]).expect("canonical");
        prop_assert_eq!(used, wire.len() - prefix);
        prop_assert_eq!(back, snap);
    }

    #[test]
    fn truncated_encodings_are_rejected(
        values in proptest::collection::vec(any::<u64>(), 1..50),
        cut in 1usize..10,
    ) {
        let snap = snapshot_of(&values);
        let mut wire = Vec::new();
        snap.encode_into(&mut wire);
        let cut = cut.min(wire.len());
        prop_assert!(HistogramSnapshot::decode_from(&wire[..wire.len() - cut]).is_none());
    }

    #[test]
    fn concurrent_increments_are_exact(
        per_thread in proptest::collection::vec(proptest::collection::vec(0u64..1u64 << 30, 0..64), 1..4),
    ) {
        // "Never lose more than the allowed bucket error": relaxed adds
        // are atomic RMWs, so in fact nothing is lost at all — the
        // settled per-bucket counts match a sequential replay exactly.
        let h = std::sync::Arc::new(Histogram::new());
        let total: usize = per_thread.iter().map(Vec::len).sum();
        let threads: Vec<_> = per_thread
            .iter()
            .map(|values| {
                let h = std::sync::Arc::clone(&h);
                let values = values.clone();
                std::thread::spawn(move || {
                    for v in values {
                        h.record(v);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let sequential = snapshot_of(&per_thread.concat());
        let concurrent = h.snapshot();
        prop_assert_eq!(concurrent.count(), total as u64);
        prop_assert_eq!(concurrent, sequential);
    }

    #[test]
    fn delta_never_negative_and_bounds_window_quantiles(
        base in proptest::collection::vec(0u64..1u64 << 40, 0..200),
        window in proptest::collection::vec(0u64..1u64 << 40, 1..200),
    ) {
        // Record `base`, snapshot, record `window` on top, snapshot
        // again: the delta must reproduce exactly the window's bucket
        // counts, and its quantile ceilings must bound the true
        // windowed samples.
        let h = Histogram::new();
        for &v in &base {
            h.record(v);
        }
        let earlier = h.snapshot();
        for &v in &window {
            h.record(v);
        }
        let later = h.snapshot();
        let d = later.delta(&earlier);
        let expect = snapshot_of(&window);
        prop_assert_eq!(d.count(), expect.count());
        prop_assert_eq!(d.sum(), expect.sum());
        prop_assert_eq!(d.buckets(), expect.buckets());
        let mut sorted = window.clone();
        sorted.sort_unstable();
        for q in [0.01, 0.50, 0.90, 0.99, 1.0] {
            let truth = exact_quantile(&sorted, q);
            let got = d.quantile(q);
            prop_assert!(got >= truth, "q={}: {} < {}", q, got, truth);
            prop_assert!(
                got <= bucket_ceiling(bucket_index(truth)),
                "q={}: {} above the truth's bucket ceiling", q, got
            );
        }
        prop_assert!(d.max() >= *sorted.last().unwrap());
        prop_assert!(d.max() <= later.max());
    }

    #[test]
    fn delta_against_unrelated_snapshot_never_goes_negative(
        a in proptest::collection::vec(0u64..1u64 << 40, 0..100),
        b in proptest::collection::vec(0u64..1u64 << 40, 0..100),
    ) {
        // Even for snapshots of two unrelated histograms (the restart
        // case), every derived bucket count stays nonnegative and the
        // snapshot stays internally consistent.
        let sa = snapshot_of(&a);
        let sb = snapshot_of(&b);
        let d = sa.delta(&sb);
        let total: u64 = d.buckets().iter().map(|&(_, n)| n).sum();
        prop_assert_eq!(total, d.count());
        for &(_, n) in d.buckets() {
            prop_assert!(n > 0);
        }
    }

    #[test]
    fn quantiles_stay_within_bucket_error(
        values in proptest::collection::vec(0u64..1u64 << 48, 1..300),
    ) {
        let snap = snapshot_of(&values);
        let mut values = values;
        values.sort_unstable();
        for q in [0.01, 0.50, 0.90, 0.99, 1.0] {
            let truth = exact_quantile(&values, q);
            let got = snap.quantile(q);
            // Reported value is the ceiling of the truth's bucket:
            // never below the truth, at most one bucket width above.
            prop_assert!(got >= truth, "q={}: {} < {}", q, got, truth);
            prop_assert!(
                got <= bucket_ceiling(bucket_index(truth)),
                "q={}: {} above the truth's bucket ceiling", q, got
            );
        }
    }
}
