//! Model architectures and their OT demand.
//!
//! The zoo in [`crate::zoo`] carries the paper's *measured* end-to-end
//! baselines; this module derives each model's **OT-correlation demand**
//! from its actual layer shapes, bottom-up. Two quantitative anchors from
//! the paper pin the per-activation cost:
//!
//! * Fig. 1(b): "about 2^25 OTs required by the first layer in secure
//!   ResNet18 inference";
//! * §5.1.3: "the first layer of ResNet-50 requires over 4×10^7 COT
//!   correlations, totaling over 500 MB".
//!
//! Both hold with [`OTS_PER_RELU`] = 50 (the CrypTFlow2-style
//! millionaire-plus-truncation protocol cost for 32-bit activations),
//! since both models open with a 64-channel 112×112 feature map.

use serde::Serialize;

/// COT correlations consumed per ReLU on a 32-bit fixed-point activation
/// (comparison + multiplexing + truncation), calibrated to the paper's
/// two ResNet anchors.
pub const OTS_PER_RELU: u64 = 50;

/// COTs per GeLU element (spline comparisons + table lookups; Bolt-style).
pub const OTS_PER_GELU: u64 = 110;

/// COTs per Softmax element (max, exp approximation, division).
pub const OTS_PER_SOFTMAX: u64 = 150;

/// COTs per LayerNorm element (mean/variance comparisons + division).
pub const OTS_PER_LAYERNORM: u64 = 60;

/// A CNN described by its per-stage ReLU activation counts.
#[derive(Clone, Debug, Serialize)]
pub struct CnnArch {
    /// Model name.
    pub name: &'static str,
    /// Activation elements passing through ReLU, per stage.
    pub relu_stages: Vec<u64>,
}

/// A Transformer described by its dimensions.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct TransformerArch {
    /// Model name.
    pub name: &'static str,
    /// Encoder/decoder blocks.
    pub layers: u64,
    /// Hidden width.
    pub hidden: u64,
    /// Attention heads.
    pub heads: u64,
    /// FFN inner width.
    pub ffn: u64,
    /// Sequence length used in the paper's benchmarks.
    pub seq: u64,
}

impl CnnArch {
    /// ResNet-18 on 224×224 ImageNet inputs: the stem's 64×112×112 map,
    /// then four stages of basic blocks at 56/28/14/7 spatial size.
    pub fn resnet18() -> Self {
        CnnArch {
            name: "ResNet18",
            relu_stages: vec![
                64 * 112 * 112,    // stem
                4 * 64 * 56 * 56,  // stage 1: 2 blocks × 2 ReLUs
                4 * 128 * 28 * 28, // stage 2
                4 * 256 * 14 * 14, // stage 3
                4 * 512 * 7 * 7,   // stage 4
            ],
        }
    }

    /// ResNet-34: same stem, deeper stages (3/4/6/3 basic blocks).
    pub fn resnet34() -> Self {
        CnnArch {
            name: "ResNet34",
            relu_stages: vec![
                64 * 112 * 112,
                6 * 64 * 56 * 56,
                8 * 128 * 28 * 28,
                12 * 256 * 14 * 14,
                6 * 512 * 7 * 7,
            ],
        }
    }

    /// ResNet-50: bottleneck blocks (3 ReLUs each) at widths ×4.
    pub fn resnet50() -> Self {
        CnnArch {
            name: "ResNet50",
            relu_stages: vec![
                64 * 112 * 112,
                3 * (2 * 64 + 256) * 56 * 56,   // 3 bottlenecks
                4 * (2 * 128 + 512) * 28 * 28,  // 4 bottlenecks
                6 * (2 * 256 + 1024) * 14 * 14, // 6 bottlenecks
                3 * (2 * 512 + 2048) * 7 * 7,   // 3 bottlenecks
            ],
        }
    }

    /// MobileNetV2: inverted residuals; ReLU6 on the expanded maps.
    /// Stage activation volumes approximated from the standard table.
    pub fn mobilenet_v2() -> Self {
        CnnArch {
            name: "MobileNetV2",
            relu_stages: vec![
                32 * 112 * 112,
                2 * 96 * 112 * 112,
                4 * 144 * 56 * 56,
                6 * 192 * 28 * 28,
                8 * 384 * 14 * 14,
                6 * 576 * 14 * 14,
                6 * 960 * 7 * 7,
            ],
        }
    }

    /// SqueezeNet 1.1: fire modules (squeeze + expand ReLUs).
    pub fn squeezenet() -> Self {
        CnnArch {
            name: "SqueezeNet",
            relu_stages: vec![
                64 * 111 * 111,
                2 * 128 * 55 * 55,
                2 * 256 * 27 * 27,
                4 * 384 * 13 * 13,
                2 * 512 * 13 * 13,
            ],
        }
    }

    /// DenseNet-121: dense blocks with growth 32; ReLU on every
    /// pre-activation (approximated stage volumes).
    pub fn densenet121() -> Self {
        CnnArch {
            name: "DenseNet121",
            relu_stages: vec![
                64 * 112 * 112,
                6 * 2 * 160 * 56 * 56,
                12 * 2 * 224 * 28 * 28,
                24 * 2 * 352 * 14 * 14,
                16 * 2 * 608 * 7 * 7,
            ],
        }
    }

    /// Total ReLU activations.
    pub fn relu_count(&self) -> u64 {
        self.relu_stages.iter().sum()
    }

    /// COT demand of the first (stem) layer.
    pub fn first_layer_ot_demand(&self) -> u64 {
        self.relu_stages.first().copied().unwrap_or(0) * OTS_PER_RELU
    }

    /// Total COT demand of the network's nonlinearities.
    pub fn ot_demand(&self) -> u64 {
        self.relu_count() * OTS_PER_RELU
    }
}

impl TransformerArch {
    /// BERT-base: 12 × 768, seq 128.
    pub fn bert_base() -> Self {
        TransformerArch {
            name: "BERT-Base",
            layers: 12,
            hidden: 768,
            heads: 12,
            ffn: 3072,
            seq: 128,
        }
    }

    /// BERT-large: 24 × 1024, seq 128.
    pub fn bert_large() -> Self {
        TransformerArch {
            name: "BERT-Large",
            layers: 24,
            hidden: 1024,
            heads: 16,
            ffn: 4096,
            seq: 128,
        }
    }

    /// ViT-base: 12 × 768 over 197 patch tokens.
    pub fn vit() -> Self {
        TransformerArch {
            name: "ViT",
            layers: 12,
            hidden: 768,
            heads: 12,
            ffn: 3072,
            seq: 197,
        }
    }

    /// GPT-2 large: 36 × 1280, seq 128.
    pub fn gpt2_large() -> Self {
        TransformerArch {
            name: "GPT2-Large",
            layers: 36,
            hidden: 1280,
            heads: 20,
            ffn: 5120,
            seq: 128,
        }
    }

    /// GeLU elements per forward pass.
    pub fn gelu_elements(&self) -> u64 {
        self.layers * self.seq * self.ffn
    }

    /// Softmax elements per forward pass (attention scores).
    pub fn softmax_elements(&self) -> u64 {
        self.layers * self.heads * self.seq * self.seq
    }

    /// LayerNorm elements per forward pass (two per block).
    pub fn layernorm_elements(&self) -> u64 {
        self.layers * 2 * self.seq * self.hidden
    }

    /// Total COT demand of the nonlinearities.
    pub fn ot_demand(&self) -> u64 {
        self.gelu_elements() * OTS_PER_GELU
            + self.softmax_elements() * OTS_PER_SOFTMAX
            + self.layernorm_elements() * OTS_PER_LAYERNORM
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_anchor_resnet18_first_layer_is_about_2pow25() {
        // Fig. 1(b): "about 2^25 OTs required by the first layer in secure
        // ResNet18 inference".
        let demand = CnnArch::resnet18().first_layer_ot_demand() as f64;
        let target = (1u64 << 25) as f64;
        assert!(
            (demand / target - 1.0).abs() < 0.25,
            "first-layer demand {demand:.3e} not within 25% of 2^25"
        );
    }

    #[test]
    fn paper_anchor_resnet50_first_layer_over_4e7() {
        // §5.1.3: "the first layer of ResNet-50 requires over 4×10^7 COT
        // correlations, totaling over 500 MB".
        let demand = CnnArch::resnet50().first_layer_ot_demand();
        assert!(demand > 40_000_000, "demand {demand}");
        let bytes = demand * 16; // one block per correlation
        assert!(bytes > 500_000_000, "traffic {bytes} B");
    }

    #[test]
    fn cnn_demand_ordering_matches_depth_family() {
        // Within an architecture family, bigger networks demand more OTs —
        // matching Table 5's latency ordering for the ResNet/DenseNet
        // family. (MobileNetV2 is the designed exception: many cheap ReLU6
        // activations on expanded maps but tiny linear layers, which is
        // why its end-to-end latency is nevertheless the lowest.)
        let r18 = CnnArch::resnet18().ot_demand();
        let r34 = CnnArch::resnet34().ot_demand();
        let r50 = CnnArch::resnet50().ot_demand();
        let d121 = CnnArch::densenet121().ot_demand();
        assert!(r18 < r34 && r34 < r50 && r50 < d121);
        assert!(CnnArch::squeezenet().ot_demand() < r34);
        assert!(CnnArch::mobilenet_v2().ot_demand() > r18);
    }

    #[test]
    fn transformer_demand_ordering() {
        let base = TransformerArch::bert_base().ot_demand();
        let large = TransformerArch::bert_large().ot_demand();
        let gpt2 = TransformerArch::gpt2_large().ot_demand();
        assert!(base < large && large < gpt2);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // documents the paper's cost ordering
    fn transformer_nonlinearities_cost_more_per_element() {
        // §6.5 observation (2)'s root cause: GeLU/Softmax are pricier per
        // element than ReLU.
        assert!(OTS_PER_GELU > OTS_PER_RELU);
        assert!(OTS_PER_SOFTMAX > OTS_PER_RELU);
    }

    #[test]
    fn demand_translates_to_extension_executions() {
        // ResNet-50 needs tens of 2^20-set extensions per inference — the
        // volume that justifies a dedicated accelerator.
        let execs = CnnArch::resnet50().ot_demand() / 1_221_516;
        assert!((100..2000).contains(&execs), "execs {execs}");
    }

    #[test]
    fn bert_softmax_is_significant() {
        let t = TransformerArch::bert_base();
        let total = t.ot_demand();
        let softmax = t.softmax_elements() * OTS_PER_SOFTMAX;
        assert!(softmax * 10 > total, "softmax share too small");
    }
}
