//! End-to-end latency composition (Table 5).
//!
//! Ironman only accelerates the OT-extension phase. On a fast link the
//! phase shrinks by the hardware speedup and effectively vanishes; on a
//! slow link the OTE's own interaction becomes the floor (§6.5: "after
//! significantly optimizing the OT computation, communication latency
//! becomes the new bottleneck"). The composition is:
//!
//! ```text
//! ours = base · (1 − f) + base · f / S_eff(network)
//! ```
//!
//! with `f` the workload's OTE share and `S_eff` the effective speedup:
//! the hardware speedup capped by the ratio of OTE compute time to its
//! irreducible link time.

use crate::zoo::{Workload, TABLE5_WORKLOADS};
use ironman_perf::NetworkModel;
use serde::{Deserialize, Serialize};

/// Speedup assumptions fed into the composition.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SpeedupAssumptions {
    /// Hardware OTE speedup measured from the NMP simulator (Fig. 12; the
    /// flagship configuration lands near 90×).
    pub hardware: f64,
    /// Fraction of baseline OTE time that is link-bound under WAN and
    /// survives acceleration. Calibrated once against Table 5's WAN
    /// column (§6.5's bottleneck-shift observation); 0 would mean OTE is
    /// pure computation.
    pub wan_comm_floor: f64,
}

impl Default for SpeedupAssumptions {
    fn default() -> Self {
        SpeedupAssumptions {
            hardware: 90.0,
            wan_comm_floor: 0.34,
        }
    }
}

impl SpeedupAssumptions {
    /// Effective OTE speedup on a link.
    pub fn effective(&self, net: &NetworkModel) -> f64 {
        let floor = if net.bandwidth_bps < 1.0e9 {
            self.wan_comm_floor
        } else {
            0.0
        };
        1.0 / (floor + (1.0 - floor) / self.hardware)
    }
}

/// One computed Table 5 row.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct E2eRow {
    /// The workload.
    pub workload: Workload,
    /// Our computed Ironman latency, WAN, seconds.
    pub ours_wan_s: f64,
    /// Our computed Ironman latency, LAN, seconds.
    pub ours_lan_s: f64,
}

impl E2eRow {
    /// Computed speedups (WAN, LAN).
    pub fn speedups(&self) -> (f64, f64) {
        (
            self.workload.base_wan_s / self.ours_wan_s,
            self.workload.base_lan_s / self.ours_lan_s,
        )
    }

    /// Relative error of our computed latency vs. the paper's reported
    /// value, (WAN, LAN).
    pub fn deviation_vs_paper(&self) -> (f64, f64) {
        (
            (self.ours_wan_s - self.workload.paper_ours_wan_s).abs()
                / self.workload.paper_ours_wan_s,
            (self.ours_lan_s - self.workload.paper_ours_lan_s).abs()
                / self.workload.paper_ours_lan_s,
        )
    }
}

/// Applies the composition to one workload.
pub fn accelerate(w: &Workload, a: &SpeedupAssumptions) -> E2eRow {
    let s_wan = a.effective(&NetworkModel::WAN);
    let s_lan = a.effective(&NetworkModel::LAN);
    let f = w.ote_fraction;
    E2eRow {
        workload: *w,
        ours_wan_s: w.base_wan_s * (1.0 - f) + w.base_wan_s * f / s_wan,
        ours_lan_s: w.base_lan_s * (1.0 - f) + w.base_lan_s * f / s_lan,
    }
}

/// Recomputes all sixteen Table 5 rows.
pub fn reproduce_table5(a: &SpeedupAssumptions) -> Vec<E2eRow> {
    TABLE5_WORKLOADS.iter().map(|w| accelerate(w, a)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::ModelKind;

    #[test]
    fn lan_speedups_match_paper_band() {
        // Paper: 1.95–2.67× (CNNs), 2.91–3.40× (Transformers) under LAN.
        for row in reproduce_table5(&SpeedupAssumptions::default()) {
            let (_, lan) = row.speedups();
            match row.workload.kind {
                ModelKind::Cnn => {
                    assert!(
                        (1.7..=3.0).contains(&lan),
                        "{}: LAN {lan}",
                        row.workload.model
                    )
                }
                ModelKind::Transformer => {
                    assert!(
                        (2.5..=3.6).contains(&lan),
                        "{}: LAN {lan}",
                        row.workload.model
                    )
                }
            }
        }
    }

    #[test]
    fn wan_speedups_match_paper_band() {
        // Paper: 1.32–1.83× under WAN.
        for row in reproduce_table5(&SpeedupAssumptions::default()) {
            let (wan, _) = row.speedups();
            assert!(
                (1.2..=2.0).contains(&wan),
                "{}: WAN {wan}",
                row.workload.model
            );
        }
    }

    #[test]
    fn computed_rows_close_to_paper() {
        // The composition should land within ~15% of the paper's reported
        // latencies on average.
        let rows = reproduce_table5(&SpeedupAssumptions::default());
        let mean_dev: f64 = rows
            .iter()
            .map(|r| (r.deviation_vs_paper().0 + r.deviation_vs_paper().1) / 2.0)
            .sum::<f64>()
            / rows.len() as f64;
        assert!(mean_dev < 0.15, "mean deviation {mean_dev}");
    }

    #[test]
    fn transformers_gain_more_than_cnns() {
        // §6.5 observation (2).
        let rows = reproduce_table5(&SpeedupAssumptions::default());
        let avg = |kind: ModelKind| {
            let v: Vec<f64> = rows
                .iter()
                .filter(|r| r.workload.kind == kind)
                .map(|r| r.speedups().1)
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        assert!(avg(ModelKind::Transformer) > avg(ModelKind::Cnn));
    }

    #[test]
    fn wan_gains_limited_by_comm() {
        // §6.5 observation (3): WAN speedups below LAN speedups everywhere.
        for row in reproduce_table5(&SpeedupAssumptions::default()) {
            let (wan, lan) = row.speedups();
            assert!(wan < lan, "{}: WAN {wan} !< LAN {lan}", row.workload.model);
        }
    }

    #[test]
    fn bigger_hardware_speedup_helps_lan_only_marginally() {
        // Once OTE is ~eliminated, doubling hardware speedup barely moves
        // end-to-end latency (Amdahl).
        let base = SpeedupAssumptions::default();
        let double = SpeedupAssumptions {
            hardware: 180.0,
            ..base
        };
        let a = reproduce_table5(&base);
        let b = reproduce_table5(&double);
        for (x, y) in a.iter().zip(b.iter()) {
            let gain = x.ours_lan_s / y.ours_lan_s;
            assert!(gain < 1.05, "{}: gain {gain}", x.workload.model);
        }
    }
}
