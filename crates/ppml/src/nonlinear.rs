//! Per-operator nonlinear-function study (Fig. 15).
//!
//! The paper benchmarks the OT-heavy nonlinear protocols — LayerNorm,
//! GeLU, Softmax, ReLU — inside EzPC-SiRNN and Bolt, reporting a 3.9–4.4×
//! latency reduction with Ironman, roughly framework-agnostic ("around 4×
//! ... primarily due to OT optimization"). Operators are dominated by OT
//! computation (the bars' biggest component), with communication and
//! residual computation unchanged.

use crate::zoo::Framework;
use serde::{Deserialize, Serialize};

/// The nonlinear operators of Fig. 15.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NonlinearOp {
    /// Layer normalization.
    LayerNorm,
    /// Gaussian-error linear unit.
    Gelu,
    /// Softmax.
    Softmax,
    /// Rectified linear unit.
    Relu,
}

impl NonlinearOp {
    /// All operators in figure order.
    pub const ALL: [NonlinearOp; 4] = [
        NonlinearOp::LayerNorm,
        NonlinearOp::Gelu,
        NonlinearOp::Softmax,
        NonlinearOp::Relu,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            NonlinearOp::LayerNorm => "LayerNorm",
            NonlinearOp::Gelu => "GeLU",
            NonlinearOp::Softmax => "Softmax",
            NonlinearOp::Relu => "ReLU",
        }
    }
}

/// One Fig. 15 bar: an operator benchmarked inside a framework.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct OpProfile {
    /// Operator.
    pub op: NonlinearOp,
    /// Framework (EzPC-SiRNN or Bolt in the paper).
    pub framework: Framework,
    /// Baseline operator latency, seconds (batch benchmark as in Fig. 15).
    pub base_s: f64,
    /// OT-computation share of the baseline latency.
    pub ot_fraction: f64,
}

/// Fig. 15's eight bars: per-operator baselines (batch latency; EzPC-SiRNN
/// evaluates larger fixed-point protocols, hence the ~4× higher absolute
/// numbers) with OT-computation shares near 77%, which is what makes the
/// ~4× end-to-end operator reduction possible.
pub const FIG15_PROFILES: [OpProfile; 8] = [
    OpProfile {
        op: NonlinearOp::LayerNorm,
        framework: Framework::EzpcSirnn,
        base_s: 62.0,
        ot_fraction: 0.77,
    },
    OpProfile {
        op: NonlinearOp::Gelu,
        framework: Framework::EzpcSirnn,
        base_s: 78.0,
        ot_fraction: 0.78,
    },
    OpProfile {
        op: NonlinearOp::Softmax,
        framework: Framework::EzpcSirnn,
        base_s: 70.0,
        ot_fraction: 0.77,
    },
    OpProfile {
        op: NonlinearOp::Relu,
        framework: Framework::EzpcSirnn,
        base_s: 40.0,
        ot_fraction: 0.75,
    },
    OpProfile {
        op: NonlinearOp::LayerNorm,
        framework: Framework::Bolt,
        base_s: 12.0,
        ot_fraction: 0.77,
    },
    OpProfile {
        op: NonlinearOp::Gelu,
        framework: Framework::Bolt,
        base_s: 18.0,
        ot_fraction: 0.78,
    },
    OpProfile {
        op: NonlinearOp::Softmax,
        framework: Framework::Bolt,
        base_s: 16.0,
        ot_fraction: 0.77,
    },
    OpProfile {
        op: NonlinearOp::Relu,
        framework: Framework::Bolt,
        base_s: 7.0,
        ot_fraction: 0.74,
    },
];

impl OpProfile {
    /// Operator latency with the OT computation accelerated by `speedup`.
    pub fn accelerated_s(&self, speedup: f64) -> f64 {
        self.base_s * (1.0 - self.ot_fraction) + self.base_s * self.ot_fraction / speedup
    }

    /// End-to-end operator latency reduction at a given OT speedup.
    pub fn reduction(&self, speedup: f64) -> f64 {
        self.base_s / self.accelerated_s(speedup)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reductions_in_paper_band() {
        // Paper: 3.9×–4.4× across operators and frameworks.
        for p in &FIG15_PROFILES {
            let r = p.reduction(90.0);
            assert!(
                (3.5..=4.6).contains(&r),
                "{} on {}: reduction {r}",
                p.op.name(),
                p.framework
            );
        }
    }

    #[test]
    fn framework_agnostic() {
        // "around 4× latency reduction across frameworks".
        let avg = |fw: Framework| {
            let v: Vec<f64> = FIG15_PROFILES
                .iter()
                .filter(|p| p.framework == fw)
                .map(|p| p.reduction(90.0))
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        let a = avg(Framework::EzpcSirnn);
        let b = avg(Framework::Bolt);
        assert!((a - b).abs() / a < 0.05, "EzPC {a} vs Bolt {b}");
    }

    #[test]
    fn acceleration_never_exceeds_ot_share_limit() {
        // Amdahl bound: reduction < 1 / (1 − f).
        for p in &FIG15_PROFILES {
            let bound = 1.0 / (1.0 - p.ot_fraction);
            assert!(p.reduction(1e9) < bound + 1e-6);
        }
    }

    #[test]
    fn no_speedup_no_change() {
        for p in &FIG15_PROFILES {
            assert!((p.reduction(1.0) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn all_ops_present_in_both_frameworks() {
        for op in NonlinearOp::ALL {
            for fw in [Framework::EzpcSirnn, Framework::Bolt] {
                assert!(
                    FIG15_PROFILES
                        .iter()
                        .any(|p| p.op == op && p.framework == fw),
                    "{} missing in {fw}",
                    op.name()
                );
            }
        }
    }
}
