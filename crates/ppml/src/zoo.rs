//! The model/framework zoo with the paper's measured baselines.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Hybrid HE/MPC private-inference frameworks evaluated in the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Framework {
    /// CrypTFlow2 (Rathee et al., CCS 2020).
    CrypTFlow2,
    /// Cheetah (Huang et al., USENIX Security 2022).
    Cheetah,
    /// Bolt (Pang et al., S&P 2024).
    Bolt,
    /// EzPC-SiRNN (Rathee et al., S&P 2021) — used in Fig. 15.
    EzpcSirnn,
}

impl fmt::Display for Framework {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Framework::CrypTFlow2 => "CrypTFlow2",
            Framework::Cheetah => "Cheetah",
            Framework::Bolt => "Bolt",
            Framework::EzpcSirnn => "EzPC-SiRNN",
        };
        f.write_str(s)
    }
}

/// Network architecture family.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// Convolutional networks (ReLU nonlinearities).
    Cnn,
    /// Transformers (Softmax/GeLU/LayerNorm nonlinearities).
    Transformer,
}

/// One Table 5 row: a (framework, model) pair with measured baselines.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct Workload {
    /// Framework executing the inference.
    pub framework: Framework,
    /// Model name as printed in Table 5.
    pub model: &'static str,
    /// Architecture family.
    pub kind: ModelKind,
    /// Baseline end-to-end latency under (400 Mbps, 20 ms), seconds.
    pub base_wan_s: f64,
    /// Baseline end-to-end latency under (3 Gbps, 0.15 ms), seconds.
    pub base_lan_s: f64,
    /// OT-extension share of execution time (Fig. 1(a); Table 5's LAN
    /// columns pin the per-model value).
    pub ote_fraction: f64,
    /// Paper-reported Ironman latency, WAN (for the EXPERIMENTS.md
    /// side-by-side).
    pub paper_ours_wan_s: f64,
    /// Paper-reported Ironman latency, LAN.
    pub paper_ours_lan_s: f64,
}

macro_rules! wl {
    ($fw:ident, $name:literal, $kind:ident, $bw:literal, $ow:literal, $bl:literal, $ol:literal, $frac:literal) => {
        Workload {
            framework: Framework::$fw,
            model: $name,
            kind: ModelKind::$kind,
            base_wan_s: $bw,
            base_lan_s: $bl,
            ote_fraction: $frac,
            paper_ours_wan_s: $ow,
            paper_ours_lan_s: $ol,
        }
    };
}

/// All sixteen Table 5 rows. `ote_fraction` is the OT-extension share of
/// execution time for each workload, consistent with Fig. 1(a)'s 51–69%
/// band (slightly below it for the most linear-heavy CNNs).
pub const TABLE5_WORKLOADS: [Workload; 16] = [
    wl!(
        CrypTFlow2,
        "MobileNetV2",
        Cnn,
        46.3,
        29.6,
        32.0,
        16.4,
        0.488
    ),
    wl!(CrypTFlow2, "SqueezeNet", Cnn, 71.0, 38.8, 61.8, 27.7, 0.552),
    wl!(CrypTFlow2, "ResNet18", Cnn, 130.6, 80.1, 113.6, 57.6, 0.493),
    wl!(CrypTFlow2, "ResNet34", Cnn, 287.4, 168.1, 217.0, 100.5, 0.537),
    wl!(CrypTFlow2, "ResNet50", Cnn, 357.4, 223.5, 252.4, 119.7, 0.526),
    wl!(
        CrypTFlow2,
        "DenseNet121",
        Cnn,
        629.0,
        411.0,
        452.5,
        201.3,
        0.555
    ),
    wl!(Cheetah, "MobileNetV2", Cnn, 31.6, 22.4, 12.9, 5.3, 0.589),
    wl!(Cheetah, "SqueezeNet", Cnn, 29.9, 20.5, 15.6, 6.4, 0.590),
    wl!(Cheetah, "ResNet18", Cnn, 39.7, 27.4, 21.3, 9.1, 0.573),
    wl!(Cheetah, "ResNet34", Cnn, 66.1, 45.4, 40.7, 16.3, 0.600),
    wl!(Cheetah, "ResNet50", Cnn, 83.8, 63.3, 48.3, 21.4, 0.557),
    wl!(Cheetah, "DenseNet121", Cnn, 126.9, 96.5, 62.1, 23.3, 0.625),
    wl!(Bolt, "ViT", Transformer, 1026.8, 693.8, 812.2, 272.6, 0.664),
    wl!(
        Bolt,
        "BERT-Base",
        Transformer,
        667.2,
        436.8,
        527.7,
        190.0,
        0.640
    ),
    wl!(
        Bolt,
        "BERT-Large",
        Transformer,
        1543.2,
        923.9,
        1392.8,
        421.6,
        0.697
    ),
    wl!(
        Bolt,
        "GPT2-Large",
        Transformer,
        2538.0,
        1555.2,
        2349.4,
        739.4,
        0.685
    ),
];

/// Additional Fig. 1(a) workloads that have no Table 5 row (the paper's
/// breakdown chart also profiles GPT-2 small and medium on Bolt). Baseline
/// latencies interpolate the Bolt family; only the breakdown is used.
pub const FIG1A_EXTRA: [Workload; 2] = [
    wl!(
        Bolt,
        "GPT2-Small",
        Transformer,
        520.0,
        330.0,
        470.0,
        165.0,
        0.655
    ),
    wl!(
        Bolt,
        "GPT2-Medium",
        Transformer,
        1180.0,
        740.0,
        1080.0,
        370.0,
        0.670
    ),
];

impl Workload {
    /// The paper's reported speedups for this row.
    pub fn paper_speedups(&self) -> (f64, f64) {
        (
            self.base_wan_s / self.paper_ours_wan_s,
            self.base_lan_s / self.paper_ours_lan_s,
        )
    }

    /// Fig. 1(a)-style component breakdown of the LAN baseline: fractions
    /// of (other compute, HE compute, OT extension, online communication).
    /// OTE is the pinned per-model value; the remainder follows the
    /// framework's typical profile.
    pub fn breakdown(&self) -> [f64; 4] {
        let ote = self.ote_fraction;
        let rest = 1.0 - ote;
        let (other_w, he_w, comm_w) = match self.framework {
            Framework::CrypTFlow2 => (0.30, 0.35, 0.35),
            Framework::Cheetah => (0.25, 0.45, 0.30),
            Framework::Bolt | Framework::EzpcSirnn => (0.35, 0.30, 0.35),
        };
        [rest * other_w, rest * he_w, ote, rest * comm_w]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_rows() {
        assert_eq!(TABLE5_WORKLOADS.len(), 16);
        let cnn = TABLE5_WORKLOADS
            .iter()
            .filter(|w| w.kind == ModelKind::Cnn)
            .count();
        assert_eq!(cnn, 12);
    }

    #[test]
    fn paper_speedups_match_printed_ranges() {
        for w in &TABLE5_WORKLOADS {
            let (wan, lan) = w.paper_speedups();
            assert!(
                (1.3..=1.9).contains(&wan),
                "{} {}: WAN speedup {wan}",
                w.framework,
                w.model
            );
            assert!(
                (1.9..=3.5).contains(&lan),
                "{} {}: LAN speedup {lan}",
                w.framework,
                w.model
            );
        }
    }

    #[test]
    fn ote_fractions_in_paper_band() {
        for w in &TABLE5_WORKLOADS {
            assert!(
                (0.45..=0.72).contains(&w.ote_fraction),
                "{} {}: fraction {}",
                w.framework,
                w.model,
                w.ote_fraction
            );
        }
    }

    #[test]
    fn breakdown_sums_to_one() {
        for w in &TABLE5_WORKLOADS {
            let sum: f64 = w.breakdown().iter().sum();
            assert!(
                (sum - 1.0).abs() < 1e-9,
                "{} {}: {sum}",
                w.framework,
                w.model
            );
        }
    }

    #[test]
    fn transformers_have_higher_ote_share() {
        // §6.5 observation (2): Transformer nonlinearities consume more OT.
        let avg = |kind: ModelKind| {
            let v: Vec<f64> = TABLE5_WORKLOADS
                .iter()
                .filter(|w| w.kind == kind)
                .map(|w| w.ote_fraction)
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        assert!(avg(ModelKind::Transformer) > avg(ModelKind::Cnn));
    }

    #[test]
    fn wan_baselines_slower_than_lan() {
        for w in &TABLE5_WORKLOADS {
            assert!(w.base_wan_s > w.base_lan_s, "{} {}", w.framework, w.model);
        }
    }
}
