//! PPML application-level workload models for the Ironman reproduction.
//!
//! The paper's end-to-end evaluation (§6.4–6.5) measures hybrid HE/MPC
//! private-inference frameworks — CrypTFlow2, Cheetah, Bolt, EzPC-SiRNN —
//! on CNN and Transformer models, with Ironman replacing the CPU's OT
//! extension. This crate models that composition:
//!
//! * [`zoo`] — the model/framework zoo with the paper's measured baseline
//!   latencies (Table 5's "Base La." columns) and each workload's
//!   OT-extension share of execution time (Fig. 1(a)).
//! * [`e2e`] — the end-to-end latency composition: everything except the
//!   OT-extension phase is unchanged; the OTE phase shrinks by the
//!   backend's speedup, floored by its communication on the link.
//! * [`nonlinear`] — Fig. 15's per-operator study (LayerNorm, GeLU,
//!   Softmax, ReLU) on EzPC-SiRNN and Bolt.
//! * [`layers`] — per-model OT-demand estimators derived from actual
//!   layer shapes, pinned to the paper's ResNet anchors.
//! * [`matmul`] — Fig. 16's OT-based matrix-multiplication communication
//!   with and without the unified (role-switching) architecture.
//!
//! Everything here is an *analytical composition* of paper-reported
//! baselines with speedups measured from this workspace's simulators; the
//! calibration provenance of every constant is in EXPERIMENTS.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod e2e;
pub mod layers;
pub mod matmul;
pub mod nonlinear;
pub mod zoo;

pub use e2e::{reproduce_table5, E2eRow, SpeedupAssumptions};
pub use zoo::{Framework, ModelKind, Workload, TABLE5_WORKLOADS};
