//! OT-based matrix multiplication with role switching (Fig. 16).
//!
//! PrivQuant's optimization (§5.2's motivation): an OT-based MatMul
//! protocol can halve its communication by letting server and client swap
//! OT sender/receiver roles between the two triple-generation passes,
//! always placing the cheaper direction on the wire. A fixed-role
//! accelerator cannot do this — the pass whose natural sender is the
//! "wrong" party must run in the expensive orientation. Ironman's unified
//! unit supports both roles, enabling the optimization: Fig. 16 reports
//! 2× lower communication and 1.4× lower latency on Bert/LLAMA-shaped
//! layers.

use ironman_perf::NetworkModel;
use serde::{Deserialize, Serialize};

/// A MatMul layer shape `(input, hidden, output)` as in Fig. 16 — the
/// client activation is `input × hidden`, the server weight
/// `hidden × output`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MatMulDims {
    /// Rows of the activation (sequence length × batch).
    pub input: usize,
    /// Shared dimension.
    pub hidden: usize,
    /// Output features.
    pub output: usize,
}

/// Fig. 16's three layer shapes (BERT-base and LLAMA with sequence
/// length 32).
pub const FIG16_DIMS: [MatMulDims; 3] = [
    MatMulDims {
        input: 64,
        hidden: 768,
        output: 768,
    },
    MatMulDims {
        input: 64,
        hidden: 768,
        output: 64,
    },
    MatMulDims {
        input: 64,
        hidden: 4096,
        output: 64,
    },
];

/// Fixed-point bit width of the secret-shared values.
pub const BITS: u64 = 8;

/// Security parameter (COT message width).
pub const LAMBDA: u64 = 128;

impl MatMulDims {
    /// COT-based MatMul communication for one pass in a given orientation:
    /// the receiver inputs its matrix bit-by-bit and each bit consumes one
    /// COT message transfer of `λ + b` bits per output column group; total
    /// `rows·cols·b·(λ + b)` bits for the driving matrix.
    fn pass_bits(rows: usize, cols: usize) -> u64 {
        rows as u64 * cols as u64 * BITS * (LAMBDA + BITS)
    }

    /// Communication with the unified architecture: both triple-generation
    /// passes run in their cheap orientation (driven by the smaller
    /// operand), because either party's accelerator can play either OT
    /// role.
    pub fn comm_with_unified_bytes(&self) -> u64 {
        let act = Self::pass_bits(self.input, self.hidden);
        let wgt = Self::pass_bits(self.hidden, self.output);
        2 * act.min(wgt) / 8
    }

    /// Communication without role switching: a fixed-role accelerator can
    /// serve each party in only one OT direction, so every pass whose
    /// natural roles are reversed must be re-run in the supported
    /// direction — doubling the wire traffic (PrivQuant §4.1; Fig. 16
    /// shows the uniform 2× across layer shapes).
    pub fn comm_without_unified_bytes(&self) -> u64 {
        2 * self.comm_with_unified_bytes()
    }

    /// Communication reduction factor of the unified architecture.
    pub fn comm_reduction(&self) -> f64 {
        self.comm_without_unified_bytes() as f64 / self.comm_with_unified_bytes() as f64
    }

    /// Latency of the protocol on a link: compute (unchanged by role
    /// switching) plus transfer. The compute share is calibrated so the
    /// Fig. 16 shapes show the paper's ~1.4× latency gain at 2× comm
    /// reduction under LAN.
    pub fn latency_s(&self, comm_bytes: u64, net: &NetworkModel) -> f64 {
        let transfer = net.transfer_time_s(comm_bytes);
        // OT-protocol compute scales with the OT volume, i.e. with the
        // role-switched communication; the 1.5 ratio to LAN transfer time
        // is calibrated so Fig. 16's 2× comm reduction yields its reported
        // 1.4× latency reduction on the LAN link: (1.5 + 2)/(1.5 + 1) = 1.4.
        let compute = 1.5 * NetworkModel::LAN.transfer_time_s(self.comm_with_unified_bytes());
        compute + transfer
    }

    /// Latency reduction of the unified architecture on a link.
    pub fn latency_reduction(&self, net: &NetworkModel) -> f64 {
        self.latency_s(self.comm_without_unified_bytes(), net)
            / self.latency_s(self.comm_with_unified_bytes(), net)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comm_reduction_is_about_2x() {
        // Fig. 16: "2× reduction in communication".
        for d in FIG16_DIMS {
            let r = d.comm_reduction();
            assert!((1.8..=2.05).contains(&r), "{d:?}: comm reduction {r}");
        }
    }

    #[test]
    fn latency_reduction_is_about_1_4x() {
        // Fig. 16: "1.4× reduction in latency" (LAN).
        for d in FIG16_DIMS {
            let r = d.latency_reduction(&NetworkModel::LAN);
            assert!((1.25..=1.6).contains(&r), "{d:?}: latency reduction {r}");
        }
    }

    #[test]
    fn unified_never_worse() {
        for d in FIG16_DIMS {
            assert!(d.comm_with_unified_bytes() <= d.comm_without_unified_bytes());
        }
    }

    #[test]
    fn comm_scales_with_smaller_operand() {
        let wide = MatMulDims {
            input: 64,
            hidden: 768,
            output: 768,
        };
        let narrow = MatMulDims {
            input: 64,
            hidden: 768,
            output: 64,
        };
        assert!(wide.comm_with_unified_bytes() >= narrow.comm_with_unified_bytes());
    }

    #[test]
    fn wan_latency_gain_larger_than_lan() {
        // Comm dominates harder on the slow link, so halving it helps more.
        for d in FIG16_DIMS {
            assert!(
                d.latency_reduction(&NetworkModel::WAN) >= d.latency_reduction(&NetworkModel::LAN)
            );
        }
    }
}
