//! Fig. 12 speedup computation: Ironman vs. CPU/GPU across memory
//! configurations and parameter sets.

use crate::engine::spcot_aes_equiv_ops;
use ironman_nmp::{NmpConfig, OteSimulator, OteWork, Role};
use ironman_ot::params::FerretParams;
use ironman_perf::{CpuModel, GpuModel, OteWorkload};
use ironman_prg::PrgKind;
use serde::{Deserialize, Serialize};

/// One cell of the Fig. 12 grid.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SpeedupRow {
    /// Parameter set (log2 of the target OT count).
    pub log_target: u32,
    /// Active ranks.
    pub ranks: usize,
    /// Per-rank cache bytes.
    pub cache_bytes: usize,
    /// Ironman latency per execution, ms.
    pub ironman_ms: f64,
    /// CPU baseline latency per execution, ms.
    pub cpu_ms: f64,
    /// GPU baseline latency per execution, ms.
    pub gpu_ms: f64,
    /// Memory-side cache hit rate observed.
    pub cache_hit_rate: f64,
}

impl SpeedupRow {
    /// Ironman speedup over the CPU baseline.
    pub fn speedup_vs_cpu(&self) -> f64 {
        self.cpu_ms / self.ironman_ms
    }

    /// Ironman speedup over the GPU baseline.
    pub fn speedup_vs_gpu(&self) -> f64 {
        self.gpu_ms / self.ironman_ms
    }
}

/// Computes one Fig. 12 cell.
pub fn speedup_cell(
    params: FerretParams,
    ranks: usize,
    cache_bytes: usize,
    seed: u64,
) -> SpeedupRow {
    let nmp_cfg = NmpConfig::with_ranks_and_cache(ranks, cache_bytes);
    let sim = OteSimulator::new(nmp_cfg);
    let work = OteWork {
        n: params.n,
        leaves: params.leaves,
        trees: params.t,
        k: params.k,
        weight: 10,
        arity: ironman_ggm::Arity::QUAD,
        prg: PrgKind::CHACHA8,
        role: Role::Sender,
        sort: Some(ironman_lpn::sorting::SortConfig {
            cache_lines: cache_bytes / 64,
            ..Default::default()
        }),
        sample_rows: Some(16_384),
    };
    let report = sim.simulate(&work, seed);
    let ironman_ms = report.latency_ms(&nmp_cfg);

    // CPU/GPU baselines run the unoptimized binary-AES Ferret.
    let cpu = CpuModel::ferret_reference();
    let cpu_work = OteWorkload::from_counts(
        params.t as u64,
        spcot_aes_equiv_ops(PrgKind::Aes, 2, params.leaves),
        params.n as u64,
        10,
    );
    let cpu_ms = cpu.execution_latency(&cpu_work, false).total_s() * 1e3;
    let gpu_ms = GpuModel::a6000()
        .execution_latency(&cpu, &cpu_work)
        .total_s()
        * 1e3;

    SpeedupRow {
        log_target: params.log_target,
        ranks,
        cache_bytes,
        ironman_ms,
        cpu_ms,
        gpu_ms,
        cache_hit_rate: report.cache_hit_rate,
    }
}

/// Computes the full Fig. 12 grid: every Table 4 set × rank count × cache
/// size.
pub fn speedup_table(rank_counts: &[usize], cache_sizes: &[usize], seed: u64) -> Vec<SpeedupRow> {
    let mut rows = Vec::new();
    for &cache in cache_sizes {
        for &ranks in rank_counts {
            for params in FerretParams::TABLE4 {
                rows.push(speedup_cell(params, ranks, cache, seed));
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_grows_with_ranks() {
        let p = FerretParams::OT_2POW20;
        let two = speedup_cell(p, 2, 256 * 1024, 1);
        let sixteen = speedup_cell(p, 16, 256 * 1024, 1);
        assert!(
            sixteen.speedup_vs_cpu() > two.speedup_vs_cpu(),
            "16-rank {} !> 2-rank {}",
            sixteen.speedup_vs_cpu(),
            two.speedup_vs_cpu()
        );
    }

    #[test]
    fn speedups_in_paper_band() {
        // Paper: 3.66×–39.26× (256 KB) and 5.03×–237× (1 MB). We accept a
        // wider tolerance band; EXPERIMENTS.md reports exact values.
        let worst = speedup_cell(FerretParams::OT_2POW24, 2, 256 * 1024, 2);
        let best = speedup_cell(FerretParams::OT_2POW20, 16, 1024 * 1024, 2);
        assert!(
            worst.speedup_vs_cpu() > 1.5,
            "worst cell {}",
            worst.speedup_vs_cpu()
        );
        assert!(
            best.speedup_vs_cpu() > 25.0,
            "best cell {}",
            best.speedup_vs_cpu()
        );
        assert!(best.speedup_vs_cpu() > 4.0 * worst.speedup_vs_cpu());
    }

    #[test]
    fn gpu_between_cpu_and_best_ironman() {
        let row = speedup_cell(FerretParams::OT_2POW20, 16, 1024 * 1024, 3);
        assert!(row.gpu_ms < row.cpu_ms);
        assert!(
            row.ironman_ms < row.gpu_ms,
            "ironman {} !< gpu {}",
            row.ironman_ms,
            row.gpu_ms
        );
    }
}
