//! The end-to-end OT-extension engine.

use ironman_nmp::{NmpConfig, OteSimulator, OteWork, Role};
use ironman_ot::ferret::{run_extensions, FerretConfig, FerretOutput};
use ironman_perf::{CpuModel, OteWorkload};
use ironman_prg::PrgKind;
use serde::{Deserialize, Serialize};

/// Which hardware executes (or is simulated to execute) the extension.
// The NmpConfig payload makes the variant large, but Backend must stay
// Copy for the existing engine-construction call sites; boxing would
// change that API for no measurable gain at engine-count scales.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Backend {
    /// Pure software execution, timed by the analytical CPU model.
    SoftwareCpu,
    /// The Ironman-NMP accelerator, timed by the cycle-level simulator.
    IronmanNmp(NmpConfig),
}

impl Backend {
    /// The paper's flagship deployment: 16 ranks, 1 MB caches.
    pub fn ironman_default() -> Backend {
        Backend::IronmanNmp(NmpConfig::ironman_max())
    }
}

/// Timing summary of one extension.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Timing {
    /// Analytical CPU-baseline latency for the same work, ms.
    pub cpu_model_ms: f64,
    /// Simulated Ironman-NMP latency, ms (when that backend is selected).
    pub ironman_ms: Option<f64>,
    /// Bytes sent by the sender during the extension.
    pub sender_bytes: u64,
    /// Bytes sent by the receiver.
    pub receiver_bytes: u64,
}

impl Timing {
    /// Speedup of the selected backend over the CPU model (1.0 for the
    /// CPU backend itself).
    pub fn speedup(&self) -> f64 {
        match self.ironman_ms {
            Some(ms) if ms > 0.0 => self.cpu_model_ms / ms,
            _ => 1.0,
        }
    }
}

/// One completed extension: verified correlations plus timing.
#[derive(Clone, Debug)]
pub struct ExtensionRun {
    /// The matched sender/receiver COT outputs.
    pub cots: FerretOutput,
    /// Timing summary.
    pub timing: Timing,
}

/// The engine: a Ferret session bound to a timing backend.
#[derive(Clone, Debug)]
pub struct Engine {
    cfg: FerretConfig,
    backend: Backend,
    cpu: CpuModel,
}

impl Engine {
    /// Creates an engine.
    pub fn new(cfg: FerretConfig, backend: Backend) -> Self {
        Engine {
            cfg,
            backend,
            cpu: CpuModel::ferret_reference(),
        }
    }

    /// Overrides the CPU reference model (for sensitivity studies).
    pub fn with_cpu_model(mut self, cpu: CpuModel) -> Self {
        self.cpu = cpu;
        self
    }

    /// The Ferret configuration in use.
    pub fn config(&self) -> &FerretConfig {
        &self.cfg
    }

    /// Prebuilds the config's shared LPN matrix (a no-op if already
    /// present) so every session spawned from this engine — and from its
    /// clones, e.g. one per pool shard — reuses a single allocation
    /// instead of regenerating per party thread. Deliberately **not**
    /// done in [`Engine::new`]: the model-only estimation path
    /// ([`Engine::estimate_timing`]) never touches the matrix, and
    /// parameter sweeps construct many engines.
    pub fn prepare_shared_matrix(&mut self) {
        self.cfg.ensure_shared_matrix();
    }

    /// The per-execution workload in backend-agnostic units.
    pub fn workload(&self) -> OteWorkload {
        let p = self.cfg.params;
        let ops_per_tree = spcot_aes_equiv_ops(self.cfg.prg, self.cfg.arity.get(), p.leaves);
        OteWorkload::from_counts(
            p.t as u64,
            ops_per_tree,
            p.n as u64,
            self.cfg.row_weight as u64,
        )
    }

    /// Runs `iterations` extensions (two real protocol parties on two
    /// threads), attaching timing from the selected backend.
    pub fn run(&self, seed: u64, iterations: usize) -> Vec<ExtensionRun> {
        let outputs = run_extensions(&self.cfg, seed, iterations);
        outputs
            .into_iter()
            .map(|cots| {
                let timing = self.time_one(&cots, seed);
                ExtensionRun { cots, timing }
            })
            .collect()
    }

    /// Runs a single extension.
    pub fn run_one(&self, seed: u64) -> ExtensionRun {
        self.run(seed, 1).pop().expect("one iteration requested")
    }

    /// Computes timing without executing the protocol (for parameter
    /// sweeps at Table 4 scale, where the functional run would be slow in
    /// a test environment).
    pub fn estimate_timing(&self, seed: u64) -> Timing {
        let w = self.workload();
        let cpu_ms = self.cpu.execution_latency(&w, false).total_s() * 1e3;
        let ironman_ms = match self.backend {
            Backend::SoftwareCpu => None,
            Backend::IronmanNmp(nmp_cfg) => {
                let sim = OteSimulator::new(nmp_cfg);
                let report = sim.simulate(&self.ote_work(), seed);
                Some(report.latency_ms(&nmp_cfg))
            }
        };
        Timing {
            cpu_model_ms: cpu_ms,
            ironman_ms,
            sender_bytes: 0,
            receiver_bytes: 0,
        }
    }

    /// The NMP-simulator work description for one execution.
    pub fn ote_work(&self) -> OteWork {
        let p = self.cfg.params;
        OteWork {
            n: p.n,
            leaves: p.leaves,
            trees: p.t,
            k: p.k,
            weight: self.cfg.row_weight,
            arity: self.cfg.arity,
            prg: self.cfg.prg,
            role: Role::Sender,
            sort: self.cfg.sort,
            sample_rows: Some(16_384),
        }
    }

    fn time_one(&self, cots: &FerretOutput, seed: u64) -> Timing {
        let mut timing = self.estimate_timing(seed);
        timing.sender_bytes = cots.sender_stats.bytes_sent;
        timing.receiver_bytes = cots.receiver_stats.bytes_sent;
        timing
    }
}

/// AES-equivalent PRG operations to expand one GGM tree: the quantity the
/// CPU model charges (Fig. 6's operation-count table, measured in
/// `ironman-ggm` tests).
pub fn spcot_aes_equiv_ops(prg: PrgKind, arity: usize, leaves: usize) -> u64 {
    let blocks = ironman_ggm::Arity::new(arity)
        .expect("arity validated by FerretConfig")
        .expansion_blocks(leaves);
    match prg {
        PrgKind::Aes => blocks,
        // One ChaCha call = 4 blocks but is weighted as 4 AES equivalents
        // for throughput (same silicon budget), so equivalents = blocks;
        // the *latency* advantage shows up as fewer calls in the NMP
        // pipeline model. For the CPU model the paper's baseline is AES
        // binary trees, so this path matters only for what-if studies.
        PrgKind::ChaCha { .. } => blocks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ironman_ot::params::FerretParams;

    fn toy_engine(backend: Backend) -> Engine {
        Engine::new(FerretConfig::new(FerretParams::toy()), backend)
    }

    #[test]
    fn run_produces_verified_cots() {
        let run = toy_engine(Backend::ironman_default()).run_one(7);
        run.cots.verify().unwrap();
        assert!(run.timing.ironman_ms.is_some());
        assert!(run.timing.sender_bytes > 0);
    }

    #[test]
    fn cpu_backend_has_no_sim_latency() {
        let run = toy_engine(Backend::SoftwareCpu).run_one(8);
        assert!(run.timing.ironman_ms.is_none());
        assert_eq!(run.timing.speedup(), 1.0);
    }

    #[test]
    fn ironman_beats_cpu_model() {
        let run = toy_engine(Backend::ironman_default()).run_one(9);
        assert!(
            run.timing.speedup() > 1.0,
            "speedup {}",
            run.timing.speedup()
        );
    }

    #[test]
    fn estimate_matches_table4_scale() {
        // Estimation path must handle full-size parameter sets quickly.
        let cfg = FerretConfig::new(FerretParams::OT_2POW20);
        let engine = Engine::new(cfg, Backend::ironman_default());
        let t = engine.estimate_timing(1);
        let speedup = t.speedup();
        assert!(
            (5.0..2000.0).contains(&speedup),
            "2^20-set speedup {speedup} outside plausible band"
        );
    }

    #[test]
    fn spcot_ops_formula_binary() {
        // Binary tree: 2(ℓ−1) blocks.
        assert_eq!(spcot_aes_equiv_ops(PrgKind::Aes, 2, 4096), 2 * 4095);
    }

    #[test]
    fn spcot_ops_formula_quad() {
        // Exact 4-ary tree: 4(ℓ−1)/3 blocks.
        assert_eq!(spcot_aes_equiv_ops(PrgKind::CHACHA8, 4, 4096), 4 * 4095 / 3);
    }

    #[test]
    fn multi_iteration_runs() {
        let runs = toy_engine(Backend::ironman_default()).run(10, 2);
        assert_eq!(runs.len(), 2);
        for r in &runs {
            r.cots.verify().unwrap();
        }
    }
}
