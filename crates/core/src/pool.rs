//! A buffered COT pool with automatic re-extension.
//!
//! PPML frameworks consume correlations in bursts whose sizes don't align
//! with extension outputs (e.g. one ReLU layer of ResNet-18 needs ~2^25
//! COTs, §5.1.3). [`CotPool`] buffers extension outputs and serves
//! arbitrary-sized requests, transparently running additional extensions
//! when the buffer runs dry — the host-side behavior the Ironman PU's
//! streaming offload is designed for.

use crate::engine::{Engine, Timing};
use ironman_prg::Block;

/// A matched batch of correlations handed to the application.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CotBatch {
    /// The global offset `Δ` (sender side).
    pub delta: Block,
    /// Sender strings `z`.
    pub z: Vec<Block>,
    /// Receiver choice bits `x`.
    pub x: Vec<bool>,
    /// Receiver strings `y` with `z = y ⊕ x·Δ`.
    pub y: Vec<Block>,
}

impl CotBatch {
    /// Number of correlations in the batch.
    pub fn len(&self) -> usize {
        self.z.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.z.is_empty()
    }

    /// Checks the correlation on every element.
    ///
    /// # Errors
    ///
    /// Returns the index of the first violation.
    pub fn verify(&self) -> Result<(), usize> {
        for i in 0..self.len() {
            if self.z[i] != self.y[i] ^ self.delta.and_bit(self.x[i]) {
                return Err(i);
            }
        }
        Ok(())
    }
}

/// A replenishing store of COT correlations over an [`Engine`].
#[derive(Debug)]
pub struct CotPool {
    engine: Engine,
    seed: u64,
    delta: Option<Block>,
    z: Vec<Block>,
    x: Vec<bool>,
    y: Vec<Block>,
    cursor: usize,
    extensions_run: usize,
    last_timing: Option<Timing>,
}

impl CotPool {
    /// Creates an empty pool; the first request triggers an extension.
    pub fn new(engine: Engine, seed: u64) -> Self {
        CotPool {
            engine,
            seed,
            delta: None,
            z: Vec::new(),
            x: Vec::new(),
            y: Vec::new(),
            cursor: 0,
            extensions_run: 0,
            last_timing: None,
        }
    }

    /// The engine this pool extends with.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Correlations currently buffered and unconsumed.
    pub fn available(&self) -> usize {
        self.z.len() - self.cursor
    }

    /// Extensions executed so far.
    pub fn extensions_run(&self) -> usize {
        self.extensions_run
    }

    /// Timing of the most recent extension, if any.
    pub fn last_timing(&self) -> Option<Timing> {
        self.last_timing
    }

    fn refill(&mut self) {
        // Each refill is a fresh session (new seeds) in this harness; a
        // deployment would keep one bootstrapped session alive. Δ stays
        // fixed per pool so downstream protocols can cache Δ-dependent
        // state.
        self.seed = self
            .seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(1);
        let run = self.engine.run_one(self.seed);
        let out = run.cots;
        match self.delta {
            None => self.delta = Some(out.delta),
            Some(d) => {
                // With per-refill sessions Δ changes; expose each batch
                // under its own Δ by draining the remainder first.
                debug_assert!(self.available() == 0 || d == out.delta);
                self.delta = Some(out.delta);
            }
        }
        self.z = out.z;
        self.x = out.x;
        self.y = out.y;
        self.cursor = 0;
        self.extensions_run += 1;
        self.last_timing = Some(run.timing);
    }

    /// Tops the buffer up to at least `min_available` correlations,
    /// running one extension if it is currently below that watermark.
    /// Returns whether a refill happened.
    ///
    /// Because a batch never straddles a session boundary (each refill is
    /// a fresh session with its own `Δ`), a below-watermark remnant is
    /// discarded rather than merged — the same rule [`CotPool::take`]
    /// applies. Watermarks above one extension's output are clamped, as a
    /// single refill can never exceed it.
    pub fn ensure(&mut self, min_available: usize) -> bool {
        let min = min_available.min(self.engine.config().usable_outputs());
        if self.available() >= min {
            return false;
        }
        self.cursor = self.z.len();
        self.refill();
        true
    }

    /// Takes `count` correlations, extending as needed. The returned batch
    /// is homogeneous in `Δ` (requests never straddle a session boundary;
    /// a partially drained buffer is topped up lazily instead).
    ///
    /// # Panics
    ///
    /// Panics if `count` exceeds one extension's usable output (split such
    /// requests at the application level).
    pub fn take(&mut self, count: usize) -> CotBatch {
        let per_extension = self.engine.config().usable_outputs();
        assert!(
            count <= per_extension,
            "request of {count} exceeds one extension's output {per_extension}"
        );
        if self.available() < count {
            // Requests never straddle a session boundary: the remnant's Δ
            // dies with its session, so drop it before refilling (also
            // what refill's drained-buffer invariant expects).
            self.cursor = self.z.len();
            self.refill();
        }
        let start = self.cursor;
        self.cursor += count;
        CotBatch {
            delta: self.delta.expect("refill sets delta"),
            z: self.z[start..start + count].to_vec(),
            x: self.x[start..start + count].to_vec(),
            y: self.y[start..start + count].to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Backend;
    use ironman_ot::ferret::FerretConfig;
    use ironman_ot::params::FerretParams;

    fn pool() -> CotPool {
        let engine = Engine::new(
            FerretConfig::new(FerretParams::toy()),
            Backend::ironman_default(),
        );
        CotPool::new(engine, 42)
    }

    #[test]
    fn first_take_triggers_extension() {
        let mut p = pool();
        assert_eq!(p.extensions_run(), 0);
        let batch = p.take(100);
        assert_eq!(p.extensions_run(), 1);
        assert_eq!(batch.len(), 100);
        batch.verify().unwrap();
    }

    #[test]
    fn buffered_takes_do_not_re_extend() {
        let mut p = pool();
        let _ = p.take(100);
        let before = p.available();
        let b = p.take(200);
        b.verify().unwrap();
        assert_eq!(p.extensions_run(), 1);
        assert_eq!(p.available(), before - 200);
    }

    #[test]
    fn partial_drain_then_refill_discards_remnant() {
        // Regression: a refill with a partially drained buffer used to
        // trip refill's drained-buffer invariant (the remnant's Δ differs
        // from the new session's).
        let mut p = pool();
        let usable = p.engine.config().usable_outputs();
        let a = p.take(usable - 10); // leaves a 10-correlation remnant
        a.verify().unwrap();
        let b = p.take(20); // cannot be served from the remnant
        b.verify().unwrap();
        assert_eq!(p.extensions_run(), 2);
        assert_eq!(b.len(), 20);
    }

    #[test]
    fn exhaustion_triggers_refill() {
        let mut p = pool();
        let usable = p.engine.config().usable_outputs();
        let a = p.take(usable); // drains the first extension fully
        a.verify().unwrap();
        let b = p.take(10);
        b.verify().unwrap();
        assert_eq!(p.extensions_run(), 2);
    }

    #[test]
    fn batches_are_internally_consistent() {
        let mut p = pool();
        for _ in 0..5 {
            p.take(500).verify().unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "exceeds one extension")]
    fn oversized_request_rejected() {
        let mut p = pool();
        let usable = p.engine.config().usable_outputs();
        let _ = p.take(usable + 1);
    }
}
