//! A buffered COT pool with automatic re-extension.
//!
//! PPML frameworks consume correlations in bursts whose sizes don't align
//! with extension outputs (e.g. one ReLU layer of ResNet-18 needs ~2^25
//! COTs, §5.1.3). [`CotPool`] buffers extension outputs and serves
//! arbitrary-sized requests, transparently running additional extensions
//! when the buffer runs dry — the host-side behavior the Ironman PU's
//! streaming offload is designed for.
//!
//! # Supply modes
//!
//! * **Inline** ([`CotPool::new`]) — each refill bootstraps a fresh FERRET
//!   session via [`Engine::run_one`]. `Δ` changes per refill, so a batch
//!   never straddles a refill and a below-request remnant is discarded at
//!   every session boundary. Simple, but the bootstrap (dealer, LPN
//!   matrix, thread spawns) costs several times the marginal extension.
//! * **Pipelined** ([`CotPool::pipelined`]) — one persistent
//!   [`CotSession`] extends ahead of demand on background threads and a
//!   refill just drains its staging channel: a cursor bump plus at most
//!   one memcpy, never a protocol run on the demand path. `Δ` is fixed
//!   for the pool's lifetime, so remnants are *merged* across refills
//!   instead of discarded. If the session threads die the pool degrades
//!   permanently to inline refills.
//!
//! # Zero-copy consumption
//!
//! [`CotPool::take_slice`] hands out a [`CotSlice`] borrowing the pool's
//! ring directly; [`CotPool::take_into`] fills a caller-retained
//! [`CotBatch`], reusing its allocations. [`CotPool::take`] (allocating)
//! remains for callers that want owned batches.

use crate::engine::{Engine, Timing};
use ironman_ot::session::{CotSession, SessionBatch, SessionTelemetry};
use ironman_prg::Block;
use ironman_telemetry::{EventKind, Stopwatch};

/// A matched batch of correlations handed to the application.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CotBatch {
    /// The global offset `Δ` (sender side).
    pub delta: Block,
    /// Sender strings `z`.
    pub z: Vec<Block>,
    /// Receiver choice bits `x`.
    pub x: Vec<bool>,
    /// Receiver strings `y` with `z = y ⊕ x·Δ`.
    pub y: Vec<Block>,
}

impl Default for CotBatch {
    /// An empty batch (useful as a reusable decode/take target).
    fn default() -> Self {
        CotBatch {
            delta: Block::ZERO,
            z: Vec::new(),
            x: Vec::new(),
            y: Vec::new(),
        }
    }
}

impl CotBatch {
    /// Number of correlations in the batch.
    pub fn len(&self) -> usize {
        self.z.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.z.is_empty()
    }

    /// A borrowed view of the whole batch.
    pub fn as_slice(&self) -> CotSlice<'_> {
        CotSlice {
            delta: self.delta,
            z: &self.z,
            x: &self.x,
            y: &self.y,
        }
    }

    /// Checks the correlation on every element.
    ///
    /// # Errors
    ///
    /// Returns the index of the first violation.
    pub fn verify(&self) -> Result<(), usize> {
        self.as_slice().verify()
    }
}

/// A borrowed batch view into a pool's ring (or any matched `z`/`x`/`y`
/// triple): the zero-copy counterpart of [`CotBatch`]. Producers hand it
/// to encoders so correlation payloads go from pool storage to the wire
/// scratch buffer in one copy.
#[derive(Clone, Copy, Debug)]
pub struct CotSlice<'a> {
    /// The global offset `Δ`.
    pub delta: Block,
    /// Sender strings `z`.
    pub z: &'a [Block],
    /// Receiver choice bits `x`.
    pub x: &'a [bool],
    /// Receiver strings `y`.
    pub y: &'a [Block],
}

impl CotSlice<'_> {
    /// Number of correlations in the view.
    pub fn len(&self) -> usize {
        self.z.len()
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.z.is_empty()
    }

    /// Checks the correlation on every element.
    ///
    /// # Errors
    ///
    /// Returns the index of the first violation.
    pub fn verify(&self) -> Result<(), usize> {
        for i in 0..self.len() {
            if self.z[i] != self.y[i] ^ self.delta.and_bit(self.x[i]) {
                return Err(i);
            }
        }
        Ok(())
    }

    /// Materializes an owned [`CotBatch`] (one copy).
    pub fn to_batch(&self) -> CotBatch {
        CotBatch {
            delta: self.delta,
            z: self.z.to_vec(),
            x: self.x.to_vec(),
            y: self.y.to_vec(),
        }
    }

    /// Copies this view into `out`, reusing `out`'s allocations.
    pub fn copy_into(&self, out: &mut CotBatch) {
        out.delta = self.delta;
        out.z.clear();
        out.z.extend_from_slice(self.z);
        out.x.clear();
        out.x.extend_from_slice(self.x);
        out.y.clear();
        out.y.extend_from_slice(self.y);
    }
}

/// Where refills come from (see the module docs).
#[derive(Debug)]
enum Supply {
    /// Fresh session per refill via [`Engine::run_one`].
    Inline,
    /// Persistent pipelined session staging extensions ahead of demand.
    Session(CotSession),
}

/// Extensions a pipelined session keeps staged ahead of demand. Two is
/// enough to hide one extension behind consumption of the previous one
/// without hoarding memory (each staged extension is one full output).
const SESSION_LOOKAHEAD: usize = 2;

/// A replenishing store of COT correlations over an [`Engine`].
#[derive(Debug)]
pub struct CotPool {
    engine: Engine,
    seed: u64,
    supply: Supply,
    delta: Option<Block>,
    z: Vec<Block>,
    x: Vec<bool>,
    y: Vec<Block>,
    cursor: usize,
    extensions_run: usize,
    taken_cots: u64,
    warm_refills: u64,
    last_timing: Option<Timing>,
    /// Timing template for pipelined refills (the session runs off the
    /// demand path, so per-refill byte counts are not re-measured).
    session_timing: Option<Timing>,
    /// Extension/stall histograms and the event trace this pool records
    /// into. Pipelined supply shares these with its session (the session
    /// threads record extension durations); inline refills record here
    /// directly, so both supply modes feed the same sinks.
    telemetry: SessionTelemetry,
}

impl CotPool {
    /// Creates an empty inline-mode pool; the first request triggers a
    /// fresh-session extension. Records into fresh private telemetry
    /// sinks; use [`CotPool::new_with`] to share a caller's.
    pub fn new(engine: Engine, seed: u64) -> Self {
        CotPool::new_with(engine, seed, SessionTelemetry::default())
    }

    /// [`CotPool::new`] recording into caller-provided telemetry sinks
    /// (a sharded pool shares one set per shard so the serving layer
    /// can snapshot latencies without locking the shard).
    pub fn new_with(mut engine: Engine, seed: u64, telemetry: SessionTelemetry) -> Self {
        // Inline refills bootstrap a fresh session each time; prebuild
        // the matrix once so refills only pay for protocol work.
        engine.prepare_shared_matrix();
        CotPool {
            engine,
            seed,
            supply: Supply::Inline,
            delta: None,
            z: Vec::new(),
            x: Vec::new(),
            y: Vec::new(),
            cursor: 0,
            extensions_run: 0,
            taken_cots: 0,
            warm_refills: 0,
            last_timing: None,
            session_timing: None,
            telemetry,
        }
    }

    /// Creates a pool over a persistent pipelined session: extensions run
    /// on background threads ahead of demand, `Δ` is fixed for the pool's
    /// lifetime, and refills merge with any buffered remnant. Records
    /// into fresh private telemetry sinks; use
    /// [`CotPool::pipelined_with`] to share a caller's.
    pub fn pipelined(engine: Engine, seed: u64) -> Self {
        CotPool::pipelined_with(engine, seed, SessionTelemetry::default())
    }

    /// [`CotPool::pipelined`] recording into caller-provided telemetry
    /// sinks, shared with the session's party threads (extension
    /// durations and their SPCOT/LPN phase split come from the session;
    /// stalls and refill events from the drain path).
    pub fn pipelined_with(mut engine: Engine, seed: u64, telemetry: SessionTelemetry) -> Self {
        // One matrix for the session's two party threads (and zero new
        // allocations when a shard pool already prebuilt it).
        engine.prepare_shared_matrix();
        let session =
            CotSession::spawn_with(engine.config(), seed, SESSION_LOOKAHEAD, telemetry.clone());
        let delta = session.delta();
        let session_timing = engine.estimate_timing(seed);
        CotPool {
            engine,
            seed,
            supply: Supply::Session(session),
            delta: Some(delta),
            z: Vec::new(),
            x: Vec::new(),
            y: Vec::new(),
            cursor: 0,
            extensions_run: 0,
            taken_cots: 0,
            warm_refills: 0,
            last_timing: None,
            session_timing: Some(session_timing),
            telemetry,
        }
    }

    /// The telemetry sinks this pool (and its session, when pipelined)
    /// records into.
    pub fn telemetry(&self) -> &SessionTelemetry {
        &self.telemetry
    }

    /// The engine this pool extends with.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Whether refills merge with buffered remnants (fixed-`Δ` pipelined
    /// supply) instead of replacing the buffer (fresh `Δ` per refill).
    pub fn merges_remnants(&self) -> bool {
        matches!(self.supply, Supply::Session(_))
    }

    /// Correlations currently buffered and unconsumed.
    pub fn available(&self) -> usize {
        self.z.len() - self.cursor
    }

    /// Extensions executed so far.
    pub fn extensions_run(&self) -> usize {
        self.extensions_run
    }

    /// Correlations drained from this pool so far — the per-shard demand
    /// signal a fleet-level refill controller steers by.
    pub fn taken_cots(&self) -> u64 {
        self.taken_cots
    }

    /// Refills performed through [`CotPool::ensure`] (the warm-up path,
    /// as opposed to inline refills on the demand path).
    pub fn warm_refills(&self) -> u64 {
        self.warm_refills
    }

    /// Extensions the pipelined session's party threads have completed
    /// ahead of demand (0 for inline supply — inline extensions show up
    /// in [`CotPool::extensions_run`]).
    pub fn session_extensions(&self) -> u64 {
        match &self.supply {
            Supply::Session(session) => session.extensions_staged(),
            Supply::Inline => 0,
        }
    }

    /// Times a drain had to block on the session because the staging
    /// buffer was empty — the supply-pressure signal: demand reached
    /// this shard faster than its session extends (0 for inline supply).
    pub fn session_stalls(&self) -> u64 {
        match &self.supply {
            Supply::Session(session) => session.consumer_stalls(),
            Supply::Inline => 0,
        }
    }

    /// Timing of the most recent extension, if any (pipelined refills
    /// report the engine's analytical estimate: the session extends off
    /// the demand path, so per-refill wall time is not re-measured here).
    pub fn last_timing(&self) -> Option<Timing> {
        self.last_timing
    }

    fn refill(&mut self) {
        // Each inline refill is a fresh session (new seeds); Δ changes, so
        // callers drain the remainder before refilling.
        self.seed = self
            .seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(1);
        let watch = Stopwatch::start();
        let run = self.engine.run_one(self.seed);
        // Inline extensions run on the demand path, so they record into
        // the same extension histogram the pipelined session threads
        // use — either supply mode shows up in the shard's latencies.
        self.telemetry.extension.record(watch.elapsed_nanos());
        let out = run.cots;
        match self.delta {
            None => self.delta = Some(out.delta),
            Some(d) => {
                // With per-refill sessions Δ changes; expose each batch
                // under its own Δ by draining the remainder first.
                debug_assert!(self.available() == 0 || d == out.delta);
                self.delta = Some(out.delta);
            }
        }
        self.z = out.z;
        self.x = out.x;
        self.y = out.y;
        self.cursor = 0;
        self.extensions_run += 1;
        self.last_timing = Some(run.timing);
        self.telemetry
            .trace
            .push(EventKind::Refill, self.available() as u64);
    }

    /// Merges one staged session batch into the buffer (same `Δ`, so the
    /// remnant survives). When the buffer is fully drained this is a
    /// wholesale adoption of the staged vectors — zero copies.
    fn append(&mut self, batch: SessionBatch) {
        self.telemetry
            .trace
            .push(EventKind::Refill, batch.len() as u64);
        if self.cursor == self.z.len() {
            self.z = batch.z;
            self.x = batch.x;
            self.y = batch.y;
        } else {
            if self.cursor > 0 {
                // Compact the consumed prefix so the buffer doesn't grow
                // without bound across merge refills.
                self.z.drain(..self.cursor);
                self.x.drain(..self.cursor);
                self.y.drain(..self.cursor);
            }
            self.z.extend_from_slice(&batch.z);
            self.x.extend_from_slice(&batch.x);
            self.y.extend_from_slice(&batch.y);
        }
        self.cursor = 0;
        self.extensions_run += 1;
        self.last_timing = self.session_timing;
    }

    /// Brings `available()` to at least `count`, blocking on the session
    /// (pipelined) or running a fresh-session extension (inline; drops
    /// the remnant first — its `Δ` dies with its session).
    fn top_up(&mut self, count: usize) {
        while self.available() < count {
            let staged = match &self.supply {
                Supply::Session(session) => session.recv().ok(),
                Supply::Inline => None,
            };
            match staged {
                Some(batch) => self.append(batch),
                None => {
                    if self.merges_remnants() {
                        // Session threads died: degrade permanently to
                        // inline refills rather than failing the request.
                        self.supply = Supply::Inline;
                    }
                    self.cursor = self.z.len();
                    self.refill();
                }
            }
        }
    }

    /// Tops the buffer up to at least `min_available` correlations.
    /// Returns whether a refill happened.
    ///
    /// Inline mode runs (at most) one fresh-session extension, discarding
    /// a below-watermark remnant first — the same rule [`CotPool::take`]
    /// applies — and clamps watermarks to one extension's output.
    /// Pipelined mode instead drains already-staged session outputs
    /// **without blocking** (the session threads do the extending) and
    /// merges them with the remnant; the watermark is clamped to two
    /// extensions' output so a sweeping refiller cannot grow the buffer
    /// without bound.
    pub fn ensure(&mut self, min_available: usize) -> bool {
        let refilled = self.ensure_inner(min_available);
        if refilled {
            self.warm_refills += 1;
        }
        refilled
    }

    fn ensure_inner(&mut self, min_available: usize) -> bool {
        let per = self.engine.config().usable_outputs();
        let mut refilled = false;
        if let Supply::Session(_) = &self.supply {
            let min = min_available.min(2 * per);
            while self.available() < min {
                let staged = match &self.supply {
                    Supply::Session(session) => session.try_recv(),
                    Supply::Inline => unreachable!("supply mode fixed in this arm"),
                };
                match staged {
                    Ok(Some(batch)) => {
                        self.append(batch);
                        refilled = true;
                    }
                    // Staging merely empty: the threads are still
                    // extending; the next sweep catches the output.
                    Ok(None) => return refilled,
                    // Session died: degrade permanently and fall through
                    // to the inline path below, so a sweeping refiller
                    // heals the shard instead of leaving the bootstrap
                    // to the next request's critical path.
                    Err(_) => {
                        self.supply = Supply::Inline;
                        break;
                    }
                }
            }
            if matches!(self.supply, Supply::Session(_)) {
                return refilled;
            }
        }
        let min = min_available.min(per);
        if self.available() >= min {
            return refilled;
        }
        self.cursor = self.z.len();
        self.refill();
        true
    }

    /// Takes `count` correlations as a borrowed view of the pool's ring —
    /// the zero-copy primitive behind [`CotPool::take`] and
    /// [`CotPool::take_into`]. The returned view is homogeneous in `Δ`
    /// (inline mode never lets a batch straddle a session boundary;
    /// pipelined mode has a single `Δ` for the pool's lifetime).
    ///
    /// # Panics
    ///
    /// Panics if `count` exceeds one extension's usable output (split such
    /// requests at the application level).
    pub fn take_slice(&mut self, count: usize) -> CotSlice<'_> {
        let per_extension = self.engine.config().usable_outputs();
        assert!(
            count <= per_extension,
            "request of {count} exceeds one extension's output {per_extension}"
        );
        self.top_up(count);
        let start = self.cursor;
        self.cursor += count;
        self.taken_cots += count as u64;
        CotSlice {
            delta: self.delta.expect("refill sets delta"),
            z: &self.z[start..start + count],
            x: &self.x[start..start + count],
            y: &self.y[start..start + count],
        }
    }

    /// Takes `count` correlations as an owned batch, extending as needed.
    ///
    /// # Panics
    ///
    /// Same bound as [`CotPool::take_slice`].
    pub fn take(&mut self, count: usize) -> CotBatch {
        self.take_slice(count).to_batch()
    }

    /// Takes `count` correlations into a caller-retained batch, reusing
    /// its allocations (same semantics — including the inline-mode
    /// drop-remnant-on-refill `Δ` rule — as [`CotPool::take`]).
    ///
    /// # Panics
    ///
    /// Same bound as [`CotPool::take_slice`].
    pub fn take_into(&mut self, count: usize, out: &mut CotBatch) {
        self.take_slice(count).copy_into(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Backend;
    use ironman_ot::ferret::FerretConfig;
    use ironman_ot::params::FerretParams;

    fn engine() -> Engine {
        Engine::new(
            FerretConfig::new(FerretParams::toy()),
            Backend::ironman_default(),
        )
    }

    fn pool() -> CotPool {
        CotPool::new(engine(), 42)
    }

    #[test]
    fn first_take_triggers_extension() {
        let mut p = pool();
        assert_eq!(p.extensions_run(), 0);
        let batch = p.take(100);
        assert_eq!(p.extensions_run(), 1);
        assert_eq!(batch.len(), 100);
        batch.verify().unwrap();
    }

    #[test]
    fn buffered_takes_do_not_re_extend() {
        let mut p = pool();
        let _ = p.take(100);
        let before = p.available();
        let b = p.take(200);
        b.verify().unwrap();
        assert_eq!(p.extensions_run(), 1);
        assert_eq!(p.available(), before - 200);
    }

    #[test]
    fn partial_drain_then_refill_discards_remnant() {
        // Regression: a refill with a partially drained buffer used to
        // trip refill's drained-buffer invariant (the remnant's Δ differs
        // from the new session's).
        let mut p = pool();
        let usable = p.engine.config().usable_outputs();
        let a = p.take(usable - 10); // leaves a 10-correlation remnant
        a.verify().unwrap();
        let b = p.take(20); // cannot be served from the remnant
        b.verify().unwrap();
        assert_eq!(p.extensions_run(), 2);
        assert_eq!(b.len(), 20);
    }

    #[test]
    fn take_into_preserves_drop_remnant_delta_invariant() {
        // take_into must follow exactly the Δ rule of take: an inline-mode
        // refill drops the old session's remnant, and the refilled batch
        // is homogeneous under the *new* session's Δ.
        let mut p = pool();
        let usable = p.engine.config().usable_outputs();
        let mut reused = CotBatch::default();
        p.take_into(usable - 10, &mut reused);
        reused.verify().unwrap();
        let first_delta = reused.delta;
        let remnant = p.available();
        assert_eq!(remnant, 10);
        p.take_into(20, &mut reused); // forces a refill; remnant dropped
        reused.verify().unwrap();
        assert_eq!(reused.len(), 20);
        assert_ne!(
            reused.delta, first_delta,
            "fresh session must carry a fresh Δ"
        );
        assert_eq!(p.extensions_run(), 2);
        // The dropped remnant is really gone: a full-buffer drain now
        // yields exactly one extension's output minus the 20 just taken.
        assert_eq!(p.available(), usable - 20);
    }

    #[test]
    fn take_into_reuses_capacity() {
        let mut p = pool();
        let mut reused = CotBatch::default();
        p.take_into(500, &mut reused);
        reused.verify().unwrap();
        let (cz, cx, cy) = (
            reused.z.capacity(),
            reused.x.capacity(),
            reused.y.capacity(),
        );
        for _ in 0..4 {
            p.take_into(500, &mut reused);
            reused.verify().unwrap();
            assert_eq!(reused.len(), 500);
        }
        assert_eq!(
            (cz, cx, cy),
            (
                reused.z.capacity(),
                reused.x.capacity(),
                reused.y.capacity()
            ),
            "equal-sized takes must not reallocate the reused batch"
        );
    }

    #[test]
    fn exhaustion_triggers_refill() {
        let mut p = pool();
        let usable = p.engine.config().usable_outputs();
        let a = p.take(usable); // drains the first extension fully
        a.verify().unwrap();
        let b = p.take(10);
        b.verify().unwrap();
        assert_eq!(p.extensions_run(), 2);
    }

    #[test]
    fn batches_are_internally_consistent() {
        let mut p = pool();
        for _ in 0..5 {
            p.take(500).verify().unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "exceeds one extension")]
    fn oversized_request_rejected() {
        let mut p = pool();
        let usable = p.engine.config().usable_outputs();
        let _ = p.take(usable + 1);
    }

    #[test]
    fn pipelined_pool_merges_remnants_under_fixed_delta() {
        let mut p = CotPool::pipelined(engine(), 42);
        assert!(p.merges_remnants());
        let usable = p.engine.config().usable_outputs();
        let a = p.take(usable - 10); // leaves a 10-correlation remnant
        a.verify().unwrap();
        let b = p.take(20); // straddles the refill: remnant is merged
        b.verify().unwrap();
        assert_eq!(b.delta, a.delta, "pipelined Δ is fixed for life");
        assert_eq!(p.extensions_run(), 2);
        // Nothing was discarded: two extensions in, (usable - 10) + 20 out.
        assert_eq!(p.available(), 2 * usable - (usable - 10) - 20);
    }

    #[test]
    fn pipelined_matches_inline_delta_contract() {
        let mut p = CotPool::pipelined(engine(), 7);
        for _ in 0..5 {
            p.take(500).verify().unwrap();
        }
        let mut reused = CotBatch::default();
        p.take_into(700, &mut reused);
        reused.verify().unwrap();
        assert_eq!(reused.len(), 700);
    }

    #[test]
    fn pipelined_ensure_drains_staged_without_blocking() {
        let mut p = CotPool::pipelined(engine(), 9);
        let usable = p.engine.config().usable_outputs();
        // The session stages in the background; ensure() eventually
        // observes it without ever running an extension on this thread.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
        while p.available() < usable {
            p.ensure(usable);
            assert!(
                std::time::Instant::now() < deadline,
                "staged output never arrived"
            );
            std::thread::yield_now();
        }
        let before = p.extensions_run();
        p.take(100).verify().unwrap();
        assert_eq!(p.extensions_run(), before, "served from the buffer");
    }

    #[test]
    fn take_slice_is_a_zero_copy_view() {
        let mut p = pool();
        let before = p.take(1); // prime the buffer
        before.verify().unwrap();
        let available = p.available();
        let s = p.take_slice(300);
        assert_eq!(s.len(), 300);
        s.verify().unwrap();
        let owned = s.to_batch();
        owned.verify().unwrap();
        assert_eq!(p.available(), available - 300);
    }
}
