//! Online conversions: COT → random OT → chosen-message OT (Fig. 2).
//!
//! The pre-processing phase (the extension) yields COT correlations whose
//! algebraic structure (`z = y ⊕ x·Δ`) would leak across uses; the online
//! phase hashes them with the correlation-robust hash into independent
//! random-OT pads, then uses the pads to transfer actual messages.

use ironman_ot::ferret::FerretOutput;
use ironman_prg::{Block, Crhf};
use serde::{Deserialize, Serialize};

/// The sender's random-OT pads: one `(H(z), H(z ⊕ Δ))` pair per OT.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RotSender {
    pads: Vec<(Block, Block)>,
}

/// The receiver's random-OT share: the choice bit and its pad.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RotReceiver {
    choices: Vec<bool>,
    pads: Vec<Block>,
}

impl RotSender {
    /// Hashes a COT batch into sender pads.
    pub fn from_cots(delta: Block, z: &[Block], tweak_base: u64) -> Self {
        let crhf = Crhf::new();
        let pads = z
            .iter()
            .enumerate()
            .map(|(i, &zi)| {
                let t = tweak_base + i as u64;
                (crhf.hash(t, zi), crhf.hash(t, zi ^ delta))
            })
            .collect();
        RotSender { pads }
    }

    /// Number of OTs available.
    pub fn len(&self) -> usize {
        self.pads.len()
    }

    /// Whether no OTs remain.
    pub fn is_empty(&self) -> bool {
        self.pads.is_empty()
    }

    /// Masks message pairs: `y_j = (m0 ⊕ pad0, m1 ⊕ pad1)`, to be sent with
    /// the receiver's derandomization bits applied (see
    /// [`RotReceiver::derandomize`]).
    ///
    /// # Panics
    ///
    /// Panics if more messages than pads are supplied.
    pub fn mask(&self, messages: &[(Block, Block)], flips: &[bool]) -> Vec<(Block, Block)> {
        assert!(messages.len() <= self.pads.len(), "not enough OT pads");
        assert_eq!(messages.len(), flips.len());
        messages
            .iter()
            .zip(self.pads.iter())
            .zip(flips.iter())
            .map(|((&(m0, m1), &(p0, p1)), &d)| {
                let (q0, q1) = if d { (p1, p0) } else { (p0, p1) };
                (m0 ^ q0, m1 ^ q1)
            })
            .collect()
    }
}

impl RotReceiver {
    /// Hashes the receiver's COT batch into `(choice, pad)` pairs.
    pub fn from_cots(x: &[bool], y: &[Block], tweak_base: u64) -> Self {
        assert_eq!(x.len(), y.len());
        let crhf = Crhf::new();
        let pads = y
            .iter()
            .enumerate()
            .map(|(i, &yi)| crhf.hash(tweak_base + i as u64, yi))
            .collect();
        RotReceiver {
            choices: x.to_vec(),
            pads,
        }
    }

    /// Number of OTs available.
    pub fn len(&self) -> usize {
        self.pads.len()
    }

    /// Whether no OTs remain.
    pub fn is_empty(&self) -> bool {
        self.pads.is_empty()
    }

    /// The random choice bits.
    pub fn choices(&self) -> &[bool] {
        &self.choices
    }

    /// Derandomization bits aligning the random choices with the desired
    /// ones: `d_j = b_j ⊕ c_j` (sent to the sender in the clear).
    ///
    /// # Panics
    ///
    /// Panics if `desired.len()` exceeds the available OTs.
    pub fn derandomize(&self, desired: &[bool]) -> Vec<bool> {
        assert!(desired.len() <= self.choices.len(), "not enough OTs");
        desired
            .iter()
            .zip(self.choices.iter())
            .map(|(&c, &b)| c ^ b)
            .collect()
    }

    /// Unmasks the chosen message of each pair.
    ///
    /// # Panics
    ///
    /// Panics if `masked.len()` exceeds the available OTs.
    pub fn unmask(&self, masked: &[(Block, Block)], desired: &[bool]) -> Vec<Block> {
        assert!(masked.len() <= self.pads.len(), "not enough OT pads");
        masked
            .iter()
            .zip(desired.iter())
            .zip(self.pads.iter())
            .map(|((&(y0, y1), &c), &pad)| if c { y1 ^ pad } else { y0 ^ pad })
            .collect()
    }
}

/// Converts a verified extension output into matched random-OT halves.
pub fn rot_from_extension(out: &FerretOutput, tweak_base: u64) -> (RotSender, RotReceiver) {
    (
        RotSender::from_cots(out.delta, &out.z, tweak_base),
        RotReceiver::from_cots(&out.x, &out.y, tweak_base),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ironman_ot::ferret::{run_extension, FerretConfig};
    use ironman_ot::params::FerretParams;

    fn rots() -> (RotSender, RotReceiver) {
        let out = run_extension(&FerretConfig::new(FerretParams::toy()), 77);
        rot_from_extension(&out, 1000)
    }

    #[test]
    fn receiver_pad_matches_senders_chosen_pad() {
        let (s, r) = rots();
        for i in 0..64 {
            let (p0, p1) = s.pads[i];
            let expect = if r.choices[i] { p1 } else { p0 };
            assert_eq!(r.pads[i], expect, "pad {i}");
        }
    }

    #[test]
    fn pads_look_uncorrelated() {
        let (s, _) = rots();
        for i in 0..64 {
            let (p0, p1) = s.pads[i];
            assert_ne!(p0, p1);
            // XOR of pads must not equal any fixed offset across OTs.
            if i > 0 {
                assert_ne!(s.pads[i - 1].0 ^ s.pads[i - 1].1, p0 ^ p1);
            }
        }
    }

    #[test]
    fn chosen_message_transfer_end_to_end() {
        let (s, r) = rots();
        let n = 32;
        let messages: Vec<(Block, Block)> = (0..n as u128)
            .map(|i| (Block::from(i * 2), Block::from(i * 2 + 1)))
            .collect();
        let desired: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
        let flips = r.derandomize(&desired);
        let masked = s.mask(&messages, &flips);
        let got = r.unmask(&masked, &desired);
        for i in 0..n {
            let expect = if desired[i] {
                messages[i].1
            } else {
                messages[i].0
            };
            assert_eq!(got[i], expect, "OT {i}");
        }
    }

    #[test]
    fn wrong_choice_gets_garbage() {
        // Security smoke test: decrypting with the wrong choice bit yields
        // neither message.
        let (s, r) = rots();
        let messages = vec![(Block::from(111u128), Block::from(222u128))];
        let desired = vec![false];
        let flips = r.derandomize(&desired);
        let masked = s.mask(&messages, &flips);
        let wrong = masked[0].1 ^ r.pads[0];
        assert_ne!(wrong, messages[0].0);
        assert_ne!(wrong, messages[0].1);
    }

    #[test]
    fn lengths_consistent() {
        let (s, r) = rots();
        assert_eq!(s.len(), r.len());
        assert!(!s.is_empty());
    }
}
