//! A thread-safe, mutex-sharded [`CotPool`] for multi-client serving.
//!
//! A single `Mutex<CotPool>` would serialize every client behind each
//! FERRET refill (one extension at toy scale is already milliseconds, and
//! Table-4 scale is seconds). [`SharedCotPool`] instead keeps `S`
//! independent pools, each behind its own lock, and spreads requests
//! round-robin with lock-stealing: a request first tries every shard
//! without blocking and only then parks on its home shard. Refills on one
//! shard thus overlap with serving on the others — the host-side analogue
//! of the Ironman PU streaming extensions while the CPU consumes.
//!
//! Each shard is an independent FERRET session with its own `Δ`; a batch
//! never straddles shards, so every [`CotBatch`] stays homogeneous in `Δ`
//! (the invariant [`CotPool::take`] already guarantees per session).

use crate::engine::Engine;
use crate::pool::{CotBatch, CotPool, CotSlice};
use ironman_ot::session::SessionTelemetry;
use ironman_telemetry::HistogramSnapshot;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Recovers a poisoned shard: a panic mid-`take` (e.g. an oversized
/// request's assert) leaves the pool state consistent, so serving must
/// continue rather than cascade the panic to every other client.
fn lock_shard(shard: &Mutex<CotPool>) -> MutexGuard<'_, CotPool> {
    shard
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// One shard's self-consistent counter snapshot (counters read under a
/// single lock acquisition): occupancy, extension work, demand drained,
/// and warm-up refills — the per-shard signals a fleet-level refill
/// controller steers by — plus the shard's latency distributions
/// (lock-free histograms, snapshotted without the shard lock).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardSnapshot {
    /// Correlations currently buffered in this shard.
    pub available: usize,
    /// Extensions this shard has executed (inline or warm-up).
    pub extensions_run: usize,
    /// Correlations drained from this shard since construction.
    pub taken_cots: u64,
    /// Refills performed through the warm-up path (`ensure`).
    pub warm_refills: u64,
    /// Extensions completed by the shard's pipelined session threads
    /// (0 for inline shards).
    pub session_extensions: u64,
    /// Times a drain blocked on the session's staging buffer — the
    /// shard's supply-pressure counter (0 for inline shards).
    pub session_stalls: u64,
    /// Per-extension wall time, nanoseconds (pipelined session runs and
    /// inline demand-path refills both record here).
    pub extension_latency: HistogramSnapshot,
    /// Time drains spent blocked on the session's empty staging buffer,
    /// nanoseconds (one sample per stall).
    pub stall_latency: HistogramSnapshot,
}

/// A fixed set of independently locked [`CotPool`] shards.
#[derive(Debug)]
pub struct SharedCotPool {
    shards: Vec<Mutex<CotPool>>,
    /// Per-shard telemetry sinks (parallel to `shards`), shared with
    /// each shard's pool and session so latency snapshots and trace
    /// dumps never take a shard lock.
    telemetry: Vec<SessionTelemetry>,
    next: AtomicUsize,
    max_request: usize,
    warmup_refills: AtomicU64,
}

impl SharedCotPool {
    /// Builds `shards` inline-mode pools over clones of `engine`, with
    /// per-shard seeds derived from `seed` (each refill bootstraps a
    /// fresh FERRET session; see [`CotPool::new`]).
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn new(engine: &Engine, shards: usize, seed: u64) -> Self {
        Self::build(engine, shards, seed, false)
    }

    /// Builds `shards` pipelined pools: each shard owns a persistent
    /// FERRET session extending ahead of demand on background threads,
    /// with a fixed per-shard `Δ` and remnant-merging refills (see
    /// [`CotPool::pipelined`]) — the serving-path configuration.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn new_pipelined(engine: &Engine, shards: usize, seed: u64) -> Self {
        Self::build(engine, shards, seed, true)
    }

    fn build(engine: &Engine, shards: usize, seed: u64, pipelined: bool) -> Self {
        assert!(shards > 0, "need at least one shard");
        // Generate the LPN matrix exactly once here; every shard's
        // engine clone (and both party threads inside each shard's
        // session) then shares the one `Arc` — N shards would otherwise
        // pay 2N generations, the dominant spawn cost at Table-4 scale.
        let mut engine = engine.clone();
        engine.prepare_shared_matrix();
        let engine = &engine;
        let telemetry: Vec<SessionTelemetry> =
            (0..shards).map(|_| SessionTelemetry::default()).collect();
        let shards = telemetry
            .iter()
            .enumerate()
            .map(|(i, shard_telemetry)| {
                let shard_seed =
                    seed.wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i as u64 + 1));
                let pool = if pipelined {
                    CotPool::pipelined_with(engine.clone(), shard_seed, shard_telemetry.clone())
                } else {
                    CotPool::new_with(engine.clone(), shard_seed, shard_telemetry.clone())
                };
                Mutex::new(pool)
            })
            .collect();
        SharedCotPool {
            shards,
            telemetry,
            next: AtomicUsize::new(0),
            max_request: engine.config().usable_outputs(),
            warmup_refills: AtomicU64::new(0),
        }
    }

    /// The per-shard telemetry sinks (in shard order) — lock-free to
    /// snapshot, so the serving layer reads latency distributions and
    /// dumps traces without touching the shard locks.
    pub fn shard_telemetry(&self) -> &[SessionTelemetry] {
        &self.telemetry
    }

    /// Whether **every** shard still merges remnants across refills
    /// (pipelined, fixed-`Δ` supply) instead of replacing its buffer.
    /// Queried live — a pipelined shard whose session threads died
    /// degrades to fresh-`Δ` inline refills, and callers caching
    /// `Δ`-dependent state must see that — so this can flip from `true`
    /// to `false` over the pool's lifetime (never back).
    pub fn merges_remnants(&self) -> bool {
        self.shards.iter().all(|s| lock_shard(s).merges_remnants())
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Largest request a single call can serve (one extension's output).
    pub fn max_request(&self) -> usize {
        self.max_request
    }

    /// Takes `count` correlations from one shard (the batch is always
    /// homogeneous in `Δ`).
    ///
    /// Tries each shard without blocking first (starting at this request's
    /// round-robin home), so a shard mid-refill never stalls requests that
    /// another shard could serve from its buffer; blocks on the home shard
    /// only when every shard is busy.
    ///
    /// # Panics
    ///
    /// Panics if `count` exceeds [`SharedCotPool::max_request`].
    pub fn take(&self, count: usize) -> CotBatch {
        self.take_with(count, |slice| slice.to_batch())
    }

    /// Takes `count` correlations into a caller-retained batch, reusing
    /// its allocations (same routing and `Δ` semantics as
    /// [`SharedCotPool::take`]).
    ///
    /// # Panics
    ///
    /// Panics if `count` exceeds [`SharedCotPool::max_request`].
    pub fn take_into(&self, count: usize, out: &mut CotBatch) {
        self.take_with(count, |slice| slice.copy_into(out));
    }

    /// The zero-copy take: locks one shard (same lock-stealing routing as
    /// [`SharedCotPool::take`]) and hands `f` a [`CotSlice`] borrowing
    /// the shard's ring directly, so the caller can serialize the batch
    /// straight into its own buffer with a single copy. The shard lock is
    /// held for the duration of `f` — keep it to a copy/encode, not I/O.
    ///
    /// # Panics
    ///
    /// Panics if `count` exceeds [`SharedCotPool::max_request`].
    pub fn take_with<R>(&self, count: usize, f: impl FnOnce(CotSlice<'_>) -> R) -> R {
        self.take_with_shard(count, |slice, _shard| f(slice))
    }

    /// [`SharedCotPool::take_with`] that also hands `f` the index of the
    /// shard that served the request, so the serving layer can attribute
    /// per-request measurements (latency histograms) to the shard that
    /// actually did the work rather than the round-robin home.
    ///
    /// # Panics
    ///
    /// Panics if `count` exceeds [`SharedCotPool::max_request`].
    pub fn take_with_shard<R>(&self, count: usize, f: impl FnOnce(CotSlice<'_>, usize) -> R) -> R {
        let n = self.shards.len();
        let home = self.next.fetch_add(1, Ordering::Relaxed) % n;
        for offset in 0..n {
            let shard = (home + offset) % n;
            match self.shards[shard].try_lock() {
                Ok(mut pool) => return f(pool.take_slice(count), shard),
                Err(std::sync::TryLockError::Poisoned(poisoned)) => {
                    return f(poisoned.into_inner().take_slice(count), shard)
                }
                Err(std::sync::TryLockError::WouldBlock) => {}
            }
        }
        f(lock_shard(&self.shards[home]).take_slice(count), home)
    }

    /// Total correlations buffered across all shards right now.
    pub fn available(&self) -> usize {
        self.shards.iter().map(|s| lock_shard(s).available()).sum()
    }

    /// Total extensions executed across all shards.
    pub fn extensions_run(&self) -> usize {
        self.shards
            .iter()
            .map(|s| lock_shard(s).extensions_run())
            .sum()
    }

    /// Correlations currently buffered, per shard (in shard order).
    pub fn shard_occupancy(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(|s| lock_shard(s).available())
            .collect()
    }

    /// Extensions executed so far, per shard (in shard order).
    pub fn shard_extensions(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(|s| lock_shard(s).extensions_run())
            .collect()
    }

    /// Per-shard counter snapshots, each read under a single lock
    /// acquisition so every snapshot is self-consistent (separate
    /// [`SharedCotPool::shard_occupancy`]/[`SharedCotPool::shard_extensions`]
    /// sweeps can interleave with a refill and report a shard as both
    /// empty and freshly extended).
    pub fn shard_stats(&self) -> Vec<ShardSnapshot> {
        self.shards
            .iter()
            .zip(&self.telemetry)
            .map(|(s, telemetry)| {
                let pool = lock_shard(s);
                ShardSnapshot {
                    available: pool.available(),
                    extensions_run: pool.extensions_run(),
                    taken_cots: pool.taken_cots(),
                    warm_refills: pool.warm_refills(),
                    session_extensions: pool.session_extensions(),
                    session_stalls: pool.session_stalls(),
                    extension_latency: telemetry.extension.snapshot(),
                    stall_latency: telemetry.stall.snapshot(),
                }
            })
            .collect()
    }

    /// Refills performed by [`SharedCotPool::warm`] since construction.
    pub fn warmup_refills(&self) -> u64 {
        self.warmup_refills.load(Ordering::Relaxed)
    }

    /// One warm-up sweep: refills every shard whose buffered correlations
    /// have fallen below `low_watermark`, so demand that arrives later is
    /// served from the buffer instead of paying an inline extension — the
    /// host-side analogue of the Ironman PU extending ahead of the CPU's
    /// consumption. Returns the number of shards refilled.
    ///
    /// The watermark is re-clamped **per shard, per sweep** against that
    /// shard's *live* supply mode: a remnant-merging (pipelined) shard
    /// allows up to two extensions' output, while a buffer-replacing
    /// (inline — by construction or because its session threads died)
    /// shard is capped at **half** an extension, since a post-drain
    /// refill there discards the live remnant and the half cap bounds
    /// the discard to at most half the work each refill buys.
    ///
    /// The sweep never blocks behind a busy shard: a shard currently
    /// serving (or already being refilled by) another thread is skipped
    /// and caught on the next sweep, so warm-up never adds latency to the
    /// demand path it exists to protect.
    pub fn warm(&self, low_watermark: usize) -> usize {
        self.warm_budgeted(low_watermark, usize::MAX)
    }

    /// A budget-bounded warm-up sweep: like [`SharedCotPool::warm`], but
    /// refills at most `budget` shards, visiting the **lowest-occupancy
    /// shards first** so a constrained budget lands where the deficit is
    /// deepest. A fleet-level controller uses this to split one global
    /// refill allowance across servers proportionally to their demand.
    ///
    /// Returns the number of shards actually refilled (a full or busy
    /// shard consumes no budget).
    pub fn warm_budgeted(&self, low_watermark: usize, budget: usize) -> usize {
        // Cheap occupancy pre-pass so the budget is spent on the driest
        // shards. Non-blocking, like the refill pass below: a shard busy
        // serving (possibly through a long inline extension) must never
        // stall the sweep — it just sorts last. Occupancy may also shift
        // before the refill pass re-locks a shard; a stale order only
        // costs priority, not correctness.
        let mut order: Vec<(usize, usize)> = self
            .shards
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let occupancy = match s.try_lock() {
                    Ok(pool) => pool.available(),
                    Err(std::sync::TryLockError::Poisoned(poisoned)) => {
                        poisoned.into_inner().available()
                    }
                    Err(std::sync::TryLockError::WouldBlock) => usize::MAX,
                };
                (occupancy, i)
            })
            .collect();
        order.sort_unstable();
        let mut refills = 0;
        for &(_, idx) in &order {
            if refills >= budget {
                break;
            }
            let mut pool = match self.shards[idx].try_lock() {
                Ok(pool) => pool,
                Err(std::sync::TryLockError::Poisoned(poisoned)) => poisoned.into_inner(),
                Err(std::sync::TryLockError::WouldBlock) => continue,
            };
            let cap = if pool.merges_remnants() {
                2 * self.max_request
            } else {
                self.max_request / 2
            };
            if pool.ensure(low_watermark.min(cap.max(1))) {
                refills += 1;
            }
        }
        self.warmup_refills
            .fetch_add(refills as u64, Ordering::Relaxed);
        refills
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Backend;
    use ironman_ot::ferret::FerretConfig;
    use ironman_ot::params::FerretParams;
    use std::sync::Arc;

    fn shared(shards: usize) -> SharedCotPool {
        let engine = Engine::new(
            FerretConfig::new(FerretParams::toy()),
            Backend::ironman_default(),
        );
        SharedCotPool::new(&engine, shards, 7)
    }

    #[test]
    fn serves_verified_batches() {
        let pool = shared(2);
        for _ in 0..4 {
            pool.take(200).verify().unwrap();
        }
        assert!(pool.extensions_run() >= 1);
    }

    #[test]
    fn concurrent_takes_all_verify() {
        let pool = Arc::new(shared(4));
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let pool = Arc::clone(&pool);
                scope.spawn(move || {
                    for _ in 0..5 {
                        pool.take(100).verify().unwrap();
                    }
                });
            }
        });
        assert!(pool.available() > 0 || pool.extensions_run() > 0);
    }

    #[test]
    #[should_panic(expected = "need at least one shard")]
    fn zero_shards_rejected() {
        let _ = shared(0);
    }

    #[test]
    fn warm_fills_every_shard_to_watermark() {
        let pool = shared(3);
        assert_eq!(pool.shard_occupancy(), vec![0, 0, 0]);
        let refilled = pool.warm(pool.max_request());
        assert_eq!(refilled, 3);
        assert_eq!(pool.warmup_refills(), 3);
        for occupancy in pool.shard_occupancy() {
            assert_eq!(occupancy, pool.max_request());
        }
        // A warm pool is a no-op to warm again.
        assert_eq!(pool.warm(pool.max_request()), 0);
        assert_eq!(pool.warmup_refills(), 3);
        // Demand after warm-up is served without an inline extension.
        let before = pool.extensions_run();
        pool.take(100).verify().unwrap();
        assert_eq!(pool.extensions_run(), before);
    }

    #[test]
    fn warm_budgeted_spends_budget_on_the_driest_shards() {
        let pool = shared(3);
        // All three shards are dry; a budget of 2 refills exactly 2.
        assert_eq!(pool.warm_budgeted(pool.max_request(), 2), 2);
        let occ = pool.shard_occupancy();
        assert_eq!(occ.iter().filter(|&&o| o > 0).count(), 2);
        // The next sweep finds the remaining dry shard first; the two
        // already-full shards consume no budget.
        assert_eq!(pool.warm_budgeted(pool.max_request(), 2), 1);
        assert!(pool
            .shard_occupancy()
            .iter()
            .all(|&o| o >= pool.max_request()));
        // Per-shard warm refill counters sum to the pool total.
        let stats = pool.shard_stats();
        assert_eq!(
            stats.iter().map(|s| s.warm_refills).sum::<u64>(),
            pool.warmup_refills()
        );
        assert_eq!(stats.iter().map(|s| s.taken_cots).sum::<u64>(), 0);
    }

    #[test]
    fn per_shard_counters_track_refills() {
        let pool = shared(2);
        pool.warm(1);
        let ext = pool.shard_extensions();
        assert_eq!(ext.iter().sum::<usize>(), pool.extensions_run());
        assert!(ext.iter().all(|&e| e == 1));
    }

    #[test]
    fn take_with_encodes_under_the_shard_lock() {
        let pool = shared(2);
        let mut sink: Vec<u8> = Vec::new();
        let n = pool.take_with(300, |slice| {
            slice.verify().unwrap();
            for b in slice.z {
                sink.extend_from_slice(&b.to_le_bytes());
            }
            slice.len()
        });
        assert_eq!(n, 300);
        assert_eq!(sink.len(), 300 * 16);
    }

    #[test]
    fn pipelined_shared_pool_serves_and_merges() {
        let engine = Engine::new(
            FerretConfig::new(FerretParams::toy()),
            Backend::ironman_default(),
        );
        let pool = SharedCotPool::new_pipelined(&engine, 2, 21);
        assert!(pool.merges_remnants());
        let mut reused = CotBatch::default();
        for _ in 0..6 {
            pool.take_into(1500, &mut reused);
            reused.verify().unwrap();
            assert_eq!(reused.len(), 1500);
        }
    }

    #[test]
    fn pipelined_shards_report_session_counters() {
        let engine = Engine::new(
            FerretConfig::new(FerretParams::toy()),
            Backend::ironman_default(),
        );
        let pool = SharedCotPool::new_pipelined(&engine, 1, 31);
        let usable = engine.config().usable_outputs();
        let mut reused = CotBatch::default();
        for _ in 0..6 {
            pool.take_into(usable, &mut reused);
            reused.verify().unwrap();
        }
        let stats = pool.shard_stats();
        assert!(
            stats.iter().map(|s| s.session_extensions).sum::<u64>() >= 6,
            "session extensions must be visible per shard: {stats:?}"
        );
        // Six back-to-back full-extension drains (instant) against a
        // 2-deep staging buffer fed at one ~15ms extension apiece: the
        // drains outrun the session past any scheduling luck, so at
        // least one receive finds the buffer empty.
        let stalls: u64 = stats.iter().map(|s| s.session_stalls).sum();
        assert!(
            stalls >= 1,
            "back-to-back drains must record supply pressure"
        );
        // Inline pools have no session counters.
        let inline = shared(1);
        inline.take(10).verify().unwrap();
        let istats = inline.shard_stats();
        assert_eq!(istats[0].session_extensions, 0);
        assert_eq!(istats[0].session_stalls, 0);
    }

    #[test]
    fn pipelined_concurrent_takes_all_verify() {
        let engine = Engine::new(
            FerretConfig::new(FerretParams::toy()),
            Backend::ironman_default(),
        );
        let pool = Arc::new(SharedCotPool::new_pipelined(&engine, 2, 5));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let pool = Arc::clone(&pool);
                scope.spawn(move || {
                    let mut reused = CotBatch::default();
                    for _ in 0..5 {
                        pool.take_into(400, &mut reused);
                        reused.verify().unwrap();
                    }
                });
            }
        });
        assert!(pool.extensions_run() > 0);
    }
}
