//! # Ironman: near-memory OT extension, end to end
//!
//! `ironman-core` is the public facade of the Ironman reproduction: it
//! couples the *functional* PCG-style OT extension of [`ironman_ot`] with
//! the *timing* backends (the Ironman-NMP simulator of [`ironman_nmp`] and
//! the CPU/GPU analytical baselines of [`ironman_perf`]) and offers the
//! online conversions applications actually consume (COT → random OT →
//! chosen-message OT, Fig. 2 of the paper).
//!
//! # Quickstart
//!
//! ```
//! use ironman_core::{Backend, Engine};
//! use ironman_ot::ferret::FerretConfig;
//! use ironman_ot::params::FerretParams;
//!
//! // A toy parameter set (runs in milliseconds); production sets are
//! // FerretParams::TABLE4.
//! let cfg = FerretConfig::new(FerretParams::toy());
//! let engine = Engine::new(cfg, Backend::ironman_default());
//! let run = engine.run_one(42);
//! run.cots.verify().unwrap();
//! assert!(run.timing.ironman_ms.unwrap() < run.timing.cpu_model_ms);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod pool;
pub mod rot;
pub mod shared_pool;
pub mod speedup;

pub use engine::{Backend, Engine, ExtensionRun, Timing};
pub use pool::{CotBatch, CotPool, CotSlice};
pub use rot::{RotReceiver, RotSender};
pub use shared_pool::{ShardSnapshot, SharedCotPool};
pub use speedup::{speedup_table, SpeedupRow};
