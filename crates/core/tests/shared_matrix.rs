//! Matrix-sharing accounting: N shards (2N party threads) must generate
//! **one** LPN matrix, not 2N.
//!
//! This file deliberately holds a single `#[test]` so it compiles to a
//! test binary with no concurrent tests: [`LpnMatrix::generated_count`]
//! is a process-global counter, and any test generating a matrix in
//! parallel would race the deltas asserted here.

use ironman_core::{Backend, CotPool, Engine, SharedCotPool};
use ironman_lpn::LpnMatrix;
use ironman_ot::ferret::FerretConfig;
use ironman_ot::params::FerretParams;

#[test]
fn n_shards_generate_one_matrix() {
    let engine = Engine::new(
        FerretConfig::new(FerretParams::toy()),
        Backend::ironman_default(),
    );

    // Engine construction is matrix-free (estimation sweeps build many
    // engines and never touch the matrix).
    assert_eq!(LpnMatrix::generated_count(), 0);

    // 3 pipelined shards = 6 party threads + 3 shard pools: one generate.
    let before = LpnMatrix::generated_count();
    let pool = SharedCotPool::new_pipelined(&engine, 3, 11);
    pool.take(64).verify().unwrap();
    assert_eq!(
        LpnMatrix::generated_count() - before,
        1,
        "3 pipelined shards must share one generated matrix"
    );

    // Inline shards bootstrap a fresh session per refill; the prebuilt
    // matrix must survive across refills too.
    let before = LpnMatrix::generated_count();
    let inline = SharedCotPool::new(&engine, 2, 12);
    for _ in 0..3 {
        inline.take(inline.max_request()).verify().unwrap();
    }
    assert_eq!(
        LpnMatrix::generated_count() - before,
        1,
        "inline shards and their refills must share one matrix"
    );

    // A single pipelined pool still generates exactly once for its two
    // party threads (the per-session dedup, without shard pre-sharing).
    let before = LpnMatrix::generated_count();
    let single = CotPool::pipelined(engine.clone(), 13);
    drop(single);
    assert_eq!(LpnMatrix::generated_count() - before, 1);

    // An engine whose config already carries the shared matrix spawns
    // pools with zero fresh generations.
    let before = LpnMatrix::generated_count();
    let mut prepared = engine.clone();
    prepared.prepare_shared_matrix();
    assert_eq!(LpnMatrix::generated_count() - before, 1);
    let pool = SharedCotPool::new_pipelined(&prepared, 2, 14);
    pool.take(64).verify().unwrap();
    assert_eq!(
        LpnMatrix::generated_count() - before,
        1,
        "a prepared engine must add no generations at spawn time"
    );
}
