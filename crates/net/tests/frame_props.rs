//! Property-based tests for the wire codec (proptest).

use ironman_net::frame::{decode_frame, encode_frame, FrameError, FRAME_HEADER_LEN, MAX_FRAME_LEN};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary payloads survive an encode/decode round trip, and the
    /// consumed length is exactly header + payload.
    #[test]
    fn round_trip(payload in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let encoded = encode_frame(&payload);
        let (decoded, consumed) = decode_frame(&encoded).unwrap();
        prop_assert_eq!(decoded, payload);
        prop_assert_eq!(consumed, encoded.len());
    }

    /// Decoding ignores trailing bytes (frames are streamable): the first
    /// frame parses identically with any suffix attached.
    #[test]
    fn trailing_bytes_ignored(
        payload in proptest::collection::vec(any::<u8>(), 0..512),
        suffix in proptest::collection::vec(any::<u8>(), 1..64),
    ) {
        let mut bytes = encode_frame(&payload);
        let frame_len = bytes.len();
        bytes.extend_from_slice(&suffix);
        let (decoded, consumed) = decode_frame(&bytes).unwrap();
        prop_assert_eq!(decoded, payload);
        prop_assert_eq!(consumed, frame_len);
    }

    /// Any strict prefix of a valid frame is rejected as truncated — never
    /// a panic, never a bogus success.
    #[test]
    fn truncation_rejected(
        payload in proptest::collection::vec(any::<u8>(), 1..512),
        cut in 0usize..512,
    ) {
        let mut bytes = encode_frame(&payload);
        let cut = cut % bytes.len();
        bytes.truncate(cut);
        prop_assert!(matches!(decode_frame(&bytes), Err(FrameError::Truncated)));
    }

    /// Hostile length prefixes above the limit are rejected before any
    /// payload allocation, whatever garbage follows.
    #[test]
    fn oversized_rejected(
        over in 1u32..1_000_000,
        garbage in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let len = MAX_FRAME_LEN + over;
        let mut bytes = len.to_le_bytes().to_vec();
        bytes.extend_from_slice(&garbage);
        prop_assert!(matches!(decode_frame(&bytes), Err(FrameError::Oversized { .. })));
    }

    /// A corrupted header that still declares an in-range length either
    /// truncates or decodes to the declared size — decode_frame never
    /// panics on arbitrary input.
    #[test]
    fn arbitrary_input_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        if let Ok((payload, consumed)) = decode_frame(&bytes) {
            prop_assert_eq!(consumed, FRAME_HEADER_LEN + payload.len());
            prop_assert!(consumed <= bytes.len());
        }
    }
}
