//! Property-based round-trips for the COT service protocol (proptest):
//! every `Request`/`Response` message — including the v2 streaming
//! `Subscribe`/`Credit`/`Unsubscribe` and `CotChunk`/`StreamEnd` — must
//! survive encode/decode bit-exactly, and the decoders must never panic
//! on arbitrary input — including input mangled by the seeded fault
//! injector (v8): bit flips, truncating resets, and partial writes
//! driven through `FaultyStream` must surface as typed errors (or a
//! clean round-trip when the corruption missed), never a panic.

use ironman_core::CotBatch;
use ironman_net::frame::{encode_frame, read_frame_into, write_frame};
use ironman_net::proto::{
    self, DirectoryDelta, LatencyStats, MemberRecord, MemberWireState, Request, Response,
    ServiceStats, ShardStat,
};
use ironman_net::{FaultInjector, FaultPlan};
use ironman_prg::Block;
use ironman_telemetry::{EventKind, Histogram, TraceEvent};
use proptest::prelude::*;
use std::io::Cursor;

/// A `LatencyStats` built by recording `words` (split four ways) into
/// real histograms — the only way snapshots are produced in production.
/// Under the telemetry `noop` feature this degenerates to four empty
/// snapshots, which still exercises the wire layout.
fn latency_from(words: &[u64]) -> LatencyStats {
    let fill = |vals: &[u64]| {
        let h = Histogram::new();
        for &v in vals {
            h.record(v);
        }
        h.snapshot()
    };
    let q = words.len() / 4;
    LatencyStats {
        request_first_byte: fill(&words[..q]),
        chunk_push: fill(&words[q..2 * q]),
        extension: fill(&words[2 * q..3 * q]),
        stall: fill(&words[3 * q..4 * q]),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every request variant round-trips, whatever its field values.
    #[test]
    fn requests_round_trip(
        variant in 0usize..11,
        a in any::<u64>(),
        b in any::<u64>(),
        name in proptest::collection::vec(any::<u8>(), 0..32),
        vector_seeds in proptest::collection::vec(any::<u64>(), 0..6),
    ) {
        // The vendored proptest has no tuple strategies; derive the
        // (origin, version) pairs from one seed vector instead.
        let vector: Vec<(u64, u64)> = vector_seeds
            .iter()
            .map(|&s| (s, s.rotate_left(31) ^ 0x9E37_79B9))
            .collect();
        let req = match variant {
            0 => Request::Hello {
                name: String::from_utf8_lossy(&name).into_owned(),
                epoch: b,
            },
            1 => Request::RequestCot { n: a },
            2 => Request::Stats,
            3 => Request::Shutdown,
            4 => Request::Subscribe { batch: a, credits: b },
            5 => Request::Credit { n: a },
            6 => Request::Sync { epoch: a },
            7 => Request::Warm { watermark: a, max_refills: b },
            8 => Request::Trace { max_events: a },
            9 => Request::Gossip { from: a, vector },
            _ => Request::Unsubscribe,
        };
        prop_assert_eq!(Request::decode(&req.encode()).unwrap(), req);
    }

    /// Batch-carrying responses (`Cots` and the streaming `CotChunk`)
    /// round-trip for arbitrary batch contents and sizes.
    #[test]
    fn cot_responses_round_trip(
        chunked in any::<bool>(),
        seq in any::<u64>(),
        delta in any::<u128>(),
        n in 0usize..40,
        z in proptest::collection::vec(any::<u128>(), 40..41),
        y in proptest::collection::vec(any::<u128>(), 40..41),
        x in proptest::collection::vec(any::<bool>(), 40..41),
    ) {
        let batch = CotBatch {
            delta: Block::from(delta),
            z: z[..n].iter().copied().map(Block::from).collect(),
            x: x[..n].to_vec(),
            y: y[..n].iter().copied().map(Block::from).collect(),
        };
        let resp = if chunked {
            Response::CotChunk { seq, batch }
        } else {
            Response::Cots(batch)
        };
        prop_assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
    }

    /// The per-shard stats reply round-trips for any shard count
    /// (including zero shards) with arbitrary latency histograms (v6).
    #[test]
    fn stats_round_trip(
        fixed in proptest::collection::vec(any::<u64>(), 15..16),
        shard_words in proptest::collection::vec(any::<u64>(), 0..33),
        lat_words in proptest::collection::vec(any::<u64>(), 0..48),
    ) {
        let shard_stats: Vec<ShardStat> = shard_words
            .chunks_exact(6)
            .enumerate()
            .map(|(i, c)| ShardStat {
                available: c[0],
                extensions_run: c[1],
                taken: c[2],
                warm_refills: c[3],
                session_extensions: c[4],
                session_stalls: c[5],
                latency: latency_from(&lat_words[..lat_words.len() - (i % (lat_words.len().max(1)))]),
            })
            .collect();
        let resp = Response::Stats(Box::new(ServiceStats {
            clients_served: fixed[0],
            cots_served: fixed[1],
            extensions_run: fixed[2],
            available: fixed[3],
            shards: fixed[4],
            warmup_refills: fixed[5],
            scratch_reuses: fixed[6],
            scratch_allocs: fixed[7],
            register_failures: fixed[8],
            directory_epoch: fixed[9],
            pending_stream_cots: fixed[10],
            uptime_nanos: fixed[11],
            subscribers_evicted: fixed[12],
            unavailable_sent: fixed[13],
            faults_injected: fixed[14],
            latency: latency_from(&lat_words),
            shard_stats,
        }));
        prop_assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
    }

    /// Trace dumps round-trip for arbitrary event sequences covering
    /// every event kind (v6).
    #[test]
    fn trace_dumps_round_trip(seeds in proptest::collection::vec(any::<u64>(), 0..64)) {
        let events: Vec<TraceEvent> = seeds
            .iter()
            .map(|&s| TraceEvent {
                at_nanos: s,
                kind: EventKind::ALL[(s % EventKind::ALL.len() as u64) as usize],
                arg: s.rotate_left(17),
            })
            .collect();
        let resp = Response::TraceDump(events);
        prop_assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
    }

    /// The remaining fixed-shape responses round-trip.
    #[test]
    fn control_responses_round_trip(
        variant in 0usize..6,
        a in any::<u64>(),
        b in any::<u64>(),
        msg in proptest::collection::vec(any::<u8>(), 0..48),
    ) {
        let resp = match variant {
            0 => Response::Welcome {
                version: a as u16,
                max_request: b,
                epoch: a ^ b,
            },
            1 => Response::Goodbye,
            2 => Response::StreamEnd { chunks: a, cots: b },
            3 => Response::WrongEpoch { epoch: a },
            4 => Response::Warmed { refills: a },
            _ => Response::Error(String::from_utf8_lossy(&msg).into_owned()),
        };
        prop_assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
    }

    /// Membership deltas round-trip for arbitrary member sets, states,
    /// stamps, weights, epoch vectors, and (possibly non-UTF-8 /
    /// non-address) payload strings — through both the v4
    /// `DirectoryUpdate` and the v9 `GossipDelta` carriers.
    #[test]
    fn directory_updates_round_trip(
        epoch in any::<u64>(),
        full in any::<bool>(),
        gossip in any::<bool>(),
        seeds in proptest::collection::vec(any::<u64>(), 0..6),
        vector_seeds in proptest::collection::vec(any::<u64>(), 0..6),
        raw in proptest::collection::vec(any::<u8>(), 0..24),
    ) {
        let vector: Vec<(u64, u64)> = vector_seeds
            .iter()
            .map(|&s| (s, s.rotate_left(31) ^ 0x9E37_79B9))
            .collect();
        let members: Vec<MemberRecord> = seeds
            .iter()
            .enumerate()
            .map(|(i, &seed)| MemberRecord {
                id: seed,
                state: match seed % 4 {
                    0 => MemberWireState::Up,
                    1 => MemberWireState::Draining,
                    2 => MemberWireState::Suspect,
                    _ => MemberWireState::Left,
                },
                weight: seed as u32,
                origin: seed.rotate_left(7),
                version: seed.rotate_right(13),
                addr: format!("10.0.0.{i}:{}", 7000 + (seed % 1000)),
                name: String::from_utf8_lossy(&raw).into_owned(),
            })
            .collect();
        let delta = DirectoryDelta { epoch, full, vector, members };
        let resp = if gossip {
            Response::GossipDelta(delta)
        } else {
            Response::DirectoryUpdate(delta)
        };
        prop_assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
    }

    /// Arbitrary bytes never panic either decoder — they parse or they
    /// error, and hostile counts must not allocate past the payload.
    #[test]
    fn arbitrary_input_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Request::decode(&bytes);
        let _ = Response::decode(&bytes);
    }

    /// The zero-copy batch encoder is byte-identical to the original
    /// element-wise layout (reference re-implemented here) for arbitrary
    /// batches, and its output decodes back through the buffer-reusing
    /// hot path — with the scratch and batch buffers dirty from a
    /// previous, differently-sized message.
    #[test]
    fn bulk_batch_encoder_matches_reference_and_round_trips(
        chunked in any::<bool>(),
        seq in any::<u64>(),
        delta in any::<u128>(),
        n in 0usize..48,
        z in proptest::collection::vec(any::<u128>(), 48..49),
        y in proptest::collection::vec(any::<u128>(), 48..49),
        x in proptest::collection::vec(any::<bool>(), 48..49),
        prior in 0usize..48,
    ) {
        let batch = CotBatch {
            delta: Block::from(delta),
            z: z[..n].iter().copied().map(Block::from).collect(),
            x: x[..n].to_vec(),
            y: y[..n].iter().copied().map(Block::from).collect(),
        };
        // Reference: the pre-zero-copy element-wise encoder.
        let mut reference = Vec::new();
        if chunked {
            reference.push(0x85); // OP_COT_CHUNK
            reference.extend_from_slice(&seq.to_le_bytes());
        } else {
            reference.push(0x82); // OP_COTS
        }
        reference.extend_from_slice(&batch.delta.to_le_bytes());
        reference.extend_from_slice(&(batch.len() as u64).to_le_bytes());
        for b in &batch.z {
            reference.extend_from_slice(&b.to_le_bytes());
        }
        for b in &batch.y {
            reference.extend_from_slice(&b.to_le_bytes());
        }
        reference.extend_from_slice(&ironman_ot::channel::encode_bits(&batch.x));

        // Reuse shape: the scratch buffer arrives already sized by a
        // previous, differently-sized encode (the per-session retained
        // buffer's steady state) and the new encoding must come out
        // byte-identical to a fresh one.
        let mut scratch = Vec::new();
        proto::encode_cots_into(&mut scratch, batch.as_slice()); // prior use
        scratch.clear();
        if chunked {
            proto::encode_cot_chunk_into(&mut scratch, seq, batch.as_slice());
        } else {
            proto::encode_cots_into(&mut scratch, batch.as_slice());
        }
        prop_assert_eq!(&scratch, &reference);

        // Decode back through the buffer-reusing path, into a batch that
        // already holds a previous (differently sized) payload.
        let mut reused = CotBatch {
            delta: Block::from(1u128),
            z: vec![Block::from(2u128); prior],
            x: vec![true; prior],
            y: vec![Block::from(3u128); prior],
        };
        match proto::decode_response_into(&scratch, &mut reused).unwrap() {
            proto::HotResponse::Cots => prop_assert!(!chunked),
            proto::HotResponse::CotChunk { seq: got } => {
                prop_assert!(chunked);
                prop_assert_eq!(got, seq);
            }
            other => prop_assert!(false, "unexpected {other:?}"),
        }
        prop_assert_eq!(reused, batch);
    }

    /// A disarmed `FaultyStream` is transparent: framed messages written
    /// through the wrapper (even under a partial-write cap, which
    /// `write_all` must absorb) read back bit-exact and decode to the
    /// original message.
    #[test]
    fn fault_wrapper_disarmed_and_partial_writes_stay_bit_exact(
        seed in any::<u64>(),
        cap in 1usize..7,
        n in 1u64..1_000_000,
        name in proptest::collection::vec(any::<u8>(), 0..24),
    ) {
        let req = Request::Hello {
            name: String::from_utf8_lossy(&name).into_owned(),
            epoch: n,
        };
        let injector = FaultInjector::new(seed);
        injector.set_plan(FaultPlan {
            partial_write_cap: Some(cap),
            ..FaultPlan::default()
        });
        let mut writer = injector.wrap(Vec::new());
        write_frame(&mut writer, &req.encode()).unwrap();
        write_frame(&mut writer, &Request::RequestCot { n }.encode()).unwrap();
        let written = writer.get_ref().clone();

        // Reads back through a *disarmed* wrapper: the fast path must
        // not perturb a single byte.
        injector.clear();
        let mut reader = injector.wrap(Cursor::new(written));
        let mut buf = Vec::new();
        read_frame_into(&mut reader, &mut buf).unwrap();
        prop_assert_eq!(Request::decode(&buf).unwrap(), req);
        read_frame_into(&mut reader, &mut buf).unwrap();
        prop_assert_eq!(Request::decode(&buf).unwrap(), Request::RequestCot { n });
    }

    /// Bit-flipped frames never panic the codec: reading a framed
    /// message through a `FaultyStream` that flips one bit per read
    /// either fails typed at the frame layer (a mangled length header)
    /// or hands the protocol decoder a corrupt payload it must survive.
    #[test]
    fn bit_flipped_frames_fail_typed_never_panic(
        seed in any::<u64>(),
        variant in 0usize..4,
        a in any::<u64>(),
        b in any::<u64>(),
    ) {
        let resp = match variant {
            0 => Response::Welcome { version: a as u16, max_request: b, epoch: a ^ b },
            1 => Response::StreamEnd { chunks: a, cots: b },
            2 => Response::WrongEpoch { epoch: a },
            _ => Response::Unavailable { retry_after_ms: a },
        };
        let framed = encode_frame(&resp.encode());
        let injector = FaultInjector::new(seed);
        injector.set_plan(FaultPlan {
            flip_probability: 1.0,
            ..FaultPlan::default()
        });
        let mut reader = injector.wrap(Cursor::new(framed));
        let mut buf = Vec::new();
        match read_frame_into(&mut reader, &mut buf) {
            // Flips landed in the payload (or cancelled out): the typed
            // decoder must parse or error, never panic or hang.
            Ok(()) => { let _ = Response::decode(&buf); }
            // A flipped length header surfaces at the frame layer as a
            // typed error (oversized claim or short read), not a panic
            // and not an unbounded allocation.
            Err(e) => { let _ = format!("{e}"); }
        }
        prop_assert!(injector.injected() > 0, "flip plan never fired");
    }

    /// A connection reset mid-frame (the fault injector's truncating
    /// reset) surfaces as a typed frame error — a short read never
    /// yields a partially-filled "successful" frame. The byte budget is
    /// enforced per I/O call, so the cut is placed within the header
    /// read: the payload read then finds the budget spent and resets.
    #[test]
    fn reset_mid_frame_is_a_typed_error(
        seed in any::<u64>(),
        cut in 1u64..5,
        n in 0u64..u32::MAX as u64,
    ) {
        let framed = encode_frame(&Request::RequestCot { n }.encode());
        let injector = FaultInjector::new(seed);
        injector.set_plan(FaultPlan {
            reset_after_bytes: Some(cut),
            ..FaultPlan::default()
        });
        let mut reader = injector.wrap(Cursor::new(framed));
        let mut buf = Vec::new();
        prop_assert!(
            read_frame_into(&mut reader, &mut buf).is_err(),
            "a frame cut at byte {} must not read back whole",
            cut
        );
    }
}
