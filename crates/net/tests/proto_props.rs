//! Property-based round-trips for the COT service protocol (proptest):
//! every `Request`/`Response` message — including the v2 streaming
//! `Subscribe`/`Credit`/`Unsubscribe` and `CotChunk`/`StreamEnd` — must
//! survive encode/decode bit-exactly, and the decoders must never panic
//! on arbitrary input.

use ironman_core::CotBatch;
use ironman_net::proto::{Request, Response, ServiceStats, ShardStat};
use ironman_prg::Block;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every request variant round-trips, whatever its field values.
    #[test]
    fn requests_round_trip(
        variant in 0usize..7,
        a in any::<u64>(),
        b in any::<u64>(),
        name in proptest::collection::vec(any::<u8>(), 0..32),
    ) {
        let req = match variant {
            0 => Request::Hello {
                name: String::from_utf8_lossy(&name).into_owned(),
            },
            1 => Request::RequestCot { n: a },
            2 => Request::Stats,
            3 => Request::Shutdown,
            4 => Request::Subscribe { batch: a, credits: b },
            5 => Request::Credit { n: a },
            _ => Request::Unsubscribe,
        };
        prop_assert_eq!(Request::decode(&req.encode()).unwrap(), req);
    }

    /// Batch-carrying responses (`Cots` and the streaming `CotChunk`)
    /// round-trip for arbitrary batch contents and sizes.
    #[test]
    fn cot_responses_round_trip(
        chunked in any::<bool>(),
        seq in any::<u64>(),
        delta in any::<u128>(),
        n in 0usize..40,
        z in proptest::collection::vec(any::<u128>(), 40..41),
        y in proptest::collection::vec(any::<u128>(), 40..41),
        x in proptest::collection::vec(any::<bool>(), 40..41),
    ) {
        let batch = CotBatch {
            delta: Block::from(delta),
            z: z[..n].iter().copied().map(Block::from).collect(),
            x: x[..n].to_vec(),
            y: y[..n].iter().copied().map(Block::from).collect(),
        };
        let resp = if chunked {
            Response::CotChunk { seq, batch }
        } else {
            Response::Cots(batch)
        };
        prop_assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
    }

    /// The per-shard stats reply round-trips for any shard count,
    /// including zero shards.
    #[test]
    fn stats_round_trip(
        fixed in proptest::collection::vec(any::<u64>(), 6..7),
        shard_words in proptest::collection::vec(any::<u64>(), 0..17),
    ) {
        let shard_stats: Vec<ShardStat> = shard_words
            .chunks_exact(2)
            .map(|c| ShardStat { available: c[0], extensions_run: c[1] })
            .collect();
        let resp = Response::Stats(ServiceStats {
            clients_served: fixed[0],
            cots_served: fixed[1],
            extensions_run: fixed[2],
            available: fixed[3],
            shards: fixed[4],
            warmup_refills: fixed[5],
            shard_stats,
        });
        prop_assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
    }

    /// The remaining fixed-shape responses round-trip.
    #[test]
    fn control_responses_round_trip(
        variant in 0usize..4,
        a in any::<u64>(),
        b in any::<u64>(),
        msg in proptest::collection::vec(any::<u8>(), 0..48),
    ) {
        let resp = match variant {
            0 => Response::Welcome {
                version: a as u16,
                max_request: b,
            },
            1 => Response::Goodbye,
            2 => Response::StreamEnd { chunks: a, cots: b },
            _ => Response::Error(String::from_utf8_lossy(&msg).into_owned()),
        };
        prop_assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
    }

    /// Arbitrary bytes never panic either decoder — they parse or they
    /// error, and hostile counts must not allocate past the payload.
    #[test]
    fn arbitrary_input_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Request::decode(&bytes);
        let _ = Response::decode(&bytes);
    }
}
