//! Socket-backed [`Transport`] implementations.
//!
//! [`StreamTransport`] wraps any split `Read`/`Write` pair in
//! `BufReader`/`BufWriter` with **write coalescing**: sends only fill the
//! write buffer, and the buffer is flushed lazily — on the first receive
//! after a send (a direction switch, which is also when the round counter
//! ticks) or explicitly. A protocol that sends ten messages before
//! listening therefore pays one syscall, not ten, matching how production
//! OT libraries batch their socket writes.
//!
//! Accounting: [`ChannelStats`] counts *payload* bytes — identical
//! semantics to `LocalChannel`, so a protocol run over TCP reports the
//! same `bytes_sent` as the same run in-process. The extra wire bytes
//! (4-byte frame headers and the 6-byte handshake) are tracked separately
//! via [`StreamTransport::wire_bytes_sent`].

use crate::frame::{self, FrameError, FRAME_HEADER_LEN, HANDSHAKE_LEN};
use ironman_ot::channel::{ChannelError, ChannelStats, Transport};
use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::UnixStream;

/// A framed, buffered transport over a split byte stream.
#[derive(Debug)]
pub struct StreamTransport<R: Read, W: Write> {
    reader: BufReader<R>,
    writer: BufWriter<W>,
    stats: ChannelStats,
    sent_since_recv: bool,
    pending_flush: bool,
    wire_sent: u64,
    wire_received: u64,
}

impl<R: Read, W: Write> StreamTransport<R, W> {
    /// Wraps a pre-connected reader/writer pair and runs the
    /// magic/version handshake.
    ///
    /// # Errors
    ///
    /// Fails when the peer is not speaking the Ironman wire protocol (bad
    /// magic / version) or on stream errors.
    pub fn from_split(reader: R, writer: W) -> Result<Self, FrameError> {
        let mut t = StreamTransport {
            reader: BufReader::new(reader),
            writer: BufWriter::new(writer),
            stats: ChannelStats::default(),
            sent_since_recv: false,
            pending_flush: false,
            wire_sent: 0,
            wire_received: 0,
        };
        t.run_handshake()?;
        Ok(t)
    }

    fn run_handshake(&mut self) -> Result<(), FrameError> {
        // The symmetric handshake, inlined over the split halves: write
        // ours, flush, then validate theirs.
        struct Duplex<'a, R: Read, W: Write>(&'a mut BufReader<R>, &'a mut BufWriter<W>);
        impl<R: Read, W: Write> Read for Duplex<'_, R, W> {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                self.0.read(buf)
            }
        }
        impl<R: Read, W: Write> Write for Duplex<'_, R, W> {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.1.write(buf)
            }
            fn flush(&mut self) -> std::io::Result<()> {
                self.1.flush()
            }
        }
        frame::handshake(&mut Duplex(&mut self.reader, &mut self.writer))?;
        self.wire_sent += HANDSHAKE_LEN as u64;
        self.wire_received += HANDSHAKE_LEN as u64;
        Ok(())
    }

    /// Forces any coalesced writes onto the wire.
    ///
    /// # Errors
    ///
    /// Propagates stream errors.
    pub fn flush(&mut self) -> Result<(), ChannelError> {
        if self.pending_flush {
            self.writer.flush()?;
            self.pending_flush = false;
        }
        Ok(())
    }

    /// Sends one pre-built frame (header + payload, as produced by
    /// [`frame::begin_frame`]/[`frame::finish_frame`]) with a single
    /// `write_all` and **no intermediate allocation** — the zero-copy
    /// counterpart of [`Transport::send_bytes`]. Accounting is identical:
    /// the payload bytes count toward [`ChannelStats`], the header toward
    /// the wire totals. Like `send_bytes`, the write is coalesced (frames
    /// at least as large as the internal buffer go straight to the
    /// socket); call [`StreamTransport::flush`] to force it out.
    ///
    /// # Errors
    ///
    /// [`ChannelError::Malformed`] when `framed` is shorter than a frame
    /// header (it was not built with `begin_frame`/`finish_frame`);
    /// propagates stream errors otherwise.
    ///
    /// # Panics
    ///
    /// Debug-asserts that the header's declared length matches the
    /// payload actually present.
    pub fn send_frame(&mut self, framed: &[u8]) -> Result<(), ChannelError> {
        let payload_len =
            framed
                .len()
                .checked_sub(FRAME_HEADER_LEN)
                .ok_or(ChannelError::Malformed {
                    expected: FRAME_HEADER_LEN,
                    actual: framed.len(),
                })?;
        debug_assert_eq!(
            u32::from_le_bytes(
                framed[..FRAME_HEADER_LEN]
                    .try_into()
                    .expect("4-byte header")
            ),
            payload_len as u32,
            "frame not finished with finish_frame"
        );
        self.writer.write_all(framed)?;
        self.stats.bytes_sent += payload_len as u64;
        self.stats.messages_sent += 1;
        self.wire_sent += framed.len() as u64;
        self.sent_since_recv = true;
        self.pending_flush = true;
        Ok(())
    }

    /// Sends one frame whose bytes live in several non-contiguous slices
    /// — `parts[0]` starts with the patched header (see
    /// [`frame::finish_frame_with_tail`]), the remaining parts are
    /// payload continuation (e.g. COT blocks borrowed straight from a
    /// pool's ring) — using **one `write_vectored` pass** instead of
    /// concatenating into a scratch buffer first. This deletes the last
    /// ring→scratch copy on the serving path: the kernel (or the
    /// `BufWriter`, for frames smaller than its buffer) gathers the
    /// slices itself.
    ///
    /// Accounting matches [`StreamTransport::send_frame`]: payload bytes
    /// (total minus header) count toward [`ChannelStats`], the full frame
    /// toward the wire totals, and the write is coalesced until the next
    /// direction switch or [`StreamTransport::flush`].
    ///
    /// # Errors
    ///
    /// [`ChannelError::Malformed`] when `parts[0]` is shorter than a
    /// frame header; propagates stream errors otherwise.
    ///
    /// # Panics
    ///
    /// Debug-asserts that the header's declared length matches the total
    /// payload actually present across all parts.
    pub fn send_frame_parts(&mut self, parts: &[&[u8]]) -> Result<(), ChannelError> {
        let head = parts.first().copied().unwrap_or(&[]);
        if head.len() < FRAME_HEADER_LEN {
            return Err(ChannelError::Malformed {
                expected: FRAME_HEADER_LEN,
                actual: head.len(),
            });
        }
        let total: usize = parts.iter().map(|p| p.len()).sum();
        let payload_len = total - FRAME_HEADER_LEN;
        debug_assert_eq!(
            u32::from_le_bytes(head[..FRAME_HEADER_LEN].try_into().expect("4-byte header")),
            payload_len as u32,
            "frame not finished with finish_frame_with_tail"
        );
        let mut slices: Vec<std::io::IoSlice<'_>> = parts
            .iter()
            .filter(|p| !p.is_empty())
            .map(|p| std::io::IoSlice::new(p))
            .collect();
        let mut slices = slices.as_mut_slice();
        while !slices.is_empty() {
            match self.writer.write_vectored(slices) {
                Ok(0) => {
                    return Err(ChannelError::from(std::io::Error::new(
                        std::io::ErrorKind::WriteZero,
                        "vectored frame write made no progress",
                    )))
                }
                Ok(n) => std::io::IoSlice::advance_slices(&mut slices, n),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(ChannelError::from(e)),
            }
        }
        self.stats.bytes_sent += payload_len as u64;
        self.stats.messages_sent += 1;
        self.wire_sent += total as u64;
        self.sent_since_recv = true;
        self.pending_flush = true;
        Ok(())
    }

    /// Receives one frame's payload into a caller-retained buffer,
    /// reusing its allocation — the zero-copy counterpart of
    /// [`Transport::recv_bytes`] (same flush-on-direction-switch and
    /// accounting semantics).
    ///
    /// # Errors
    ///
    /// Propagates stream errors.
    pub fn recv_bytes_into(&mut self, buf: &mut Vec<u8>) -> Result<(), ChannelError> {
        self.flush()?;
        frame::read_frame_into(&mut self.reader, buf).map_err(ChannelError::from)?;
        self.stats.bytes_received += buf.len() as u64;
        self.wire_received += (FRAME_HEADER_LEN + buf.len()) as u64;
        if self.sent_since_recv {
            self.stats.rounds += 1;
            self.sent_since_recv = false;
        }
        Ok(())
    }

    /// Bytes actually written to the wire (payload + frame headers +
    /// handshake).
    pub fn wire_bytes_sent(&self) -> u64 {
        self.wire_sent
    }

    /// Bytes actually read off the wire (payload + frame headers +
    /// handshake).
    pub fn wire_bytes_received(&self) -> u64 {
        self.wire_received
    }
}

impl<R: Read, W: Write> Transport for StreamTransport<R, W> {
    fn send_bytes(&mut self, bytes: Vec<u8>) -> Result<(), ChannelError> {
        frame::write_frame(&mut self.writer, &bytes).map_err(ChannelError::from)?;
        self.stats.bytes_sent += bytes.len() as u64;
        self.stats.messages_sent += 1;
        self.wire_sent += (FRAME_HEADER_LEN + bytes.len()) as u64;
        self.sent_since_recv = true;
        self.pending_flush = true;
        Ok(())
    }

    fn recv_bytes(&mut self) -> Result<Vec<u8>, ChannelError> {
        // Direction switch: everything coalesced so far must hit the wire
        // before we block on the peer (who may be waiting on it).
        self.flush()?;
        let payload = frame::read_frame(&mut self.reader).map_err(ChannelError::from)?;
        self.stats.bytes_received += payload.len() as u64;
        self.wire_received += (FRAME_HEADER_LEN + payload.len()) as u64;
        if self.sent_since_recv {
            self.stats.rounds += 1;
            self.sent_since_recv = false;
        }
        Ok(payload)
    }

    fn stats(&self) -> ChannelStats {
        self.stats
    }
}

/// [`StreamTransport`] over a TCP socket.
pub type TcpTransport = StreamTransport<TcpStream, TcpStream>;

impl TcpTransport {
    /// Wraps an accepted/connected socket (enables `TCP_NODELAY`; the
    /// transport does its own coalescing) and handshakes.
    ///
    /// # Errors
    ///
    /// Propagates socket and handshake failures.
    pub fn from_stream(stream: TcpStream) -> Result<Self, FrameError> {
        stream.set_nodelay(true).map_err(FrameError::Io)?;
        let reader = stream.try_clone().map_err(FrameError::Io)?;
        StreamTransport::from_split(reader, stream)
    }

    /// Connects to a listening peer and handshakes.
    ///
    /// # Errors
    ///
    /// Propagates connection and handshake failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self, FrameError> {
        Self::from_stream(TcpStream::connect(addr).map_err(FrameError::Io)?)
    }

    /// Accepts one connection from `listener` and handshakes.
    ///
    /// # Errors
    ///
    /// Propagates accept and handshake failures.
    pub fn accept(listener: &TcpListener) -> Result<Self, FrameError> {
        let (stream, _) = listener.accept().map_err(FrameError::Io)?;
        Self::from_stream(stream)
    }
}

/// [`StreamTransport`] over a unix domain socket.
#[cfg(unix)]
pub type UnixTransport = StreamTransport<UnixStream, UnixStream>;

#[cfg(unix)]
impl UnixTransport {
    /// Wraps a connected unix socket and handshakes.
    ///
    /// # Errors
    ///
    /// Propagates socket and handshake failures.
    pub fn from_stream(stream: UnixStream) -> Result<Self, FrameError> {
        let reader = stream.try_clone().map_err(FrameError::Io)?;
        StreamTransport::from_split(reader, stream)
    }

    /// Creates a connected, handshaked transport pair over an anonymous
    /// unix socketpair.
    ///
    /// # Errors
    ///
    /// Propagates socket and handshake failures.
    pub fn pair() -> Result<(Self, Self), FrameError> {
        let (a, b) = UnixStream::pair().map_err(FrameError::Io)?;
        // Each handshake writes, then blocks reading the peer's hello, so
        // the two ends must run concurrently.
        let b_thread = std::thread::spawn(move || Self::from_stream(b));
        let ta = Self::from_stream(a)?;
        let tb = b_thread.join().expect("handshake thread panicked")?;
        Ok((ta, tb))
    }
}

/// Creates a connected, handshaked TCP transport pair over a loopback
/// listener (for tests and benchmarks).
///
/// # Errors
///
/// Propagates socket and handshake failures.
pub fn tcp_loopback_pair() -> Result<(TcpTransport, TcpTransport), FrameError> {
    let listener = TcpListener::bind("127.0.0.1:0").map_err(FrameError::Io)?;
    let addr = listener.local_addr().map_err(FrameError::Io)?;
    // Connect-side handshake bytes sit in kernel buffers until the accept
    // side drains them, so a single thread can set up both ends.
    let connect_thread = std::thread::spawn(move || TcpTransport::connect(addr));
    let accepted = TcpTransport::accept(&listener)?;
    let connected = connect_thread.join().expect("connect thread panicked")?;
    Ok((accepted, connected))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ironman_prg::Block;

    #[test]
    fn tcp_round_trip_and_accounting() {
        let (mut a, mut b) = tcp_loopback_pair().unwrap();
        a.send_block(Block::from(0xfeedu128)).unwrap();
        a.flush().unwrap();
        assert_eq!(b.recv_block().unwrap(), Block::from(0xfeedu128));
        // Payload accounting matches LocalChannel semantics...
        assert_eq!(a.stats().bytes_sent, 16);
        assert_eq!(b.stats().bytes_received, 16);
        // ...while wire accounting includes header + handshake.
        assert_eq!(
            a.wire_bytes_sent(),
            16 + FRAME_HEADER_LEN as u64 + HANDSHAKE_LEN as u64
        );
    }

    #[test]
    fn tcp_coalesced_sends_arrive_in_order() {
        let (mut a, mut b) = tcp_loopback_pair().unwrap();
        for i in 0..100u128 {
            a.send_block(Block::from(i)).unwrap();
        }
        a.flush().unwrap();
        for i in 0..100u128 {
            assert_eq!(b.recv_block().unwrap(), Block::from(i));
        }
    }

    #[test]
    fn tcp_disconnect_detected() {
        let (mut a, b) = tcp_loopback_pair().unwrap();
        drop(b);
        assert!(matches!(a.recv_bytes(), Err(ChannelError::Disconnected)));
    }

    #[test]
    fn tcp_round_counting_matches_local_semantics() {
        let (mut a, mut b) = tcp_loopback_pair().unwrap();
        a.send_bit(true).unwrap();
        a.send_bit(false).unwrap();
        let t = std::thread::spawn(move || {
            b.recv_bit().unwrap();
            b.recv_bit().unwrap();
            b.send_bit(true).unwrap();
            b.flush().unwrap();
            b.stats()
        });
        a.recv_bit().unwrap();
        assert_eq!(a.stats().rounds, 1);
        // b never received after sending, so its direction-switch counter
        // stays at zero — the same as LocalChannel's round_counting test.
        let b_stats = t.join().unwrap();
        assert_eq!(b_stats.rounds, 0);
    }

    #[cfg(unix)]
    #[test]
    fn unix_round_trip() {
        let (mut a, mut b) = UnixTransport::pair().unwrap();
        let blocks = vec![Block::from(1u128), Block::from(2u128)];
        a.send_blocks(&blocks).unwrap();
        a.flush().unwrap();
        assert_eq!(b.recv_blocks().unwrap(), blocks);
    }

    #[test]
    fn vectored_send_matches_contiguous_send() {
        let (mut a, mut b) = tcp_loopback_pair().unwrap();
        let payload: Vec<u8> = (0..=255u8).collect();

        // Contiguous reference frame.
        let mut whole = Vec::new();
        frame::begin_frame(&mut whole);
        whole.extend_from_slice(&payload);
        frame::finish_frame(&mut whole).unwrap();
        a.send_frame(&whole).unwrap();
        let (payload_sent, wire_sent) = (a.stats().bytes_sent, a.wire_bytes_sent());

        // The same payload scattered across head + two tail slices
        // (with an empty part, which the writer must skip).
        let mut head = Vec::new();
        frame::begin_frame(&mut head);
        head.extend_from_slice(&payload[..100]);
        frame::finish_frame_with_tail(&mut head, payload.len() - 100).unwrap();
        a.send_frame_parts(&[&head, &payload[100..200], &[], &payload[200..]])
            .unwrap();
        a.flush().unwrap();

        // Identical accounting per frame on both paths.
        assert_eq!(a.stats().bytes_sent, 2 * payload_sent);
        assert_eq!(
            a.wire_bytes_sent() - wire_sent,
            wire_sent - HANDSHAKE_LEN as u64
        );
        assert_eq!(a.stats().messages_sent, 2);

        // Identical bytes on the receiving end.
        let mut first = Vec::new();
        b.recv_bytes_into(&mut first).unwrap();
        let mut second = Vec::new();
        b.recv_bytes_into(&mut second).unwrap();
        assert_eq!(first, payload);
        assert_eq!(second, payload);
    }

    #[test]
    fn vectored_send_rejects_short_head() {
        let (mut a, _b) = tcp_loopback_pair().unwrap();
        // A head that cannot even hold the length prefix was not started
        // with begin_frame — refuse before touching the socket.
        assert!(matches!(
            a.send_frame_parts(&[&[0u8; 2]]),
            Err(ChannelError::Malformed { .. })
        ));
        assert!(matches!(
            a.send_frame_parts(&[]),
            Err(ChannelError::Malformed { .. })
        ));
    }

    #[test]
    fn bits_serialize_identically_to_local_channel() {
        use ironman_ot::channel::LocalChannel;
        let bits = vec![true, false, true, true, false, true, false, false, true];
        let (mut la, mut lb) = LocalChannel::pair();
        la.send_bits(&bits).unwrap();
        let (mut ta, mut tb) = tcp_loopback_pair().unwrap();
        ta.send_bits(&bits).unwrap();
        ta.flush().unwrap();
        assert_eq!(lb.recv_bits().unwrap(), tb.recv_bits().unwrap());
        // Same payload byte count on both paths: shared encode_bits framing.
        assert_eq!(la.stats().bytes_sent, ta.stats().bytes_sent);
    }
}
