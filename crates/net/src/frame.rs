//! Length-prefixed, versioned wire framing.
//!
//! Every message on a socket transport is one *frame*:
//!
//! ```text
//! +----------------+=====================+
//! | len: u32 LE    | payload (len bytes) |
//! +----------------+=====================+
//! ```
//!
//! and every connection opens with a symmetric 6-byte *handshake* before
//! the first frame (each side writes, then reads and validates):
//!
//! ```text
//! +-------------------+----------------+
//! | magic "IRNM" (4B) | version u32→u16 LE |
//! +-------------------+----------------+
//! ```
//!
//! Versioning rule: the version is bumped whenever the frame layout or the
//! `proto` opcodes change incompatibly; peers with different versions
//! refuse the connection at handshake time rather than misparse frames.
//! Malformed-input hardening: frames longer than [`MAX_FRAME_LEN`] are
//! rejected before any allocation, truncated streams surface as
//! [`FrameError::Truncated`], and a bad magic aborts the handshake — none
//! of these panic.

use ironman_ot::channel::ChannelError;
use std::fmt;
use std::io::{self, Read, Write};

/// Connection magic: identifies the Ironman wire protocol.
pub const MAGIC: [u8; 4] = *b"IRNM";

/// Current wire-format version.
///
/// History: **1** — initial one-shot protocol (`Hello`/`RequestCot`/
/// `Stats`/`Shutdown`); **2** — streaming subscriptions with credit-based
/// backpressure (`Subscribe`/`Credit`/`Unsubscribe`, `CotChunk`/
/// `StreamEnd`) and the per-shard `Stats` reply layout; **3** — the
/// `Stats` reply grew the hot-path observability counters
/// (scratch-buffer reuse/allocation and session-registration failures);
/// **4** — dynamic cluster membership: `Hello` carries the client's
/// directory epoch, `Sync`/`DirectoryUpdate` exchange membership deltas,
/// stale-epoch requests are fenced with `WrongEpoch`, `Warm`/`Warmed`
/// expose budgeted refill steering, and the `Stats` reply carries the
/// directory epoch, pending streamed demand, and per-shard demand/refill
/// counters; **5** — per-shard `Stats` entries grew the raw-supply
/// pressure counters (pipelined-session extensions and staging-buffer
/// stalls), making "demand outruns the extension rate" observable;
/// **6** — fleet telemetry: the `Stats` reply carries log-bucketed
/// latency histogram snapshots (request→first-byte, chunk-push,
/// extension, stall) per shard and merged service-wide, and the new
/// `Trace`/`TraceDump` pair returns the server's recent event log;
/// **7** — observability plane: the `Stats` reply carries the server's
/// monotonic `uptime_nanos`, so a scraper deriving rates from the
/// cumulative counters can detect a restart (uptime went *down*) instead
/// of computing negative rates; **8** — graceful degradation: the new
/// `Unavailable{retry_after_ms}` response lets a degraded (e.g.
/// supply-starved) server decline work with a retry hint instead of
/// hanging or hard-failing clients, and the `Stats` reply grew the
/// robustness counters (timed-out ops, evicted slow subscribers,
/// unavailable rejections, injected faults); **9** — replicated
/// directories: membership records carry per-origin version stamps
/// (`weight`/`origin`/`version` joined the member layout), directory
/// deltas carry the sender's per-origin epoch vector, the server↔server
/// `Gossip`/`GossipDelta` pair runs anti-entropy convergence between
/// directory replicas, and a draining server announces its ring
/// successor in-stream with the `DrainHandoff` push so failover costs
/// the client zero extra roundtrips.
pub const VERSION: u16 = 9;

/// Per-frame header size (the `u32` length prefix).
pub const FRAME_HEADER_LEN: usize = 4;

/// Handshake size in bytes (magic + version).
pub const HANDSHAKE_LEN: usize = 6;

/// Upper bound on one frame's payload (1 GiB): a corrupt or hostile
/// length prefix must not drive a multi-gigabyte allocation.
pub const MAX_FRAME_LEN: u32 = 1 << 30;

/// Errors of the wire codec.
#[derive(Debug)]
pub enum FrameError {
    /// Underlying stream failure.
    Io(io::Error),
    /// The stream ended inside a header or payload.
    Truncated,
    /// The peer's handshake did not start with [`MAGIC`].
    BadMagic([u8; 4]),
    /// The peer speaks an incompatible wire version.
    VersionMismatch {
        /// Our version ([`VERSION`]).
        ours: u16,
        /// The peer's advertised version.
        theirs: u16,
    },
    /// A frame declared a payload longer than [`MAX_FRAME_LEN`].
    Oversized {
        /// Declared payload length.
        len: u32,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame I/O error: {e}"),
            FrameError::Truncated => write!(f, "stream truncated mid-frame"),
            FrameError::BadMagic(m) => write!(f, "bad connection magic {m:02x?}"),
            FrameError::VersionMismatch { ours, theirs } => {
                write!(f, "wire version mismatch: ours {ours}, peer {theirs}")
            }
            FrameError::Oversized { len } => {
                write!(f, "frame of {len} bytes exceeds limit {MAX_FRAME_LEN}")
            }
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            FrameError::Truncated
        } else {
            FrameError::Io(e)
        }
    }
}

impl From<FrameError> for ChannelError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(io_err) => ChannelError::from(io_err),
            FrameError::Truncated => ChannelError::Disconnected,
            other => ChannelError::Io(io::Error::new(
                io::ErrorKind::InvalidData,
                other.to_string(),
            )),
        }
    }
}

/// Writes one frame (header + payload). Does not flush.
///
/// # Errors
///
/// [`FrameError::Oversized`] when the payload exceeds [`MAX_FRAME_LEN`];
/// otherwise propagates stream errors.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> Result<(), FrameError> {
    if payload.len() > MAX_FRAME_LEN as usize {
        return Err(FrameError::Oversized {
            len: payload.len() as u32,
        });
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    Ok(())
}

/// Reads one frame's payload (blocking).
///
/// # Errors
///
/// [`FrameError::Truncated`] on EOF mid-frame, [`FrameError::Oversized`]
/// on a hostile length prefix, [`FrameError::Io`] on stream failure.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Vec<u8>, FrameError> {
    let mut payload = Vec::new();
    read_frame_into(r, &mut payload)?;
    Ok(payload)
}

/// Starts building a frame in place: clears `buf` and reserves the
/// 4-byte length prefix. Append the payload directly to `buf`, then call
/// [`finish_frame`] to patch the prefix — the zero-copy alternative to
/// encoding a payload `Vec` and wrapping it with [`encode_frame`].
pub fn begin_frame(buf: &mut Vec<u8>) {
    buf.clear();
    buf.extend_from_slice(&[0u8; FRAME_HEADER_LEN]);
}

/// Completes a frame started with [`begin_frame`] by writing the payload
/// length into the reserved prefix. The buffer then holds exactly one
/// wire-ready frame (header + payload).
///
/// # Errors
///
/// [`FrameError::Oversized`] when the payload exceeds [`MAX_FRAME_LEN`].
///
/// # Panics
///
/// Panics if `buf` is shorter than the reserved prefix (i.e. it was not
/// started with [`begin_frame`]).
pub fn finish_frame(buf: &mut [u8]) -> Result<(), FrameError> {
    let payload_len = buf
        .len()
        .checked_sub(FRAME_HEADER_LEN)
        .expect("frame started with begin_frame");
    if payload_len > MAX_FRAME_LEN as usize {
        return Err(FrameError::Oversized {
            len: payload_len as u32,
        });
    }
    buf[..FRAME_HEADER_LEN].copy_from_slice(&(payload_len as u32).to_le_bytes());
    Ok(())
}

/// Completes a frame started with [`begin_frame`] whose payload
/// *continues beyond* `head` in separately owned slices (a vectored
/// send): patches the length prefix to `head`'s payload plus `tail_len`
/// upcoming bytes. The caller then hands `head` and the tail slices to
/// `StreamTransport::send_frame_parts`, which puts them on the wire with
/// one `write_vectored` — no concatenation buffer.
///
/// # Errors
///
/// [`FrameError::Oversized`] when the combined payload exceeds
/// [`MAX_FRAME_LEN`].
///
/// # Panics
///
/// Panics if `head` is shorter than the reserved prefix (i.e. it was not
/// started with [`begin_frame`]).
pub fn finish_frame_with_tail(head: &mut [u8], tail_len: usize) -> Result<(), FrameError> {
    let payload_len = head
        .len()
        .checked_sub(FRAME_HEADER_LEN)
        .expect("frame started with begin_frame")
        .checked_add(tail_len)
        .ok_or(FrameError::Oversized { len: u32::MAX })?;
    if payload_len > MAX_FRAME_LEN as usize {
        return Err(FrameError::Oversized {
            len: payload_len.min(u32::MAX as usize) as u32,
        });
    }
    head[..FRAME_HEADER_LEN].copy_from_slice(&(payload_len as u32).to_le_bytes());
    Ok(())
}

/// Reads one frame's payload into a caller-retained buffer (blocking),
/// reusing its allocation — the buffer-reusing form of [`read_frame`].
/// On success `buf` holds exactly the payload.
///
/// # Errors
///
/// Same failure classes as [`read_frame`].
pub fn read_frame_into<R: Read>(r: &mut R, buf: &mut Vec<u8>) -> Result<(), FrameError> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    r.read_exact(&mut header)?;
    let len = u32::from_le_bytes(header);
    if len > MAX_FRAME_LEN {
        return Err(FrameError::Oversized { len });
    }
    let len = len as usize;
    // Grow-only zeroing: the buffer is zero-initialized only when it has
    // never been this large; steady-state receives just shrink the view.
    if buf.len() < len {
        buf.resize(len, 0);
    }
    buf.truncate(len);
    r.read_exact(buf)?;
    Ok(())
}

/// Encodes one frame into a standalone byte vector (header + payload).
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Decodes one frame from the front of `bytes`, returning the payload and
/// the total bytes consumed.
///
/// # Errors
///
/// Same failure classes as [`read_frame`], on in-memory input.
pub fn decode_frame(bytes: &[u8]) -> Result<(Vec<u8>, usize), FrameError> {
    let mut cursor = bytes;
    let payload = read_frame(&mut cursor)?;
    Ok((payload, bytes.len() - cursor.len()))
}

/// Runs the symmetric handshake: sends our magic+version, then validates
/// the peer's. Returns the peer's version (equal to ours on success).
///
/// # Errors
///
/// [`FrameError::BadMagic`] / [`FrameError::VersionMismatch`] on protocol
/// disagreement; stream errors otherwise.
pub fn handshake<S: Read + Write>(stream: &mut S) -> Result<u16, FrameError> {
    let mut ours = [0u8; HANDSHAKE_LEN];
    ours[..4].copy_from_slice(&MAGIC);
    ours[4..].copy_from_slice(&VERSION.to_le_bytes());
    stream.write_all(&ours)?;
    stream.flush()?;

    let mut theirs = [0u8; HANDSHAKE_LEN];
    stream.read_exact(&mut theirs)?;
    let magic: [u8; 4] = theirs[..4].try_into().expect("4-byte slice");
    if magic != MAGIC {
        return Err(FrameError::BadMagic(magic));
    }
    let version = u16::from_le_bytes(theirs[4..].try_into().expect("2-byte slice"));
    if version != VERSION {
        return Err(FrameError::VersionMismatch {
            ours: VERSION,
            theirs: version,
        });
    }
    Ok(version)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip() {
        let payload = b"hello ironman".to_vec();
        let encoded = encode_frame(&payload);
        let (decoded, consumed) = decode_frame(&encoded).unwrap();
        assert_eq!(decoded, payload);
        assert_eq!(consumed, encoded.len());
    }

    #[test]
    fn in_place_frame_matches_encode_frame() {
        let payload = b"zero copy".to_vec();
        let mut buf = vec![0xAA; 3]; // stale content must be cleared
        begin_frame(&mut buf);
        buf.extend_from_slice(&payload);
        finish_frame(&mut buf).unwrap();
        assert_eq!(buf, encode_frame(&payload));
    }

    #[test]
    fn tail_finished_frame_matches_contiguous_header() {
        let payload = b"head-bytes then tail-bytes".to_vec();
        let split = 10;
        let mut whole = Vec::new();
        begin_frame(&mut whole);
        whole.extend_from_slice(&payload);
        finish_frame(&mut whole).unwrap();

        let mut head = Vec::new();
        begin_frame(&mut head);
        head.extend_from_slice(&payload[..split]);
        finish_frame_with_tail(&mut head, payload.len() - split).unwrap();
        // The prefix declares head payload *plus* the upcoming tail, so
        // concatenating head + tail reproduces the contiguous frame.
        assert_eq!(head[..FRAME_HEADER_LEN], whole[..FRAME_HEADER_LEN]);
        let mut glued = head.clone();
        glued.extend_from_slice(&payload[split..]);
        assert_eq!(glued, whole);
    }

    #[test]
    fn tail_finished_frame_rejects_oversize() {
        let mut head = Vec::new();
        begin_frame(&mut head);
        assert!(matches!(
            finish_frame_with_tail(&mut head, MAX_FRAME_LEN as usize + 1),
            Err(FrameError::Oversized { .. })
        ));
        assert!(matches!(
            finish_frame_with_tail(&mut head, usize::MAX),
            Err(FrameError::Oversized { .. })
        ));
    }

    #[test]
    fn read_frame_into_reuses_buffer() {
        let big = encode_frame(&[7u8; 100]);
        let small = encode_frame(b"abc");
        let mut buf = Vec::new();
        read_frame_into(&mut big.as_slice(), &mut buf).unwrap();
        assert_eq!(buf.len(), 100);
        let cap = buf.capacity();
        read_frame_into(&mut small.as_slice(), &mut buf).unwrap();
        assert_eq!(buf, b"abc");
        assert_eq!(buf.capacity(), cap, "smaller frame must not reallocate");
    }

    #[test]
    fn read_frame_into_rejects_oversized_and_truncated() {
        let mut buf = Vec::new();
        let hostile = u32::MAX.to_le_bytes();
        assert!(matches!(
            read_frame_into(&mut hostile.as_slice(), &mut buf),
            Err(FrameError::Oversized { .. })
        ));
        let mut truncated = encode_frame(b"abcdef");
        truncated.truncate(truncated.len() - 2);
        assert!(matches!(
            read_frame_into(&mut truncated.as_slice(), &mut buf),
            Err(FrameError::Truncated)
        ));
    }

    #[test]
    fn empty_frame_round_trip() {
        let (decoded, consumed) = decode_frame(&encode_frame(&[])).unwrap();
        assert!(decoded.is_empty());
        assert_eq!(consumed, FRAME_HEADER_LEN);
    }

    #[test]
    fn truncated_header_rejected() {
        assert!(matches!(decode_frame(&[1, 2]), Err(FrameError::Truncated)));
    }

    #[test]
    fn truncated_payload_rejected() {
        let mut bytes = encode_frame(b"abcdef");
        bytes.truncate(bytes.len() - 2);
        assert!(matches!(decode_frame(&bytes), Err(FrameError::Truncated)));
    }

    #[test]
    fn oversized_frame_rejected_without_allocation() {
        let bytes = u32::MAX.to_le_bytes().to_vec();
        assert!(matches!(
            decode_frame(&bytes),
            Err(FrameError::Oversized { .. })
        ));
    }

    /// In-memory duplex: reads come from a pre-loaded peer script, writes
    /// land in `outgoing`.
    struct Loopback {
        incoming: std::io::Cursor<Vec<u8>>,
        outgoing: Vec<u8>,
    }

    impl Loopback {
        fn scripted(peer_bytes: Vec<u8>) -> Self {
            Loopback {
                incoming: std::io::Cursor::new(peer_bytes),
                outgoing: Vec::new(),
            }
        }
    }

    impl Read for Loopback {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            self.incoming.read(buf)
        }
    }

    impl Write for Loopback {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.outgoing.write(buf)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn handshake_matches_itself() {
        let mut hello = MAGIC.to_vec();
        hello.extend_from_slice(&VERSION.to_le_bytes());
        let mut peer = Loopback::scripted(hello);
        assert_eq!(handshake(&mut peer).unwrap(), VERSION);
        assert_eq!(peer.outgoing.len(), HANDSHAKE_LEN);
    }

    #[test]
    fn handshake_rejects_bad_magic() {
        let mut peer = Loopback::scripted(b"XXXX\x01\x00".to_vec());
        assert!(matches!(handshake(&mut peer), Err(FrameError::BadMagic(_))));
    }

    #[test]
    fn handshake_rejects_version_mismatch() {
        let mut hello = MAGIC.to_vec();
        hello.extend_from_slice(&(VERSION + 1).to_le_bytes());
        let mut peer = Loopback::scripted(hello);
        assert!(matches!(
            handshake(&mut peer),
            Err(FrameError::VersionMismatch { theirs, .. }) if theirs == VERSION + 1
        ));
    }
}
