//! The COT service's request/response protocol.
//!
//! One request frame, one response frame, both `opcode || fields` with
//! little-endian integers. Blocks are 16-byte little-endian; bit vectors
//! use the same `encode_bits` framing as every transport helper, so a
//! message parses identically whether it crossed a socket or an
//! in-process channel.
//!
//! ```text
//! requests                              responses
//! 0x01 Hello     { name: lp-bytes,      0x81 Welcome   { version: u16, max_request: u64,
//!                  epoch: u64 }                          epoch: u64 }
//! 0x02 Request   { n: u64 }             0x82 Cots      { batch }
//! 0x03 Stats                            0x83 Stats     { 15 × u64, latency,
//! 0x04 Shutdown                                          s, s × shard }
//! 0x05 Subscribe { batch: u64,          0x84 Goodbye
//!                  credits: u64 }       0x85 CotChunk  { seq: u64, batch }
//! 0x06 Credit    { n: u64 }             0x86 StreamEnd { chunks: u64, cots: u64 }
//! 0x07 Unsubscribe                      0x87 WrongEpoch{ epoch: u64 }
//! 0x08 Sync      { epoch: u64 }         0x88 DirUpdate { epoch: u64, full: u8,
//! 0x09 Warm      { watermark: u64,                       m, m × member }
//!                  max_refills: u64 }   0x89 Warmed    { refills: u64 }
//! 0x0A Trace     { max_events: u64 }    0x8A TraceDump { e, e × event }
//! 0x0B Gossip    { from: u64,           0x8B Unavail   { retry_after_ms: u64 }
//!                  v, v × vec-entry }   0x8C GossipDelta { delta }
//!                                       0x8D DrainHandoff { id: u64, addr: lp-bytes,
//!                                                           name: lp-bytes }
//!                                       0xFF Error     { message: lp-bytes }
//! ```
//!
//! (`lp-bytes` = `u64` length + raw bytes; `batch` = `delta, n, z[n],
//! y[n], bits(x)` with the shared [`encode_bits`] layout; `shard` =
//! `{avail, ext, taken, warm, sess_ext, sess_stall} × u64 ‖ latency`;
//! `latency` = 4 histogram snapshots (request→first-byte, chunk-push,
//! extension, stall — each `count, sum, max: u64, e: u16, e × {index:
//! u16, count: u64}`); `member` = `{id: u64, state: u8, weight: u32,
//! origin: u64, version: u64, addr: lp-bytes, name: lp-bytes}`;
//! `vec-entry` = `{origin: u64, version: u64}`; `delta` = `{epoch: u64,
//! full: u8, v, v × vec-entry, m, m × member}`; `event` = `{at: u64,
//! kind: u8, arg: u64}`.)
//!
//! # Streaming subscriptions (v2)
//!
//! `Subscribe{batch, credits}` switches the session into streaming mode:
//! the server pushes one `CotChunk{seq, ..}` of `batch` correlations per
//! *credit* and blocks when the granted credits run out. The client
//! extends the stream by sending `Credit{n}` grants (a full-duplex
//! transport lets it do so while chunks are still in flight) and ends it
//! with `Unsubscribe`, which the server acknowledges with a
//! `StreamEnd{chunks, cots}` accounting trailer. Credits are the
//! backpressure: the server can never have more chunks in flight than the
//! client has explicitly granted, so a slow consumer bounds server-side
//! work and socket buffering instead of being buried.
//!
//! # Membership epochs (v4)
//!
//! A fleet-attached server carries an epoch-versioned membership
//! directory. `Hello` announces the client's directory epoch
//! ([`EPOCH_UNAWARE`] opts a plain client out of fencing entirely);
//! `Welcome` answers with the server's. A correlation-serving request
//! (`RequestCot`/`Subscribe`) made under a stale epoch is *fenced* with
//! `WrongEpoch{epoch}` instead of served — the client's routing view is
//! out of date, and serving it could hide a drain or a dead home. The
//! client then sends `Sync{epoch}` and receives
//! `DirectoryUpdate{epoch, full, members}` — the membership delta since
//! its epoch (or a full snapshot when the server's change log no longer
//! reaches back that far) — applies it, re-resolves, and retries. `Warm`
//! asks the server to run one budgeted warm-up sweep (at most
//! `max_refills` shards, driest first); the fleet-level warm-up
//! controller in `ironman-cluster` steers its global refill budget
//! through this op.
//!
//! # Directory replication (v9)
//!
//! Each server carries its *own* directory replica; replicas converge
//! through pull-based anti-entropy. Every membership record carries a
//! stamp `(origin, version)` naming which replica wrote it and at what
//! per-origin version; a replica's summary of everything it has seen is
//! its *epoch vector* (`origin → highest version`). `Gossip{from,
//! vector}` presents the requester's vector; the responder answers with
//! `GossipDelta` carrying exactly the records whose stamps the vector
//! has not covered (removals travel as [`MemberWireState::Left`]
//! tombstones, never as full-snapshot clears — a clear would erase
//! concurrent writes the responder hasn't seen). The merge rule is
//! last-writer-wins on the stamp: higher `version` wins, ties break to
//! the *lower* `origin` — deterministic, commutative, and idempotent,
//! so any gossip order converges every replica to the same membership.
//! `DrainHandoff{id, addr, name}` is a server-initiated push inside an
//! active subscription: a draining server names the session's ring
//! successor so the client fails over directly, spending zero extra
//! roundtrips discovering where its stream went.

use ironman_core::{CotBatch, CotSlice};
use ironman_ot::channel::{decode_bits_into, encode_bits_into, ChannelError};
use ironman_prg::Block;
use ironman_telemetry::{EventKind, HistogramSnapshot, TraceEvent};

/// The `Hello.epoch` value of a client with no directory: such sessions
/// are never epoch-fenced (they opted out of membership routing, so
/// there is no stale view to protect them from).
pub const EPOCH_UNAWARE: u64 = u64::MAX;

/// Client → server messages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Opens a session (client self-identification, for server logs/stats).
    Hello {
        /// Client display name.
        name: String,
        /// The client's directory epoch ([`EPOCH_UNAWARE`] for clients
        /// without a membership view; they are never fenced).
        epoch: u64,
    },
    /// Asks for `n` fresh correlations.
    RequestCot {
        /// Batch size.
        n: u64,
    },
    /// Asks for a service statistics snapshot.
    Stats,
    /// Asks the server to stop accepting new sessions and exit.
    Shutdown,
    /// Opens a credit-controlled stream of correlation chunks.
    Subscribe {
        /// Correlations per pushed [`Response::CotChunk`].
        batch: u64,
        /// Initial credit grant (chunks the server may push immediately).
        credits: u64,
    },
    /// Grants `n` further chunk credits to the active subscription.
    Credit {
        /// Additional chunks the server may push.
        n: u64,
    },
    /// Ends the active subscription; the server answers with
    /// [`Response::StreamEnd`] once it has stopped pushing.
    Unsubscribe,
    /// Announces the client's directory epoch and asks for the membership
    /// delta since it; answered with [`Response::DirectoryUpdate`].
    Sync {
        /// The epoch of the client's current membership view.
        epoch: u64,
    },
    /// Asks the server to run one budgeted warm-up sweep over its pool
    /// (at most `max_refills` shard refills, driest shards first);
    /// answered with [`Response::Warmed`]. The fleet-level warm-up
    /// controller steers its global refill budget through this op.
    Warm {
        /// Per-shard low watermark (clamped server-side per supply mode).
        watermark: u64,
        /// Largest number of shard refills this sweep may perform.
        max_refills: u64,
    },
    /// Asks for the server's recent trace events (v6): the service-level
    /// and per-shard trace rings merged by timestamp; answered with
    /// [`Response::TraceDump`].
    Trace {
        /// Largest number of events the reply may carry (the newest are
        /// kept; a server-side cap applies on top).
        max_events: u64,
    },
    /// Anti-entropy pull (v9): presents the requester's per-origin epoch
    /// vector; answered with [`Response::GossipDelta`] carrying every
    /// membership record the vector has not covered.
    Gossip {
        /// The requesting replica's server id (its stamp origin).
        from: u64,
        /// The requester's epoch vector: `(origin, highest version
        /// seen)`, ascending by origin.
        vector: Vec<(u64, u64)>,
    },
}

/// Server → client messages.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Session accepted.
    Welcome {
        /// Server wire version.
        version: u16,
        /// Largest `RequestCot::n` one request may carry.
        max_request: u64,
        /// The server's directory epoch (0 when the server carries no
        /// membership directory).
        epoch: u64,
    },
    /// A correlation batch (trusted-dealer style: both endpoints' shares).
    Cots(CotBatch),
    /// Service statistics snapshot (boxed: the v7 stats header plus
    /// four histograms dwarf every hot variant, and `Stats` is off the
    /// serving path).
    Stats(Box<ServiceStats>),
    /// Acknowledges a shutdown; the connection closes after this.
    Goodbye,
    /// One pushed chunk of an active subscription.
    CotChunk {
        /// Zero-based chunk sequence number within the subscription.
        seq: u64,
        /// The correlations (same layout as [`Response::Cots`]).
        batch: CotBatch,
    },
    /// Accounting trailer ending a subscription.
    StreamEnd {
        /// Chunks pushed over the subscription's lifetime.
        chunks: u64,
        /// Correlations pushed over the subscription's lifetime.
        cots: u64,
    },
    /// The request was fenced: it was made under a directory epoch older
    /// than the server's. Sync the delta, re-resolve, retry.
    WrongEpoch {
        /// The server's current directory epoch.
        epoch: u64,
    },
    /// The membership delta answering a [`Request::Sync`].
    DirectoryUpdate(DirectoryDelta),
    /// Acknowledges a [`Request::Warm`] sweep.
    Warmed {
        /// Shards actually refilled by the sweep.
        refills: u64,
    },
    /// The recent event log answering a [`Request::Trace`] (v6).
    TraceDump(
        /// Events in ascending timestamp order, newest last. Timestamps
        /// are the *server's* monotonic nanoseconds — comparable within
        /// one dump, not across servers.
        Vec<TraceEvent>,
    ),
    /// The server is up but degraded (v8; e.g. supply-starved or
    /// administratively browned out) and declined a correlation-serving
    /// request. Unlike [`Response::Error`], this carries a machine-usable
    /// retry hint so clients back off instead of hammering.
    Unavailable {
        /// Suggested minimum wait before retrying this server, in
        /// milliseconds.
        retry_after_ms: u64,
    },
    /// The anti-entropy delta answering a [`Request::Gossip`] (v9):
    /// every record whose stamp the requester's vector had not covered,
    /// plus the responder's own vector.
    GossipDelta(DirectoryDelta),
    /// A server-initiated push inside an active subscription (v9): this
    /// server is draining and the named member is the session's ring
    /// successor. The client should finish the stream there; the push
    /// consumes no credit and carries no chunk.
    DrainHandoff {
        /// The successor's stable server id.
        id: u64,
        /// The successor's listening address.
        addr: String,
        /// The successor's display name.
        name: String,
    },
    /// The request could not be served.
    Error(
        /// Human-readable reason.
        String,
    ),
}

/// A fleet member's state as carried on the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemberWireState {
    /// Serving and routable.
    Up,
    /// Finishing existing sessions; receives no new homes.
    Draining,
    /// Failed recent health probes; deprioritized for routing.
    Suspect,
    /// Removed from the membership (only meaningful inside a delta).
    Left,
}

impl MemberWireState {
    fn to_u8(self) -> u8 {
        match self {
            MemberWireState::Up => 0,
            MemberWireState::Draining => 1,
            MemberWireState::Suspect => 2,
            MemberWireState::Left => 3,
        }
    }

    fn from_u8(v: u8) -> Result<Self, ChannelError> {
        Ok(match v {
            0 => MemberWireState::Up,
            1 => MemberWireState::Draining,
            2 => MemberWireState::Suspect,
            3 => MemberWireState::Left,
            other => return Err(malformed(3, other as usize)),
        })
    }
}

/// One fleet member (or membership change) inside a
/// [`DirectoryDelta`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MemberRecord {
    /// Stable server id (assigned at join; survives state changes).
    pub id: u64,
    /// The member's state at the delta's epoch.
    pub state: MemberWireState,
    /// Relative ring weight (v9): a weight-`w` member takes `w×` the
    /// base member's share of virtual ring nodes. 1 for homogeneous
    /// fleets; 0 decodes but is clamped up by the directory.
    pub weight: u32,
    /// Stamp origin (v9): the replica (server id) that wrote this
    /// record's current value. [`u64::MAX`] for unattributed writers
    /// (plain clients), which lose every stamp tie.
    pub origin: u64,
    /// Stamp version (v9): the writing origin's per-origin mutation
    /// counter at write time. Higher version wins a merge; equal
    /// versions break to the lower origin.
    pub version: u64,
    /// Listening address, as a parseable socket-address string.
    pub addr: String,
    /// Display name.
    pub name: String,
}

/// A membership update: either the changes since the requester's epoch
/// (`full == false`; [`MemberWireState::Left`] records removals) or a
/// complete snapshot (`full == true`, sent when the server's change log
/// no longer reaches back to the requested epoch).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DirectoryDelta {
    /// The epoch this update brings the receiver to.
    pub epoch: u64,
    /// Whether `members` is a complete snapshot rather than a delta.
    pub full: bool,
    /// The sender's per-origin epoch vector (v9), ascending by origin.
    /// Empty from pre-replication code paths; a receiver folds it in by
    /// pointwise maximum.
    pub vector: Vec<(u64, u64)>,
    /// The changed (or, for a snapshot, all) members.
    pub members: Vec<MemberRecord>,
}

/// A point-in-time view of the service's counters.
///
/// The aggregate fields (`available`, `extensions_run`, `shards`) are the
/// server's own sums over `shard_stats`, carried denormalized for cheap
/// consumption; the decoder does not re-derive or cross-check them, so a
/// misbehaving server could send disagreeing values — treat `shard_stats`
/// as the source of truth when both are read.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Sessions accepted since start.
    pub clients_served: u64,
    /// Correlations handed out since start.
    pub cots_served: u64,
    /// FERRET extensions executed across all pool shards.
    pub extensions_run: u64,
    /// Correlations currently buffered across all shards.
    pub available: u64,
    /// Pool shard count.
    pub shards: u64,
    /// Refills performed by the warm-up sweep (extensions run *before*
    /// demand arrived, rather than inline on a client's request).
    pub warmup_refills: u64,
    /// Batch-carrying responses (`Cots`/`CotChunk` — only those; control
    /// and error replies are not counted) served from an already-sized
    /// per-session scratch buffer, i.e. with no allocation between pool
    /// storage and the socket write — the observable half of the
    /// zero-copy claim.
    pub scratch_reuses: u64,
    /// Batch-carrying responses that had to grow a per-session scratch
    /// buffer (a session's first batches, or a larger batch than any
    /// before it). Steady state is `scratch_allocs ≪ scratch_reuses`.
    pub scratch_allocs: u64,
    /// Sessions refused because their socket handle could not be
    /// registered for shutdown tracking (`try_clone` failure): serving an
    /// untracked session would leave its thread unreachable at shutdown.
    pub register_failures: u64,
    /// The server's directory epoch at snapshot time (0 when the server
    /// carries no membership directory) — how tests and operators observe
    /// that a membership change propagated to every survivor.
    pub directory_epoch: u64,
    /// Correlations promised to active subscriptions but not yet pushed
    /// (granted credits × chunk size, summed over live streams): the
    /// demand backlog a fleet-level warm-up controller steers toward.
    pub pending_stream_cots: u64,
    /// Nanoseconds since this server process constructed its service
    /// (v7) — a *monotonic* age, not wall-clock time. A scraper deriving
    /// rates from the cumulative counters compares uptimes across two
    /// snapshots: a later scrape reporting a *smaller* uptime proves the
    /// process restarted in between, so the counters restarted from
    /// zero and a naive subtraction would go negative.
    pub uptime_nanos: u64,
    /// Subscribers evicted by the slow-consumer guard (v8): their socket
    /// would not accept a pushed chunk within the service's write
    /// deadline, so the session was closed (tracked, traced) instead of
    /// pinning a serving thread on a zero-window reader.
    pub subscribers_evicted: u64,
    /// Correlation-serving requests declined with
    /// [`Response::Unavailable`] while the server was degraded (v8).
    pub unavailable_sent: u64,
    /// Faults fired by an attached fault-injection plan (v8; always 0 in
    /// production — the counter proves chaos tests actually injected).
    pub faults_injected: u64,
    /// Service-wide latency distributions (v6): the per-shard extension
    /// and stall histograms merged across shards, plus the serving path's
    /// request→first-byte and chunk-push timings (those two are recorded
    /// per shard and merged the same way). Like the aggregate counters,
    /// this is denormalized — the decoder does not cross-check it against
    /// `shard_stats`.
    pub latency: LatencyStats,
    /// Per-shard occupancy and refill counters (in shard order); the
    /// spread across shards is what makes warm-up effectiveness and
    /// routing skew observable from a plain `Stats` request.
    pub shard_stats: Vec<ShardStat>,
}

/// The four serving-path latency distributions carried by a v6 `Stats`
/// reply, each as a compact log-bucketed histogram snapshot (values are
/// nanoseconds; quantiles read from these carry at most the bucket's
/// 6.25% relative error — see `ironman-telemetry`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LatencyStats {
    /// Request arrival (frame decoded) → first response byte handed to
    /// the transport, for correlation-serving requests.
    pub request_first_byte: HistogramSnapshot,
    /// Per-chunk push latency of streaming subscriptions: pool drain →
    /// chunk bytes handed to the transport.
    pub chunk_push: HistogramSnapshot,
    /// FERRET extension wall time (pipelined session threads and inline
    /// refills both land here).
    pub extension: HistogramSnapshot,
    /// Consumer-stall time: how long pool drains blocked waiting on the
    /// extension pipeline's staging buffer.
    pub stall: HistogramSnapshot,
}

impl LatencyStats {
    /// Smallest wire footprint of one `LatencyStats` (four empty
    /// snapshots).
    pub const ENCODED_MIN_LEN: usize = 4 * ironman_telemetry::ENCODED_MIN_LEN;

    /// Folds `other`'s distributions into `self` (bucket counts add,
    /// maxima take the larger side) — how per-shard and per-server
    /// summaries roll up into service- and fleet-wide ones.
    pub fn merge(&mut self, other: &LatencyStats) {
        self.request_first_byte.merge(&other.request_first_byte);
        self.chunk_push.merge(&other.chunk_push);
        self.extension.merge(&other.extension);
        self.stall.merge(&other.stall);
    }

    /// The windowed difference `self − earlier`, distribution by
    /// distribution (`HistogramSnapshot::delta`): quantiles read from
    /// the result describe only the samples recorded between the two
    /// snapshots. Each histogram independently falls back to its later
    /// cumulative self if the earlier one is not a pointwise lower bound
    /// (the recording process restarted), so counts never go negative.
    pub fn delta(&self, earlier: &LatencyStats) -> LatencyStats {
        LatencyStats {
            request_first_byte: self.request_first_byte.delta(&earlier.request_first_byte),
            chunk_push: self.chunk_push.delta(&earlier.chunk_push),
            extension: self.extension.delta(&earlier.extension),
            stall: self.stall.delta(&earlier.stall),
        }
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        self.request_first_byte.encode_into(out);
        self.chunk_push.encode_into(out);
        self.extension.encode_into(out);
        self.stall.encode_into(out);
    }

    fn decode(r: &mut Reader<'_>) -> Result<LatencyStats, ChannelError> {
        Ok(LatencyStats {
            request_first_byte: r.histogram()?,
            chunk_push: r.histogram()?,
            extension: r.histogram()?,
            stall: r.histogram()?,
        })
    }
}

/// One pool shard's occupancy, demand, and refill counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardStat {
    /// Correlations currently buffered in this shard.
    pub available: u64,
    /// Extensions this shard has executed (inline or warm-up).
    pub extensions_run: u64,
    /// Correlations drained from this shard since start (demand).
    pub taken: u64,
    /// Refills this shard received through the warm-up path.
    pub warm_refills: u64,
    /// Extensions completed by the shard's pipelined FERRET session
    /// threads ahead of demand (0 for inline shards). Interpretation:
    /// this is *supply-side* throughput — it growing while
    /// `session_stalls` stays flat means the extension pipeline is
    /// keeping ahead of demand (serving-bound, the healthy state); read
    /// the two together to tell which side of the shard is bound.
    pub session_extensions: u64,
    /// Times a drain blocked on the session's staging buffer because it
    /// was empty — the raw-supply pressure signal (v5): a shard whose
    /// `session_stalls` grows under load is extension-bound, not
    /// serving-bound. The v6 `latency.stall` histogram adds *how long*
    /// each of those blocks lasted.
    pub session_stalls: u64,
    /// This shard's latency distributions (v6); the service-wide
    /// [`ServiceStats::latency`] is the merge of these across shards.
    pub latency: LatencyStats,
}

const OP_HELLO: u8 = 0x01;
const OP_REQUEST_COT: u8 = 0x02;
const OP_STATS: u8 = 0x03;
const OP_SHUTDOWN: u8 = 0x04;
const OP_SUBSCRIBE: u8 = 0x05;
const OP_CREDIT: u8 = 0x06;
const OP_UNSUBSCRIBE: u8 = 0x07;
const OP_SYNC: u8 = 0x08;
const OP_WARM: u8 = 0x09;
const OP_TRACE: u8 = 0x0A;
const OP_GOSSIP: u8 = 0x0B;
const OP_WELCOME: u8 = 0x81;
const OP_COTS: u8 = 0x82;
const OP_STATS_REPLY: u8 = 0x83;
const OP_GOODBYE: u8 = 0x84;
const OP_COT_CHUNK: u8 = 0x85;
const OP_STREAM_END: u8 = 0x86;
const OP_WRONG_EPOCH: u8 = 0x87;
const OP_DIRECTORY_UPDATE: u8 = 0x88;
const OP_WARMED: u8 = 0x89;
const OP_TRACE_DUMP: u8 = 0x8A;
const OP_UNAVAILABLE: u8 = 0x8B;
const OP_GOSSIP_DELTA: u8 = 0x8C;
const OP_DRAIN_HANDOFF: u8 = 0x8D;
const OP_ERROR: u8 = 0xFF;

/// Wire footprint of one [`TraceEvent`] (`at: u64, kind: u8, arg: u64`).
const TRACE_EVENT_LEN: usize = 17;

/// Wire footprint of one epoch-vector entry (`origin: u64, version:
/// u64`).
const VECTOR_ENTRY_LEN: usize = 16;

/// Smallest wire footprint of one [`MemberRecord`] (`id: u64, state: u8,
/// weight: u32, origin: u64, version: u64` plus two empty `lp-bytes`
/// fields).
const MEMBER_RECORD_MIN_LEN: usize = 8 + 1 + 4 + 8 + 8 + 16;

fn put_lp_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
    out.extend_from_slice(bytes);
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ChannelError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| ChannelError::Malformed {
                expected: self.pos.saturating_add(n),
                actual: self.bytes.len(),
            })?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u64(&mut self) -> Result<u64, ChannelError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8-byte slice"),
        ))
    }

    fn u32(&mut self) -> Result<u32, ChannelError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4-byte slice"),
        ))
    }

    fn u16(&mut self) -> Result<u16, ChannelError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2-byte slice"),
        ))
    }

    fn u8(&mut self) -> Result<u8, ChannelError> {
        Ok(self.take(1)?[0])
    }

    fn block(&mut self) -> Result<Block, ChannelError> {
        Ok(Block::from_le_bytes(
            self.take(16)?.try_into().expect("16-byte slice"),
        ))
    }

    /// Bulk block read into a caller-retained vector (cleared first),
    /// decoding 16-byte words without per-element `Result` plumbing.
    fn blocks_into(&mut self, n: usize, out: &mut Vec<Block>) -> Result<(), ChannelError> {
        let raw = self.take(n * Block::BYTES)?;
        out.clear();
        Block::extend_from_le_bytes(raw, out);
        Ok(())
    }

    fn lp_bytes(&mut self) -> Result<&'a [u8], ChannelError> {
        let len = self.u64()? as usize;
        self.take(len)
    }

    /// One histogram snapshot, delegating validation (canonical sparse
    /// encoding, hostile entry counts) to the telemetry decoder.
    fn histogram(&mut self) -> Result<HistogramSnapshot, ChannelError> {
        let (snap, used) =
            HistogramSnapshot::decode_from(&self.bytes[self.pos..]).ok_or_else(|| {
                malformed(
                    self.pos + ironman_telemetry::ENCODED_MIN_LEN,
                    self.bytes.len(),
                )
            })?;
        self.pos += used;
        Ok(snap)
    }

    fn finish(self) -> Result<(), ChannelError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(ChannelError::Malformed {
                expected: self.pos,
                actual: self.bytes.len(),
            })
        }
    }
}

fn malformed(expected: usize, actual: usize) -> ChannelError {
    ChannelError::Malformed { expected, actual }
}

/// Appends an epoch vector (`count, count × {origin, version}`).
fn put_vector(out: &mut Vec<u8>, vector: &[(u64, u64)]) {
    out.extend_from_slice(&(vector.len() as u64).to_le_bytes());
    for (origin, version) in vector {
        out.extend_from_slice(&origin.to_le_bytes());
        out.extend_from_slice(&version.to_le_bytes());
    }
}

/// Parses an epoch vector with the usual hostile-count guard.
fn read_vector(r: &mut Reader<'_>, rest: &[u8]) -> Result<Vec<(u64, u64)>, ChannelError> {
    let count = r.u64()? as usize;
    let remaining = rest.len().saturating_sub(r.pos);
    if count
        .checked_mul(VECTOR_ENTRY_LEN)
        .is_none_or(|need| need > remaining)
    {
        return Err(malformed(count.saturating_mul(VECTOR_ENTRY_LEN), remaining));
    }
    (0..count).map(|_| Ok((r.u64()?, r.u64()?))).collect()
}

/// Appends the shared [`DirectoryDelta`] layout (`epoch, full, vector,
/// m, m × member`) used by both `DirectoryUpdate` and `GossipDelta`.
fn encode_delta_into(out: &mut Vec<u8>, delta: &DirectoryDelta) {
    out.extend_from_slice(&delta.epoch.to_le_bytes());
    out.push(u8::from(delta.full));
    put_vector(out, &delta.vector);
    out.extend_from_slice(&(delta.members.len() as u64).to_le_bytes());
    for m in &delta.members {
        out.extend_from_slice(&m.id.to_le_bytes());
        out.push(m.state.to_u8());
        out.extend_from_slice(&m.weight.to_le_bytes());
        out.extend_from_slice(&m.origin.to_le_bytes());
        out.extend_from_slice(&m.version.to_le_bytes());
        put_lp_bytes(out, m.addr.as_bytes());
        put_lp_bytes(out, m.name.as_bytes());
    }
}

/// Parses the shared [`DirectoryDelta`] layout. A hostile member count
/// must not drive allocation past the actual payload
/// ([`MEMBER_RECORD_MIN_LEN`] bytes is the smallest member record).
fn read_delta<'a>(r: &mut Reader<'a>, rest: &'a [u8]) -> Result<DirectoryDelta, ChannelError> {
    let epoch = r.u64()?;
    let full = r.u8()? != 0;
    let vector = read_vector(r, rest)?;
    let count = r.u64()? as usize;
    let remaining = rest.len().saturating_sub(r.pos);
    if count
        .checked_mul(MEMBER_RECORD_MIN_LEN)
        .is_none_or(|need| need > remaining)
    {
        return Err(malformed(
            count.saturating_mul(MEMBER_RECORD_MIN_LEN),
            remaining,
        ));
    }
    let members = (0..count)
        .map(|_| {
            Ok(MemberRecord {
                id: r.u64()?,
                state: MemberWireState::from_u8(r.u8()?)?,
                weight: r.u32()?,
                origin: r.u64()?,
                version: r.u64()?,
                addr: String::from_utf8_lossy(r.lp_bytes()?).into_owned(),
                name: String::from_utf8_lossy(r.lp_bytes()?).into_owned(),
            })
        })
        .collect::<Result<Vec<_>, ChannelError>>()?;
    Ok(DirectoryDelta {
        epoch,
        full,
        vector,
        members,
    })
}

/// Appends the shared batch layout (`delta, n, z[n], y[n], bits(x)`) used
/// by both [`Response::Cots`] and [`Response::CotChunk`]: one exact
/// reservation, then bulk little-endian word writes straight into `out`.
/// This is the serving hot path's single payload copy — callers hand it a
/// [`CotSlice`] borrowing pool storage and a retained scratch buffer.
pub fn encode_cot_batch_into(out: &mut Vec<u8>, batch: CotSlice<'_>) {
    out.reserve(16 + 8 + 32 * batch.len() + batch.len().div_ceil(8) + 8);
    out.extend_from_slice(&batch.delta.to_le_bytes());
    out.extend_from_slice(&(batch.len() as u64).to_le_bytes());
    Block::extend_le_bytes(batch.z, out);
    Block::extend_le_bytes(batch.y, out);
    encode_bits_into(batch.x, out);
}

/// Appends a complete [`Response::Cots`] payload built from a borrowed
/// batch view (no intermediate `CotBatch` or `Vec` materialization).
pub fn encode_cots_into(out: &mut Vec<u8>, batch: CotSlice<'_>) {
    out.push(OP_COTS);
    encode_cot_batch_into(out, batch);
}

/// Appends a complete [`Response::CotChunk`] payload built from a
/// borrowed batch view.
pub fn encode_cot_chunk_into(out: &mut Vec<u8>, seq: u64, batch: CotSlice<'_>) {
    out.push(OP_COT_CHUNK);
    out.extend_from_slice(&seq.to_le_bytes());
    encode_cot_batch_into(out, batch);
}

/// Splits the shared batch layout across a scatter-gather send: the
/// fixed-size prefix (`delta, n`) is appended to `head`, the packed
/// choice bits to `tail` (cleared first), and the bulk `z`/`y` block
/// runs are **borrowed** from pool storage via [`Block::wire_bytes`] —
/// zero-copy on little-endian targets; the staging vectors exist only
/// for the big-endian fallback and stay empty otherwise.
///
/// Writing the returned views in `[head-suffix, z, y, tail]` order
/// reproduces [`encode_cot_batch_into`]'s bytes exactly: the wire
/// format is identical, only the number of copies differs. Callers
/// hand all four parts to
/// [`StreamTransport::send_frame_parts`](crate::transport::StreamTransport::send_frame_parts)
/// so the block runs go from the pool ring to the socket without ever
/// landing in a scratch buffer.
pub fn encode_cot_batch_split<'a>(
    head: &mut Vec<u8>,
    tail: &mut Vec<u8>,
    z_staging: &'a mut Vec<u8>,
    y_staging: &'a mut Vec<u8>,
    batch: CotSlice<'a>,
) -> (&'a [u8], &'a [u8]) {
    head.extend_from_slice(&batch.delta.to_le_bytes());
    head.extend_from_slice(&(batch.len() as u64).to_le_bytes());
    tail.clear();
    encode_bits_into(batch.x, tail);
    (
        Block::wire_bytes(batch.z, z_staging),
        Block::wire_bytes(batch.y, y_staging),
    )
}

/// [`encode_cots_into`] in split form: the [`Response::Cots`] opcode
/// joins the fixed prefix in `head`; everything else as
/// [`encode_cot_batch_split`].
pub fn encode_cots_split<'a>(
    head: &mut Vec<u8>,
    tail: &mut Vec<u8>,
    z_staging: &'a mut Vec<u8>,
    y_staging: &'a mut Vec<u8>,
    batch: CotSlice<'a>,
) -> (&'a [u8], &'a [u8]) {
    head.push(OP_COTS);
    encode_cot_batch_split(head, tail, z_staging, y_staging, batch)
}

/// [`encode_cot_chunk_into`] in split form: opcode and sequence number
/// join the fixed prefix in `head`; everything else as
/// [`encode_cot_batch_split`].
pub fn encode_cot_chunk_split<'a>(
    head: &mut Vec<u8>,
    tail: &mut Vec<u8>,
    z_staging: &'a mut Vec<u8>,
    y_staging: &'a mut Vec<u8>,
    seq: u64,
    batch: CotSlice<'a>,
) -> (&'a [u8], &'a [u8]) {
    head.push(OP_COT_CHUNK);
    head.extend_from_slice(&seq.to_le_bytes());
    encode_cot_batch_split(head, tail, z_staging, y_staging, batch)
}

/// Appends a complete [`Response::Error`] payload from a borrowed
/// message (error paths should not clone strings just to encode them).
pub fn encode_error_into(out: &mut Vec<u8>, message: &str) {
    out.push(OP_ERROR);
    put_lp_bytes(out, message.as_bytes());
}

/// Parses the shared batch layout into a caller-retained batch, reusing
/// its allocations; the batch is always a message's final field, so the
/// bit vector consumes the remainder of `rest`.
fn read_batch_into<'a>(
    r: &mut Reader<'a>,
    rest: &'a [u8],
    out: &mut CotBatch,
) -> Result<(), ChannelError> {
    let delta = r.block()?;
    let n = r.u64()? as usize;
    // A hostile count must not drive allocation past the actual payload:
    // n blocks of z and y still have to fit.
    let remaining = rest.len().saturating_sub(r.pos);
    if n.checked_mul(32).is_none_or(|need| need > remaining) {
        return Err(malformed(n.saturating_mul(32), remaining));
    }
    out.delta = delta;
    r.blocks_into(n, &mut out.z)?;
    r.blocks_into(n, &mut out.y)?;
    decode_bits_into(r.take(rest.len() - r.pos)?, &mut out.x)?;
    if out.x.len() != n {
        return Err(malformed(n, out.x.len()));
    }
    Ok(())
}

/// Parses the shared batch layout into a fresh [`CotBatch`].
fn read_batch<'a>(r: &mut Reader<'a>, rest: &'a [u8]) -> Result<CotBatch, ChannelError> {
    let mut batch = CotBatch::default();
    read_batch_into(r, rest, &mut batch)?;
    Ok(batch)
}

impl Request {
    /// Serializes to one message payload.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Request::Hello { name, epoch } => {
                let mut out = vec![OP_HELLO];
                put_lp_bytes(&mut out, name.as_bytes());
                out.extend_from_slice(&epoch.to_le_bytes());
                out
            }
            Request::RequestCot { n } => {
                let mut out = vec![OP_REQUEST_COT];
                out.extend_from_slice(&n.to_le_bytes());
                out
            }
            Request::Stats => vec![OP_STATS],
            Request::Shutdown => vec![OP_SHUTDOWN],
            Request::Subscribe { batch, credits } => {
                let mut out = vec![OP_SUBSCRIBE];
                out.extend_from_slice(&batch.to_le_bytes());
                out.extend_from_slice(&credits.to_le_bytes());
                out
            }
            Request::Credit { n } => {
                let mut out = vec![OP_CREDIT];
                out.extend_from_slice(&n.to_le_bytes());
                out
            }
            Request::Unsubscribe => vec![OP_UNSUBSCRIBE],
            Request::Sync { epoch } => {
                let mut out = vec![OP_SYNC];
                out.extend_from_slice(&epoch.to_le_bytes());
                out
            }
            Request::Warm {
                watermark,
                max_refills,
            } => {
                let mut out = vec![OP_WARM];
                out.extend_from_slice(&watermark.to_le_bytes());
                out.extend_from_slice(&max_refills.to_le_bytes());
                out
            }
            Request::Trace { max_events } => {
                let mut out = vec![OP_TRACE];
                out.extend_from_slice(&max_events.to_le_bytes());
                out
            }
            Request::Gossip { from, vector } => {
                let mut out = vec![OP_GOSSIP];
                out.extend_from_slice(&from.to_le_bytes());
                put_vector(&mut out, vector);
                out
            }
        }
    }

    /// Parses one message payload.
    ///
    /// # Errors
    ///
    /// [`ChannelError::Malformed`] on unknown opcodes, truncation, or
    /// trailing garbage.
    pub fn decode(bytes: &[u8]) -> Result<Request, ChannelError> {
        let (&op, rest) = bytes.split_first().ok_or_else(|| malformed(1, 0))?;
        let mut r = Reader::new(rest);
        let req = match op {
            OP_HELLO => Request::Hello {
                name: String::from_utf8_lossy(r.lp_bytes()?).into_owned(),
                epoch: r.u64()?,
            },
            OP_REQUEST_COT => Request::RequestCot { n: r.u64()? },
            OP_STATS => Request::Stats,
            OP_SHUTDOWN => Request::Shutdown,
            OP_SUBSCRIBE => Request::Subscribe {
                batch: r.u64()?,
                credits: r.u64()?,
            },
            OP_CREDIT => Request::Credit { n: r.u64()? },
            OP_UNSUBSCRIBE => Request::Unsubscribe,
            OP_SYNC => Request::Sync { epoch: r.u64()? },
            OP_WARM => Request::Warm {
                watermark: r.u64()?,
                max_refills: r.u64()?,
            },
            OP_TRACE => Request::Trace {
                max_events: r.u64()?,
            },
            OP_GOSSIP => Request::Gossip {
                from: r.u64()?,
                vector: read_vector(&mut r, rest)?,
            },
            _ => return Err(malformed(OP_HELLO as usize, op as usize)),
        };
        r.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Serializes to one message payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    /// Appends this message's payload to `out` (reusing its allocation);
    /// byte-identical to [`Response::encode`].
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Response::Welcome {
                version,
                max_request,
                epoch,
            } => {
                out.push(OP_WELCOME);
                out.extend_from_slice(&version.to_le_bytes());
                out.extend_from_slice(&max_request.to_le_bytes());
                out.extend_from_slice(&epoch.to_le_bytes());
            }
            Response::Cots(batch) => encode_cots_into(out, batch.as_slice()),
            Response::Stats(s) => {
                out.push(OP_STATS_REPLY);
                for v in [
                    s.clients_served,
                    s.cots_served,
                    s.extensions_run,
                    s.available,
                    s.shards,
                    s.warmup_refills,
                    s.scratch_reuses,
                    s.scratch_allocs,
                    s.register_failures,
                    s.directory_epoch,
                    s.pending_stream_cots,
                    s.uptime_nanos,
                    s.subscribers_evicted,
                    s.unavailable_sent,
                    s.faults_injected,
                ] {
                    out.extend_from_slice(&v.to_le_bytes());
                }
                s.latency.encode_into(out);
                out.extend_from_slice(&(s.shard_stats.len() as u64).to_le_bytes());
                for shard in &s.shard_stats {
                    out.extend_from_slice(&shard.available.to_le_bytes());
                    out.extend_from_slice(&shard.extensions_run.to_le_bytes());
                    out.extend_from_slice(&shard.taken.to_le_bytes());
                    out.extend_from_slice(&shard.warm_refills.to_le_bytes());
                    out.extend_from_slice(&shard.session_extensions.to_le_bytes());
                    out.extend_from_slice(&shard.session_stalls.to_le_bytes());
                    shard.latency.encode_into(out);
                }
            }
            Response::Goodbye => out.push(OP_GOODBYE),
            Response::CotChunk { seq, batch } => encode_cot_chunk_into(out, *seq, batch.as_slice()),
            Response::StreamEnd { chunks, cots } => {
                out.push(OP_STREAM_END);
                out.extend_from_slice(&chunks.to_le_bytes());
                out.extend_from_slice(&cots.to_le_bytes());
            }
            Response::WrongEpoch { epoch } => {
                out.push(OP_WRONG_EPOCH);
                out.extend_from_slice(&epoch.to_le_bytes());
            }
            Response::DirectoryUpdate(delta) => {
                out.push(OP_DIRECTORY_UPDATE);
                encode_delta_into(out, delta);
            }
            Response::GossipDelta(delta) => {
                out.push(OP_GOSSIP_DELTA);
                encode_delta_into(out, delta);
            }
            Response::DrainHandoff { id, addr, name } => {
                out.push(OP_DRAIN_HANDOFF);
                out.extend_from_slice(&id.to_le_bytes());
                put_lp_bytes(out, addr.as_bytes());
                put_lp_bytes(out, name.as_bytes());
            }
            Response::Warmed { refills } => {
                out.push(OP_WARMED);
                out.extend_from_slice(&refills.to_le_bytes());
            }
            Response::TraceDump(events) => {
                out.push(OP_TRACE_DUMP);
                out.extend_from_slice(&(events.len() as u64).to_le_bytes());
                for e in events {
                    out.extend_from_slice(&e.at_nanos.to_le_bytes());
                    out.push(e.kind.as_u8());
                    out.extend_from_slice(&e.arg.to_le_bytes());
                }
            }
            Response::Unavailable { retry_after_ms } => {
                out.push(OP_UNAVAILABLE);
                out.extend_from_slice(&retry_after_ms.to_le_bytes());
            }
            Response::Error(msg) => encode_error_into(out, msg),
        }
    }

    /// Parses one message payload.
    ///
    /// # Errors
    ///
    /// [`ChannelError::Malformed`] on unknown opcodes, truncation,
    /// trailing garbage, or an inconsistent COT batch.
    pub fn decode(bytes: &[u8]) -> Result<Response, ChannelError> {
        let (&op, rest) = bytes.split_first().ok_or_else(|| malformed(1, 0))?;
        let mut r = Reader::new(rest);
        let resp = match op {
            OP_WELCOME => Response::Welcome {
                version: r.u16()?,
                max_request: r.u64()?,
                epoch: r.u64()?,
            },
            OP_COTS => Response::Cots(read_batch(&mut r, rest)?),
            OP_STATS_REPLY => {
                let clients_served = r.u64()?;
                let cots_served = r.u64()?;
                let extensions_run = r.u64()?;
                let available = r.u64()?;
                let shards = r.u64()?;
                let warmup_refills = r.u64()?;
                let scratch_reuses = r.u64()?;
                let scratch_allocs = r.u64()?;
                let register_failures = r.u64()?;
                let directory_epoch = r.u64()?;
                let pending_stream_cots = r.u64()?;
                let uptime_nanos = r.u64()?;
                let subscribers_evicted = r.u64()?;
                let unavailable_sent = r.u64()?;
                let faults_injected = r.u64()?;
                let latency = LatencyStats::decode(&mut r)?;
                let count = r.u64()? as usize;
                // A hostile shard count must not drive allocation past the
                // actual payload (48 bytes of counters plus four empty
                // histograms is the smallest shard entry).
                const SHARD_MIN: usize = 48 + LatencyStats::ENCODED_MIN_LEN;
                let remaining = rest.len().saturating_sub(r.pos);
                if count
                    .checked_mul(SHARD_MIN)
                    .is_none_or(|need| need > remaining)
                {
                    return Err(malformed(count.saturating_mul(SHARD_MIN), remaining));
                }
                let shard_stats = (0..count)
                    .map(|_| {
                        Ok(ShardStat {
                            available: r.u64()?,
                            extensions_run: r.u64()?,
                            taken: r.u64()?,
                            warm_refills: r.u64()?,
                            session_extensions: r.u64()?,
                            session_stalls: r.u64()?,
                            latency: LatencyStats::decode(&mut r)?,
                        })
                    })
                    .collect::<Result<Vec<_>, ChannelError>>()?;
                Response::Stats(Box::new(ServiceStats {
                    clients_served,
                    cots_served,
                    extensions_run,
                    available,
                    shards,
                    warmup_refills,
                    scratch_reuses,
                    scratch_allocs,
                    register_failures,
                    directory_epoch,
                    pending_stream_cots,
                    uptime_nanos,
                    subscribers_evicted,
                    unavailable_sent,
                    faults_injected,
                    latency,
                    shard_stats,
                }))
            }
            OP_GOODBYE => Response::Goodbye,
            OP_COT_CHUNK => {
                let seq = r.u64()?;
                Response::CotChunk {
                    seq,
                    batch: read_batch(&mut r, rest)?,
                }
            }
            OP_STREAM_END => Response::StreamEnd {
                chunks: r.u64()?,
                cots: r.u64()?,
            },
            OP_WRONG_EPOCH => Response::WrongEpoch { epoch: r.u64()? },
            OP_DIRECTORY_UPDATE => Response::DirectoryUpdate(read_delta(&mut r, rest)?),
            OP_GOSSIP_DELTA => Response::GossipDelta(read_delta(&mut r, rest)?),
            OP_DRAIN_HANDOFF => Response::DrainHandoff {
                id: r.u64()?,
                addr: String::from_utf8_lossy(r.lp_bytes()?).into_owned(),
                name: String::from_utf8_lossy(r.lp_bytes()?).into_owned(),
            },
            OP_WARMED => Response::Warmed { refills: r.u64()? },
            OP_UNAVAILABLE => Response::Unavailable {
                retry_after_ms: r.u64()?,
            },
            OP_TRACE_DUMP => {
                let count = r.u64()? as usize;
                // A hostile event count must not drive allocation past the
                // actual payload.
                let remaining = rest.len().saturating_sub(r.pos);
                if count
                    .checked_mul(TRACE_EVENT_LEN)
                    .is_none_or(|need| need > remaining)
                {
                    return Err(malformed(count.saturating_mul(TRACE_EVENT_LEN), remaining));
                }
                let events = (0..count)
                    .map(|_| {
                        let at_nanos = r.u64()?;
                        let raw_kind = r.u8()?;
                        let kind = EventKind::from_u8(raw_kind)
                            .ok_or_else(|| malformed(EventKind::ALL.len(), raw_kind as usize))?;
                        Ok(TraceEvent {
                            at_nanos,
                            kind,
                            arg: r.u64()?,
                        })
                    })
                    .collect::<Result<Vec<_>, ChannelError>>()?;
                Response::TraceDump(events)
            }
            OP_ERROR => Response::Error(String::from_utf8_lossy(r.lp_bytes()?).into_owned()),
            _ => return Err(malformed(OP_WELCOME as usize, op as usize)),
        };
        r.finish()?;
        Ok(resp)
    }
}

/// What [`decode_response_into`] found: the batch-carrying hot cases
/// land in the caller's reused [`CotBatch`], everything else arrives as
/// an owned [`Response`].
#[derive(Debug)]
pub enum HotResponse {
    /// A [`Response::Cots`] payload; the batch is in the caller's buffer.
    Cots,
    /// A [`Response::CotChunk`] payload; the batch is in the caller's
    /// buffer.
    CotChunk {
        /// Zero-based chunk sequence number within the subscription.
        seq: u64,
    },
    /// Any non-batch response, decoded the ordinary (allocating) way.
    /// Boxed so the hot variants stay register-sized — this arm is the
    /// cold path, where one allocation is already happening anyway.
    Other(Box<Response>),
}

/// Decodes one response payload, steering the batch-carrying hot cases
/// (`Cots`/`CotChunk`) into `batch` — reusing its allocations — and
/// falling back to [`Response::decode`] for everything else. On the hot
/// cases this is the receive path's only payload copy (wire buffer →
/// caller's batch). On error (or a non-batch response) `batch`'s
/// contents are unspecified.
///
/// # Errors
///
/// Same failure modes as [`Response::decode`].
pub fn decode_response_into(
    bytes: &[u8],
    batch: &mut CotBatch,
) -> Result<HotResponse, ChannelError> {
    let (&op, rest) = bytes.split_first().ok_or_else(|| malformed(1, 0))?;
    match op {
        OP_COTS => {
            let mut r = Reader::new(rest);
            read_batch_into(&mut r, rest, batch)?;
            r.finish()?;
            Ok(HotResponse::Cots)
        }
        OP_COT_CHUNK => {
            let mut r = Reader::new(rest);
            let seq = r.u64()?;
            read_batch_into(&mut r, rest, batch)?;
            r.finish()?;
            Ok(HotResponse::CotChunk { seq })
        }
        _ => Response::decode(bytes).map(|resp| HotResponse::Other(Box::new(resp))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: Request) {
        assert_eq!(Request::decode(&req.encode()).unwrap(), req);
    }

    /// A `LatencyStats` with distinguishable content per field. Under the
    /// telemetry `noop` feature all four snapshots come back empty, which
    /// still exercises the (degenerate) wire layout.
    fn sample_latency(seed: u64) -> LatencyStats {
        let fill = |scale: u64| {
            let h = ironman_telemetry::Histogram::new();
            for i in 1..=16u64 {
                h.record(seed.wrapping_add(i * scale));
            }
            h.snapshot()
        };
        LatencyStats {
            request_first_byte: fill(3),
            chunk_push: fill(97),
            extension: fill(12_041),
            stall: fill(1_000_003),
        }
    }

    fn round_trip_response(resp: Response) {
        assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(Request::Hello {
            name: "resnet-worker-3".into(),
            epoch: 12,
        });
        round_trip_request(Request::Hello {
            name: "legacy".into(),
            epoch: EPOCH_UNAWARE,
        });
        round_trip_request(Request::RequestCot { n: 1 << 20 });
        round_trip_request(Request::Stats);
        round_trip_request(Request::Shutdown);
        round_trip_request(Request::Subscribe {
            batch: 4096,
            credits: 8,
        });
        round_trip_request(Request::Credit { n: 3 });
        round_trip_request(Request::Unsubscribe);
        round_trip_request(Request::Sync { epoch: 41 });
        round_trip_request(Request::Warm {
            watermark: 9000,
            max_refills: 2,
        });
        round_trip_request(Request::Trace { max_events: 256 });
        round_trip_request(Request::Gossip {
            from: 3,
            vector: vec![(1, 4), (2, 9), (u64::MAX, 1)],
        });
        round_trip_request(Request::Gossip {
            from: 0,
            vector: Vec::new(),
        });
    }

    #[test]
    fn responses_round_trip() {
        round_trip_response(Response::Welcome {
            version: 1,
            max_request: 9000,
            epoch: 17,
        });
        round_trip_response(Response::Goodbye);
        round_trip_response(Response::Error("pool exhausted".into()));
        round_trip_response(Response::WrongEpoch { epoch: 18 });
        round_trip_response(Response::Warmed { refills: 3 });
        round_trip_response(Response::Unavailable {
            retry_after_ms: 250,
        });
        let delta = DirectoryDelta {
            epoch: 9,
            full: false,
            vector: vec![(1, 5), (5, 4)],
            members: vec![
                MemberRecord {
                    id: 2,
                    state: MemberWireState::Left,
                    weight: 1,
                    origin: 1,
                    version: 5,
                    addr: "10.0.0.2:7000".into(),
                    name: "cot-2".into(),
                },
                MemberRecord {
                    id: 5,
                    state: MemberWireState::Up,
                    weight: 4,
                    origin: 5,
                    version: 3,
                    addr: "10.0.0.5:7000".into(),
                    name: "cot-5".into(),
                },
            ],
        };
        round_trip_response(Response::DirectoryUpdate(delta.clone()));
        round_trip_response(Response::GossipDelta(delta));
        round_trip_response(Response::DirectoryUpdate(DirectoryDelta {
            epoch: 1,
            full: true,
            vector: Vec::new(),
            members: Vec::new(),
        }));
        round_trip_response(Response::DrainHandoff {
            id: 7,
            addr: "10.0.0.7:7000".into(),
            name: "cot-7".into(),
        });
        round_trip_response(Response::Stats(Box::new(ServiceStats {
            clients_served: 4,
            cots_served: 1 << 22,
            extensions_run: 3,
            available: 77,
            shards: 2,
            warmup_refills: 5,
            scratch_reuses: 990,
            scratch_allocs: 6,
            register_failures: 1,
            directory_epoch: 13,
            pending_stream_cots: 16_000,
            uptime_nanos: 987_654_321,
            subscribers_evicted: 2,
            unavailable_sent: 9,
            faults_injected: 31,
            latency: sample_latency(7),
            shard_stats: vec![
                ShardStat {
                    available: 40,
                    extensions_run: 2,
                    taken: 900,
                    warm_refills: 2,
                    session_extensions: 6,
                    session_stalls: 1,
                    latency: sample_latency(11),
                },
                ShardStat {
                    available: 37,
                    extensions_run: 1,
                    taken: 400,
                    warm_refills: 0,
                    session_extensions: 5,
                    session_stalls: 0,
                    latency: LatencyStats::default(),
                },
            ],
        })));
        round_trip_response(Response::TraceDump(Vec::new()));
        round_trip_response(Response::TraceDump(
            EventKind::ALL
                .iter()
                .enumerate()
                .map(|(i, &kind)| TraceEvent {
                    at_nanos: 1_000 * i as u64,
                    kind,
                    arg: u64::MAX - i as u64,
                })
                .collect(),
        ));
        round_trip_response(Response::StreamEnd {
            chunks: 12,
            cots: 12 * 4096,
        });
        let batch = CotBatch {
            delta: Block::from(0xD5u128),
            z: vec![Block::from(1u128), Block::from(2u128), Block::from(3u128)],
            x: vec![true, false, true],
            y: vec![Block::from(4u128), Block::from(5u128), Block::from(6u128)],
        };
        round_trip_response(Response::CotChunk {
            seq: 7,
            batch: batch.clone(),
        });
        round_trip_response(Response::Cots(batch));
    }

    #[test]
    fn unknown_opcode_rejected() {
        assert!(Request::decode(&[0x7E]).is_err());
        assert!(Response::decode(&[0x7E]).is_err());
    }

    #[test]
    fn empty_payload_rejected() {
        assert!(Request::decode(&[]).is_err());
        assert!(Response::decode(&[]).is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = Request::Stats.encode();
        bytes.push(0);
        assert!(Request::decode(&bytes).is_err());
    }

    #[test]
    fn hostile_cot_count_rejected_without_allocation() {
        for op in [OP_COTS, OP_COT_CHUNK] {
            let mut bytes = vec![op];
            if op == OP_COT_CHUNK {
                bytes.extend_from_slice(&0u64.to_le_bytes()); // seq
            }
            bytes.extend_from_slice(&Block::ZERO.to_le_bytes());
            bytes.extend_from_slice(&u64::MAX.to_le_bytes());
            assert!(Response::decode(&bytes).is_err());
        }
    }

    #[test]
    fn hostile_shard_count_rejected_without_allocation() {
        let mut bytes = vec![OP_STATS_REPLY];
        for _ in 0..15 {
            bytes.extend_from_slice(&0u64.to_le_bytes());
        }
        LatencyStats::default().encode_into(&mut bytes); // service-wide
        bytes.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(Response::decode(&bytes).is_err());
    }

    #[test]
    fn hostile_event_count_rejected_without_allocation() {
        let mut bytes = vec![OP_TRACE_DUMP];
        bytes.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(Response::decode(&bytes).is_err());
    }

    #[test]
    fn unknown_event_kind_rejected() {
        let mut bytes = vec![OP_TRACE_DUMP];
        bytes.extend_from_slice(&1u64.to_le_bytes());
        bytes.extend_from_slice(&42u64.to_le_bytes()); // at_nanos
        bytes.push(EventKind::ALL.len() as u8); // one past the last kind
        bytes.extend_from_slice(&0u64.to_le_bytes()); // arg
        assert!(Response::decode(&bytes).is_err());
    }

    #[test]
    fn truncated_stats_histogram_rejected() {
        let good = Response::Stats(Box::new(ServiceStats {
            shards: 1,
            latency: sample_latency(3),
            shard_stats: vec![ShardStat {
                latency: sample_latency(5),
                ..ShardStat::default()
            }],
            ..ServiceStats::default()
        }))
        .encode();
        // Chop the tail off: every truncation point must be rejected, not
        // silently decoded as fewer/emptier histograms.
        for cut in 1..=LatencyStats::ENCODED_MIN_LEN {
            assert!(Response::decode(&good[..good.len() - cut]).is_err());
        }
    }

    #[test]
    fn hostile_member_count_rejected_without_allocation() {
        for op in [OP_DIRECTORY_UPDATE, OP_GOSSIP_DELTA] {
            let mut bytes = vec![op];
            bytes.extend_from_slice(&7u64.to_le_bytes()); // epoch
            bytes.push(0); // full
            bytes.extend_from_slice(&0u64.to_le_bytes()); // empty vector
            bytes.extend_from_slice(&u64::MAX.to_le_bytes()); // member count
            assert!(Response::decode(&bytes).is_err());
        }
    }

    #[test]
    fn hostile_vector_count_rejected_without_allocation() {
        let mut gossip = vec![OP_GOSSIP];
        gossip.extend_from_slice(&1u64.to_le_bytes()); // from
        gossip.extend_from_slice(&u64::MAX.to_le_bytes()); // vector count
        assert!(Request::decode(&gossip).is_err());

        let mut delta = vec![OP_GOSSIP_DELTA];
        delta.extend_from_slice(&7u64.to_le_bytes()); // epoch
        delta.push(1); // full
        delta.extend_from_slice(&u64::MAX.to_le_bytes()); // vector count
        assert!(Response::decode(&delta).is_err());
    }

    #[test]
    fn decode_response_into_reuses_the_batch() {
        let batch = CotBatch {
            delta: Block::from(0xD5u128),
            z: vec![Block::from(1u128), Block::from(2u128)],
            x: vec![true, false],
            y: vec![Block::from(4u128), Block::from(5u128)],
        };
        let mut reused = CotBatch::default();
        match decode_response_into(&Response::Cots(batch.clone()).encode(), &mut reused).unwrap() {
            HotResponse::Cots => assert_eq!(reused, batch),
            other => panic!("unexpected {other:?}"),
        }
        let chunk = Response::CotChunk {
            seq: 9,
            batch: batch.clone(),
        };
        match decode_response_into(&chunk.encode(), &mut reused).unwrap() {
            HotResponse::CotChunk { seq } => {
                assert_eq!(seq, 9);
                assert_eq!(reused, batch);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Non-batch responses pass through untouched.
        match decode_response_into(&Response::Goodbye.encode(), &mut reused).unwrap() {
            HotResponse::Other(other) => assert_eq!(*other, Response::Goodbye),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn borrowed_encoders_match_owned_encoding() {
        let batch = CotBatch {
            delta: Block::from(7u128),
            z: vec![Block::from(1u128); 5],
            x: vec![true, false, true, false, true],
            y: vec![Block::from(2u128); 5],
        };
        let mut buf = Vec::new();
        encode_cots_into(&mut buf, batch.as_slice());
        assert_eq!(buf, Response::Cots(batch.clone()).encode());
        buf.clear();
        encode_cot_chunk_into(&mut buf, 3, batch.as_slice());
        assert_eq!(
            buf,
            Response::CotChunk {
                seq: 3,
                batch: batch.clone()
            }
            .encode()
        );
        buf.clear();
        encode_error_into(&mut buf, "nope");
        assert_eq!(buf, Response::Error("nope".into()).encode());
    }

    #[test]
    fn split_encoders_reassemble_to_contiguous_bytes() {
        let batch = CotBatch {
            delta: Block::from(0xd3317au128),
            z: (0..13).map(|i| Block::from(i as u128 * 3 + 1)).collect(),
            x: (0..13).map(|i| i % 3 == 0).collect(),
            y: (0..13).map(|i| Block::from(i as u128 * 7 + 2)).collect(),
        };
        for seq in [None, Some(41u64)] {
            let mut contiguous = Vec::new();
            match seq {
                Some(s) => encode_cot_chunk_into(&mut contiguous, s, batch.as_slice()),
                None => encode_cots_into(&mut contiguous, batch.as_slice()),
            }

            let (mut head, mut tail) = (Vec::new(), Vec::new());
            let (mut zs, mut ys) = (Vec::new(), Vec::new());
            let (z, y) = match seq {
                Some(s) => encode_cot_chunk_split(
                    &mut head,
                    &mut tail,
                    &mut zs,
                    &mut ys,
                    s,
                    batch.as_slice(),
                ),
                None => encode_cots_split(&mut head, &mut tail, &mut zs, &mut ys, batch.as_slice()),
            };
            // [head, z, y, tail] in order is the contiguous encoding.
            let glued: Vec<u8> = [head.as_slice(), z, y, &tail].concat();
            assert_eq!(glued, contiguous);
            // On little-endian targets the block runs alias pool storage:
            // nothing was staged.
            if cfg!(target_endian = "little") {
                assert!(zs.is_empty() && ys.is_empty());
            }
        }
    }
}
