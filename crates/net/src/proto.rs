//! The COT service's request/response protocol.
//!
//! One request frame, one response frame, both `opcode || fields` with
//! little-endian integers. Blocks are 16-byte little-endian; bit vectors
//! use the same `encode_bits` framing as every transport helper, so a
//! message parses identically whether it crossed a socket or an
//! in-process channel.
//!
//! ```text
//! requests                         responses
//! 0x01 Hello   { name: lp-bytes }  0x81 Welcome { version: u16, max_request: u64 }
//! 0x02 Request { n: u64 }          0x82 Cots    { delta, n, z[n], y[n], bits(x) }
//! 0x03 Stats                       0x83 Stats   { 5 × u64 }
//! 0x04 Shutdown                    0x84 Goodbye
//!                                  0xFF Error   { message: lp-bytes }
//! ```
//!
//! (`lp-bytes` = `u64` length + raw bytes; `bits(..)` = shared
//! [`encode_bits`] layout.)

use ironman_core::CotBatch;
use ironman_ot::channel::{decode_bits, encode_bits, ChannelError};
use ironman_prg::Block;

/// Client → server messages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Opens a session (client self-identification, for server logs/stats).
    Hello {
        /// Client display name.
        name: String,
    },
    /// Asks for `n` fresh correlations.
    RequestCot {
        /// Batch size.
        n: u64,
    },
    /// Asks for a service statistics snapshot.
    Stats,
    /// Asks the server to stop accepting new sessions and exit.
    Shutdown,
}

/// Server → client messages.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Session accepted.
    Welcome {
        /// Server wire version.
        version: u16,
        /// Largest `RequestCot::n` one request may carry.
        max_request: u64,
    },
    /// A correlation batch (trusted-dealer style: both endpoints' shares).
    Cots(CotBatch),
    /// Service statistics snapshot.
    Stats(ServiceStats),
    /// Acknowledges a shutdown; the connection closes after this.
    Goodbye,
    /// The request could not be served.
    Error(
        /// Human-readable reason.
        String,
    ),
}

/// A point-in-time view of the service's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Sessions accepted since start.
    pub clients_served: u64,
    /// Correlations handed out since start.
    pub cots_served: u64,
    /// FERRET extensions executed across all pool shards.
    pub extensions_run: u64,
    /// Correlations currently buffered across all shards.
    pub available: u64,
    /// Pool shard count.
    pub shards: u64,
}

const OP_HELLO: u8 = 0x01;
const OP_REQUEST_COT: u8 = 0x02;
const OP_STATS: u8 = 0x03;
const OP_SHUTDOWN: u8 = 0x04;
const OP_WELCOME: u8 = 0x81;
const OP_COTS: u8 = 0x82;
const OP_STATS_REPLY: u8 = 0x83;
const OP_GOODBYE: u8 = 0x84;
const OP_ERROR: u8 = 0xFF;

fn put_lp_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
    out.extend_from_slice(bytes);
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ChannelError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| ChannelError::Malformed {
                expected: self.pos.saturating_add(n),
                actual: self.bytes.len(),
            })?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u64(&mut self) -> Result<u64, ChannelError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8-byte slice"),
        ))
    }

    fn u16(&mut self) -> Result<u16, ChannelError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2-byte slice"),
        ))
    }

    fn block(&mut self) -> Result<Block, ChannelError> {
        Ok(Block::from_le_bytes(
            self.take(16)?.try_into().expect("16-byte slice"),
        ))
    }

    fn blocks(&mut self, n: usize) -> Result<Vec<Block>, ChannelError> {
        (0..n).map(|_| self.block()).collect()
    }

    fn lp_bytes(&mut self) -> Result<&'a [u8], ChannelError> {
        let len = self.u64()? as usize;
        self.take(len)
    }

    fn finish(self) -> Result<(), ChannelError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(ChannelError::Malformed {
                expected: self.pos,
                actual: self.bytes.len(),
            })
        }
    }
}

fn malformed(expected: usize, actual: usize) -> ChannelError {
    ChannelError::Malformed { expected, actual }
}

impl Request {
    /// Serializes to one message payload.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Request::Hello { name } => {
                let mut out = vec![OP_HELLO];
                put_lp_bytes(&mut out, name.as_bytes());
                out
            }
            Request::RequestCot { n } => {
                let mut out = vec![OP_REQUEST_COT];
                out.extend_from_slice(&n.to_le_bytes());
                out
            }
            Request::Stats => vec![OP_STATS],
            Request::Shutdown => vec![OP_SHUTDOWN],
        }
    }

    /// Parses one message payload.
    ///
    /// # Errors
    ///
    /// [`ChannelError::Malformed`] on unknown opcodes, truncation, or
    /// trailing garbage.
    pub fn decode(bytes: &[u8]) -> Result<Request, ChannelError> {
        let (&op, rest) = bytes.split_first().ok_or_else(|| malformed(1, 0))?;
        let mut r = Reader::new(rest);
        let req = match op {
            OP_HELLO => Request::Hello {
                name: String::from_utf8_lossy(r.lp_bytes()?).into_owned(),
            },
            OP_REQUEST_COT => Request::RequestCot { n: r.u64()? },
            OP_STATS => Request::Stats,
            OP_SHUTDOWN => Request::Shutdown,
            _ => return Err(malformed(OP_HELLO as usize, op as usize)),
        };
        r.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Serializes to one message payload.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Response::Welcome {
                version,
                max_request,
            } => {
                let mut out = vec![OP_WELCOME];
                out.extend_from_slice(&version.to_le_bytes());
                out.extend_from_slice(&max_request.to_le_bytes());
                out
            }
            Response::Cots(batch) => {
                let mut out =
                    Vec::with_capacity(1 + 16 + 8 + 32 * batch.len() + batch.len() / 8 + 8);
                out.push(OP_COTS);
                out.extend_from_slice(&batch.delta.to_le_bytes());
                out.extend_from_slice(&(batch.len() as u64).to_le_bytes());
                for b in &batch.z {
                    out.extend_from_slice(&b.to_le_bytes());
                }
                for b in &batch.y {
                    out.extend_from_slice(&b.to_le_bytes());
                }
                out.extend_from_slice(&encode_bits(&batch.x));
                out
            }
            Response::Stats(s) => {
                let mut out = vec![OP_STATS_REPLY];
                for v in [
                    s.clients_served,
                    s.cots_served,
                    s.extensions_run,
                    s.available,
                    s.shards,
                ] {
                    out.extend_from_slice(&v.to_le_bytes());
                }
                out
            }
            Response::Goodbye => vec![OP_GOODBYE],
            Response::Error(msg) => {
                let mut out = vec![OP_ERROR];
                put_lp_bytes(&mut out, msg.as_bytes());
                out
            }
        }
    }

    /// Parses one message payload.
    ///
    /// # Errors
    ///
    /// [`ChannelError::Malformed`] on unknown opcodes, truncation,
    /// trailing garbage, or an inconsistent COT batch.
    pub fn decode(bytes: &[u8]) -> Result<Response, ChannelError> {
        let (&op, rest) = bytes.split_first().ok_or_else(|| malformed(1, 0))?;
        let mut r = Reader::new(rest);
        let resp = match op {
            OP_WELCOME => Response::Welcome {
                version: r.u16()?,
                max_request: r.u64()?,
            },
            OP_COTS => {
                let delta = r.block()?;
                let n = r.u64()? as usize;
                // A hostile count must not drive allocation past the
                // actual payload: n blocks of z and y still have to fit.
                let remaining = rest.len().saturating_sub(r.pos);
                if n.checked_mul(32).is_none_or(|need| need > remaining) {
                    return Err(malformed(n.saturating_mul(32), remaining));
                }
                let z = r.blocks(n)?;
                let y = r.blocks(n)?;
                let x = decode_bits(r.take(rest.len() - r.pos)?)?;
                if x.len() != n {
                    return Err(malformed(n, x.len()));
                }
                Response::Cots(CotBatch { delta, z, x, y })
            }
            OP_STATS_REPLY => Response::Stats(ServiceStats {
                clients_served: r.u64()?,
                cots_served: r.u64()?,
                extensions_run: r.u64()?,
                available: r.u64()?,
                shards: r.u64()?,
            }),
            OP_GOODBYE => Response::Goodbye,
            OP_ERROR => Response::Error(String::from_utf8_lossy(r.lp_bytes()?).into_owned()),
            _ => return Err(malformed(OP_WELCOME as usize, op as usize)),
        };
        r.finish()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: Request) {
        assert_eq!(Request::decode(&req.encode()).unwrap(), req);
    }

    fn round_trip_response(resp: Response) {
        assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(Request::Hello {
            name: "resnet-worker-3".into(),
        });
        round_trip_request(Request::RequestCot { n: 1 << 20 });
        round_trip_request(Request::Stats);
        round_trip_request(Request::Shutdown);
    }

    #[test]
    fn responses_round_trip() {
        round_trip_response(Response::Welcome {
            version: 1,
            max_request: 9000,
        });
        round_trip_response(Response::Goodbye);
        round_trip_response(Response::Error("pool exhausted".into()));
        round_trip_response(Response::Stats(ServiceStats {
            clients_served: 4,
            cots_served: 1 << 22,
            extensions_run: 3,
            available: 77,
            shards: 4,
        }));
        let batch = CotBatch {
            delta: Block::from(0xD5u128),
            z: vec![Block::from(1u128), Block::from(2u128), Block::from(3u128)],
            x: vec![true, false, true],
            y: vec![Block::from(4u128), Block::from(5u128), Block::from(6u128)],
        };
        round_trip_response(Response::Cots(batch));
    }

    #[test]
    fn unknown_opcode_rejected() {
        assert!(Request::decode(&[0x7E]).is_err());
        assert!(Response::decode(&[0x7E]).is_err());
    }

    #[test]
    fn empty_payload_rejected() {
        assert!(Request::decode(&[]).is_err());
        assert!(Response::decode(&[]).is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = Request::Stats.encode();
        bytes.push(0);
        assert!(Request::decode(&bytes).is_err());
    }

    #[test]
    fn hostile_cot_count_rejected_without_allocation() {
        let mut bytes = vec![OP_COTS];
        bytes.extend_from_slice(&Block::ZERO.to_le_bytes());
        bytes.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(Response::decode(&bytes).is_err());
    }
}
