//! Data-path deadlines and retry discipline (v8).
//!
//! [`OpTimeouts`] is the one knob for how long any data-path operation
//! may block: connect, read, write. [`CotClient::connect`] applies the
//! defaults, so no caller hangs forever on a silent peer by accident.
//!
//! [`RetryPolicy`] produces exponential backoff with *decorrelated
//! jitter* (`sleep = min(cap, rand(base, prev * 3))`, per the AWS
//! architecture blog) from a seeded xorshift64 PRNG — deterministic
//! under test, storm-free in a fleet. [`RetryBudget`] is a token bucket
//! that caps how many retries a client may spend per unit time: when
//! the budget is dry, failures surface immediately instead of amplifying
//! an outage with synchronized re-sends.
//!
//! [`CotClient`]: crate::service::CotClient

use std::time::{Duration, Instant};

/// Per-operation deadlines for the data path.
///
/// `read`/`write` become `SO_RCVTIMEO`/`SO_SNDTIMEO` on the session
/// socket; an expired deadline surfaces as the typed
/// `ChannelError::TimedOut`, which feeds failover/cooldown rather than
/// being conflated with hard IO errors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OpTimeouts {
    /// TCP connect deadline (per resolved address candidate).
    pub connect: Duration,
    /// Socket read deadline for one blocking `recv`.
    pub read: Duration,
    /// Socket write deadline for one blocking `send`.
    pub write: Duration,
}

impl Default for OpTimeouts {
    /// Generous serving defaults: tight enough that a blackholed peer
    /// cannot pin a caller, loose enough that a debug-build extension
    /// under load never trips them.
    fn default() -> OpTimeouts {
        OpTimeouts {
            connect: Duration::from_secs(2),
            read: Duration::from_secs(10),
            write: Duration::from_secs(10),
        }
    }
}

impl OpTimeouts {
    /// One uniform deadline for all three operations.
    pub fn uniform(d: Duration) -> OpTimeouts {
        OpTimeouts {
            connect: d,
            read: d,
            write: d,
        }
    }
}

/// Exponential backoff with decorrelated jitter.
///
/// Each step draws uniformly from `[base, prev * 3]`, clamped to
/// `[base, cap]` — successive sleeps grow roughly exponentially but
/// desynchronize across clients, so a healed server is not hit by a
/// thundering herd. Seeded: the same seed replays the same sleeps.
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    base: Duration,
    cap: Duration,
    prev: Duration,
    rng: u64,
}

impl RetryPolicy {
    /// A policy sleeping between `base` and `cap` per step.
    pub fn new(base: Duration, cap: Duration, seed: u64) -> RetryPolicy {
        let base = base.max(Duration::from_micros(1));
        RetryPolicy {
            base,
            cap: cap.max(base),
            prev: base,
            rng: seed | 1,
        }
    }

    /// Sensible data-path defaults: 25 ms base, 1 s cap.
    pub fn default_with_seed(seed: u64) -> RetryPolicy {
        RetryPolicy::new(Duration::from_millis(25), Duration::from_secs(1), seed)
    }

    /// The largest sleep one step can produce.
    pub fn cap(&self) -> Duration {
        self.cap
    }

    /// The next backoff to sleep. Grows (jittered) until [`reset`]
    /// after a success.
    ///
    /// [`reset`]: RetryPolicy::reset
    pub fn next_backoff(&mut self) -> Duration {
        let hi = self
            .prev
            .saturating_mul(3)
            .min(self.cap)
            .max(self.base)
            .as_nanos() as u64;
        let lo = self.base.as_nanos() as u64;
        let span = hi.saturating_sub(lo);
        let draw = if span == 0 {
            lo
        } else {
            lo + self.next_rand() % (span + 1)
        };
        self.prev = Duration::from_nanos(draw);
        self.prev
    }

    /// Collapses back to the base sleep after a success.
    pub fn reset(&mut self) {
        self.prev = self.base;
    }

    fn next_rand(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }
}

/// A token-bucket retry budget: `capacity` tokens, refilled at
/// `per_second` tokens per second. Each retry spends one token; when
/// the bucket is dry the caller must surface the failure instead of
/// retrying — the circuit breaker against retry storms.
#[derive(Clone, Debug)]
pub struct RetryBudget {
    capacity: f64,
    per_second: f64,
    tokens: f64,
    last_refill: Instant,
}

impl RetryBudget {
    /// A full bucket.
    pub fn new(capacity: u32, per_second: f64) -> RetryBudget {
        let capacity = f64::from(capacity.max(1));
        RetryBudget {
            capacity,
            per_second: per_second.max(0.0),
            tokens: capacity,
            last_refill: Instant::now(),
        }
    }

    /// Serving default: 10 retries burst, 1 earned back per second.
    pub fn default_serving() -> RetryBudget {
        RetryBudget::new(10, 1.0)
    }

    /// Spends one token if available. `false` means the budget is
    /// exhausted and the failure must propagate.
    pub fn try_spend(&mut self) -> bool {
        self.refill();
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Whole tokens currently available.
    pub fn available(&mut self) -> u32 {
        self.refill();
        self.tokens as u32
    }

    fn refill(&mut self) {
        let now = Instant::now();
        let dt = now.duration_since(self.last_refill).as_secs_f64();
        self.last_refill = now;
        self.tokens = (self.tokens + dt * self.per_second).min(self.capacity);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_stays_within_bounds_and_grows() {
        let base = Duration::from_millis(10);
        let cap = Duration::from_millis(500);
        let mut policy = RetryPolicy::new(base, cap, 99);
        let mut prev = base;
        for _ in 0..50 {
            let next = policy.next_backoff();
            assert!(next >= base, "below base: {next:?}");
            assert!(next <= cap, "above cap: {next:?}");
            assert!(
                next <= prev.saturating_mul(3).min(cap).max(base),
                "grew faster than 3x"
            );
            prev = next;
        }
    }

    #[test]
    fn backoff_is_deterministic_per_seed() {
        let mk = |seed| {
            let mut p = RetryPolicy::default_with_seed(seed);
            (0..8).map(|_| p.next_backoff()).collect::<Vec<_>>()
        };
        assert_eq!(mk(7), mk(7));
        assert_ne!(mk(7), mk(8));
    }

    #[test]
    fn reset_collapses_to_base() {
        let mut policy = RetryPolicy::new(Duration::from_millis(10), Duration::from_secs(1), 3);
        for _ in 0..10 {
            policy.next_backoff();
        }
        policy.reset();
        assert!(policy.next_backoff() <= Duration::from_millis(30));
    }

    #[test]
    fn budget_exhausts_then_refills() {
        let mut budget = RetryBudget::new(3, 1000.0);
        assert!(budget.try_spend());
        assert!(budget.try_spend());
        assert!(budget.try_spend());
        // 1000 tokens/s refills fast enough that this never flakes; the
        // interesting edge (dry bucket) needs a zero refill rate.
        let mut dry = RetryBudget::new(2, 0.0);
        assert!(dry.try_spend());
        assert!(dry.try_spend());
        assert!(!dry.try_spend(), "dry bucket must refuse");
        assert!(!dry.try_spend());
        std::thread::sleep(Duration::from_millis(5));
        let mut fast = budget;
        assert!(fast.try_spend(), "high refill rate must recover");
    }

    #[test]
    fn default_timeouts_are_finite() {
        let t = OpTimeouts::default();
        assert!(t.connect > Duration::ZERO);
        assert!(t.read > Duration::ZERO);
        assert!(t.write > Duration::ZERO);
        let u = OpTimeouts::uniform(Duration::from_millis(250));
        assert_eq!(u.connect, u.read);
        assert_eq!(u.read, u.write);
    }
}
