//! Seeded, deterministic fault injection for socket transports (v8).
//!
//! A [`FaultPlan`] describes *what* to inject — added latency, read/write
//! stalls, partial writes, a connection reset at byte N, bit-flipped
//! reads, blackhole-after-accept — and a [`FaultInjector`] owns the plan
//! plus a seeded xorshift64 PRNG, so the same seed replays the same fault
//! sequence run after run. [`FaultyStream`] wraps any `Read`/`Write`
//! half below the framing layer; the [`crate::service::CotService`]
//! wraps every accepted session this way, sharing one injector, so a
//! fleet-level chaos schedule can corrupt or heal a *live* server's
//! links without reconnecting anything.
//!
//! The production cost is one relaxed atomic load per buffered I/O call
//! while no plan is armed — the same class of overhead as the serving
//! counters, held to the bench floors and the telemetry gate in CI.

use ironman_telemetry::{EventKind, TraceLog};
use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// How long a blackholed read sleeps per poll of the (possibly healed)
/// plan. Small enough that a heal frees the pinned thread promptly.
const BLACKHOLE_POLL: Duration = Duration::from_millis(5);

/// Hard bound on one blackholed read: after this the read fails with
/// `TimedOut` so a server thread is never pinned forever by a plan
/// nobody heals.
const BLACKHOLE_CAP: Duration = Duration::from_secs(30);

/// The injectable fault classes, used for per-kind counters and as the
/// `FaultInjected` trace-event argument.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum FaultKind {
    /// Fixed added latency on an I/O call.
    Latency = 0,
    /// A probabilistic one-shot stall (sleep) on an I/O call.
    Stall = 1,
    /// A write truncated to the plan's partial-write cap (the caller's
    /// `write_all` loop survives it; the kernel sees many small writes).
    PartialWrite = 2,
    /// A connection reset once the byte budget is spent.
    Reset = 3,
    /// A bit flipped in received bytes (corrupt frame on the wire).
    BitFlip = 4,
    /// Reads hang (bounded) and writes vanish: the peer accepted the
    /// connection and went silent.
    Blackhole = 5,
}

impl FaultKind {
    /// Every kind, indexable by discriminant.
    pub const ALL: [FaultKind; 6] = [
        FaultKind::Latency,
        FaultKind::Stall,
        FaultKind::PartialWrite,
        FaultKind::Reset,
        FaultKind::BitFlip,
        FaultKind::Blackhole,
    ];
}

/// What to inject. `Default` injects nothing; arm only the fields a
/// scenario needs. All probabilities are per I/O call in `[0, 1]`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// Fixed latency added to every read.
    pub read_latency: Duration,
    /// Fixed latency added to every write.
    pub write_latency: Duration,
    /// Probability that an I/O call stalls for [`FaultPlan::stall`].
    pub stall_probability: f64,
    /// Stall duration when a stall fires.
    pub stall: Duration,
    /// Cap writes at this many bytes per call (partial writes).
    pub partial_write_cap: Option<usize>,
    /// Fail with `ConnectionReset` once this many bytes (reads + writes
    /// combined) have crossed the wrapper since the plan was armed.
    pub reset_after_bytes: Option<u64>,
    /// Probability that a read's bytes get one bit flipped.
    pub flip_probability: f64,
    /// Blackhole: reads block (bounded, heal-aware) and writes are
    /// silently discarded — the SYN-accepting-but-silent server.
    pub blackhole: bool,
}

impl FaultPlan {
    /// Whether this plan injects anything at all.
    pub fn is_noop(&self) -> bool {
        *self == FaultPlan::default()
    }
}

#[derive(Debug)]
struct FaultState {
    /// Fast-path gate: a single relaxed load decides "no plan armed".
    enabled: AtomicBool,
    plan: Mutex<FaultPlan>,
    /// Seeded xorshift64 state (never zero).
    rng: Mutex<u64>,
    /// Bytes through the wrapper since the current plan was armed
    /// (drives `reset_after_bytes`).
    bytes_since_armed: AtomicU64,
    injected: AtomicU64,
    per_kind: [AtomicU64; FaultKind::ALL.len()],
    /// Optional trace sink: each fired fault is pushed as a
    /// `FaultInjected` event (arg: the fault-kind discriminant). Only
    /// consulted while a plan is armed, so the disarmed fast path never
    /// touches it.
    trace: Mutex<Option<Arc<TraceLog>>>,
}

/// A shared, live-reconfigurable fault source. Cloning shares the plan,
/// PRNG, and counters; every [`FaultyStream`] wrapped from one injector
/// draws from the same deterministic sequence.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    state: Arc<FaultState>,
}

impl FaultInjector {
    /// A disarmed injector with a seeded PRNG.
    pub fn new(seed: u64) -> FaultInjector {
        FaultInjector {
            state: Arc::new(FaultState {
                enabled: AtomicBool::new(false),
                plan: Mutex::new(FaultPlan::default()),
                rng: Mutex::new(seed | 1),
                bytes_since_armed: AtomicU64::new(0),
                injected: AtomicU64::new(0),
                per_kind: Default::default(),
                trace: Mutex::new(None),
            }),
        }
    }

    /// Arms `plan` on every stream wrapped from this injector — live
    /// ones included. Resets the byte budget so `reset_after_bytes`
    /// counts from now.
    pub fn set_plan(&self, plan: FaultPlan) {
        let enable = !plan.is_noop();
        *self.lock_plan() = plan;
        self.state.bytes_since_armed.store(0, Ordering::Relaxed);
        self.state.enabled.store(enable, Ordering::Release);
    }

    /// Heals: disarms the plan on every wrapped stream.
    pub fn clear(&self) {
        self.set_plan(FaultPlan::default());
    }

    /// Whether a plan is currently armed.
    pub fn is_armed(&self) -> bool {
        self.state.enabled.load(Ordering::Acquire)
    }

    /// Total faults fired since construction.
    pub fn injected(&self) -> u64 {
        self.state.injected.load(Ordering::Relaxed)
    }

    /// Faults of one kind fired since construction.
    pub fn injected_of(&self, kind: FaultKind) -> u64 {
        self.state.per_kind[kind as usize].load(Ordering::Relaxed)
    }

    /// Attaches a trace sink: every fired fault is recorded as a
    /// `FaultInjected` event with its kind discriminant as the argument.
    pub fn set_trace(&self, trace: Arc<TraceLog>) {
        *self
            .state
            .trace
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner()) = Some(trace);
    }

    /// Wraps one `Read`/`Write` half; all wrapped halves share this
    /// injector's plan, PRNG, and counters.
    pub fn wrap<S>(&self, inner: S) -> FaultyStream<S> {
        FaultyStream {
            inner,
            state: Arc::clone(&self.state),
        }
    }

    fn lock_plan(&self) -> std::sync::MutexGuard<'_, FaultPlan> {
        self.state
            .plan
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl FaultState {
    fn fire(&self, kind: FaultKind) {
        self.injected.fetch_add(1, Ordering::Relaxed);
        self.per_kind[kind as usize].fetch_add(1, Ordering::Relaxed);
        if let Some(trace) = self
            .trace
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .as_ref()
        {
            trace.push(EventKind::FaultInjected, kind as u64);
        }
    }

    /// One xorshift64 step (same generator as the observer's jitter).
    fn next_rand(&self) -> u64 {
        let mut rng = self.rng.lock().unwrap_or_else(|p| p.into_inner());
        let mut x = *rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *rng = x;
        x
    }

    /// Deterministic Bernoulli draw.
    fn chance(&self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // Compare in the integer domain: keeps the draw exact under the
        // same seed regardless of float rounding on the threshold side.
        ((self.next_rand() >> 11) as f64) < p * (1u64 << 53) as f64
    }

    fn plan_snapshot(&self) -> FaultPlan {
        self.plan
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .clone()
    }

    /// The shared pre-op gate: latency, stall, byte-budget reset. Returns
    /// the plan for the caller's op-specific faults, or `None` when the
    /// injector is disarmed.
    fn before_op(&self, is_read: bool) -> io::Result<Option<FaultPlan>> {
        if !self.enabled.load(Ordering::Acquire) {
            return Ok(None);
        }
        let plan = self.plan_snapshot();
        if let Some(budget) = plan.reset_after_bytes {
            if self.bytes_since_armed.load(Ordering::Relaxed) >= budget {
                self.fire(FaultKind::Reset);
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionReset,
                    "injected connection reset",
                ));
            }
        }
        let latency = if is_read {
            plan.read_latency
        } else {
            plan.write_latency
        };
        if !latency.is_zero() {
            self.fire(FaultKind::Latency);
            std::thread::sleep(latency);
        }
        if self.chance(plan.stall_probability) && !plan.stall.is_zero() {
            self.fire(FaultKind::Stall);
            std::thread::sleep(plan.stall);
        }
        Ok(Some(plan))
    }

    /// Blackhole read: block in short heal-aware polls, bounded so a
    /// forgotten plan cannot pin a thread forever.
    fn blackhole_read(&self) -> io::Result<usize> {
        self.fire(FaultKind::Blackhole);
        let mut waited = Duration::ZERO;
        while waited < BLACKHOLE_CAP {
            std::thread::sleep(BLACKHOLE_POLL);
            waited += BLACKHOLE_POLL;
            if !self.enabled.load(Ordering::Acquire) || !self.plan_snapshot().blackhole {
                // Healed mid-read: report a retryable timeout rather than
                // inventing bytes.
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "blackhole healed mid-read",
                ));
            }
        }
        Err(io::Error::new(
            io::ErrorKind::TimedOut,
            "injected blackhole read",
        ))
    }
}

/// One `Read`/`Write` half with faults injected per its injector's
/// armed [`FaultPlan`]. Transparent (one relaxed load per call) while
/// the injector is disarmed.
#[derive(Debug)]
pub struct FaultyStream<S> {
    inner: S,
    state: Arc<FaultState>,
}

impl<S> FaultyStream<S> {
    /// The wrapped stream.
    pub fn get_ref(&self) -> &S {
        &self.inner
    }
}

impl<S: Read> Read for FaultyStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let Some(plan) = self.state.before_op(true)? else {
            return self.inner.read(buf);
        };
        if plan.blackhole {
            return self.state.blackhole_read();
        }
        let n = self.inner.read(buf)?;
        self.state
            .bytes_since_armed
            .fetch_add(n as u64, Ordering::Relaxed);
        if n > 0 && self.state.chance(plan.flip_probability) {
            let bit = self.state.next_rand() as usize % (n * 8);
            buf[bit / 8] ^= 1 << (bit % 8);
            self.state.fire(FaultKind::BitFlip);
        }
        Ok(n)
    }
}

impl<S: Write> Write for FaultyStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let Some(plan) = self.state.before_op(false)? else {
            return self.inner.write(buf);
        };
        if plan.blackhole {
            // Claim success, deliver nothing: the classic silent peer.
            self.state.fire(FaultKind::Blackhole);
            return Ok(buf.len());
        }
        let cap = plan.partial_write_cap.unwrap_or(usize::MAX).max(1);
        let slice = if buf.len() > cap {
            self.state.fire(FaultKind::PartialWrite);
            &buf[..cap]
        } else {
            buf
        };
        let n = self.inner.write(slice)?;
        self.state
            .bytes_since_armed
            .fetch_add(n as u64, Ordering::Relaxed);
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.state.enabled.load(Ordering::Acquire) && self.state.plan_snapshot().blackhole {
            return Ok(());
        }
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An in-memory sink that records everything written.
    #[derive(Default)]
    struct Sink(Vec<u8>);
    impl Write for Sink {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn disarmed_injector_is_transparent() {
        let injector = FaultInjector::new(7);
        let mut reader = injector.wrap(io::Cursor::new(vec![1u8, 2, 3, 4]));
        let mut out = [0u8; 4];
        reader.read_exact(&mut out).unwrap();
        assert_eq!(out, [1, 2, 3, 4]);
        let mut writer = injector.wrap(Sink::default());
        writer.write_all(b"hello").unwrap();
        assert_eq!(writer.get_ref().0, b"hello");
        assert_eq!(injector.injected(), 0);
    }

    #[test]
    fn same_seed_replays_the_same_flips() {
        let flips = |seed: u64| {
            let injector = FaultInjector::new(seed);
            injector.set_plan(FaultPlan {
                flip_probability: 0.5,
                ..FaultPlan::default()
            });
            let mut reader = injector.wrap(io::Cursor::new(vec![0u8; 256]));
            let mut out = vec![0u8; 256];
            reader.read_exact(&mut out).unwrap();
            (out, injector.injected_of(FaultKind::BitFlip))
        };
        // Seeds land in distinct odd PRNG states (`seed | 1` maps even
        // seeds onto their odd neighbor, so 42/43 would collide).
        let (a, fa) = flips(41);
        let (b, fb) = flips(41);
        let (c, _) = flips(1041);
        assert_eq!(a, b, "same seed must corrupt identically");
        assert_eq!(fa, fb);
        assert!(fa > 0, "p=0.5 over many reads must flip something");
        assert_ne!(a, c, "different seeds should diverge");
    }

    #[test]
    fn reset_fires_at_the_byte_budget() {
        let injector = FaultInjector::new(1);
        injector.set_plan(FaultPlan {
            reset_after_bytes: Some(4),
            ..FaultPlan::default()
        });
        let mut writer = injector.wrap(Sink::default());
        writer.write_all(b"abcd").unwrap();
        let err = writer.write_all(b"e").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        assert_eq!(injector.injected_of(FaultKind::Reset), 1);
    }

    #[test]
    fn partial_writes_truncate_but_write_all_survives() {
        let injector = FaultInjector::new(1);
        injector.set_plan(FaultPlan {
            partial_write_cap: Some(3),
            ..FaultPlan::default()
        });
        let mut writer = injector.wrap(Sink::default());
        writer.write_all(b"0123456789").unwrap();
        assert_eq!(writer.get_ref().0, b"0123456789");
        assert!(injector.injected_of(FaultKind::PartialWrite) >= 3);
    }

    #[test]
    fn blackhole_discards_writes_and_heals() {
        let injector = FaultInjector::new(1);
        injector.set_plan(FaultPlan {
            blackhole: true,
            ..FaultPlan::default()
        });
        let mut writer = injector.wrap(Sink::default());
        writer.write_all(b"gone").unwrap();
        assert!(writer.get_ref().0.is_empty());
        // A blackholed read unblocks promptly when the plan heals.
        let mut reader = injector.wrap(io::Cursor::new(vec![9u8; 8]));
        let healer = {
            let injector = injector.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(30));
                injector.clear();
            })
        };
        let mut out = [0u8; 8];
        let err = reader.read(&mut out).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        healer.join().unwrap();
        // Healed: the next read goes through untouched.
        reader.read_exact(&mut out).unwrap();
        assert_eq!(out, [9u8; 8]);
    }

    #[test]
    fn rearming_resets_the_byte_budget() {
        let injector = FaultInjector::new(5);
        injector.set_plan(FaultPlan {
            reset_after_bytes: Some(2),
            ..FaultPlan::default()
        });
        let mut writer = injector.wrap(Sink::default());
        writer.write_all(b"ab").unwrap();
        assert!(writer.write(b"c").is_err());
        injector.set_plan(FaultPlan {
            reset_after_bytes: Some(2),
            ..FaultPlan::default()
        });
        writer.write_all(b"de").unwrap();
        assert!(writer.write(b"f").is_err());
    }
}
