//! # `ironman-net` — real networked transports and the COT service layer
//!
//! Everything else in this workspace speaks through the abstract
//! [`Transport`](ironman_ot::channel::Transport) trait; this crate makes
//! that trait real over the operating system's sockets and adds a serving
//! substrate on top, so the workspace can hand correlations to processes
//! that are not in this address space:
//!
//! * [`frame`] — the length-prefixed, versioned wire codec and the
//!   magic/version handshake.
//! * [`transport`] — [`TcpTransport`] / `UnixTransport`: buffered,
//!   write-coalescing socket transports with exact byte/round accounting.
//!   Every protocol in `ironman-ot` (IKNP, SPCOT, FERRET) runs over them
//!   unmodified.
//! * [`proto`] — the request/response protocol of the COT service:
//!   one-shot (`Hello`, `RequestCot{n}`, `Stats`, `Shutdown`), the v2
//!   streaming mode (`Subscribe{batch, credits}`, `Credit{n}`,
//!   `Unsubscribe` answered by pushed `CotChunk`s and a `StreamEnd`
//!   accounting trailer) with credit-based backpressure, and the v4
//!   membership ops (`Sync{epoch}` answered by `DirectoryUpdate`,
//!   `Warm{watermark, max_refills}` answered by `Warmed`, and the
//!   `WrongEpoch` fence).
//! * [`service`] — [`CotService`]: a thread-per-connection server over a
//!   mutex-sharded [`SharedCotPool`](ironman_core::SharedCotPool) that
//!   replenishes via FERRET extension on demand, optionally attached to
//!   an epoch-versioned membership [`DirectoryView`]; [`CotClient`]; and
//!   [`CotSubscription`] (the client half of a stream: it manages the
//!   credit window and enforces exact chunk/credit/byte accounting).
//!
//! One process serving many sockets is the smallest deployment; the
//! fleet-shaped one — an epoch-versioned membership directory of these
//! services with client-side consistent-hash routing, health checking,
//! failover, and demand-steered pool warm-up — lives in `ironman-cluster`
//! and speaks exactly this protocol:
//!
//! ```text
//!   ClusterClient ──┬─> CotService ──┐ DirectoryView (epoch fence,
//!   (routing,       ├─> CotService ──┤  membership deltas; the cluster
//!    failover,      └─> CotService ──┘  crate's Directory implements it)
//!    epoch resync)
//! ```
//!
//! # The hot path: the vectored-write contract
//!
//! Correlation payloads cross this crate with **zero serialization
//! copies** of their bulk: a request borrows the pool shard's ring as a
//! [`CotSlice`](ironman_core::CotSlice) ([`SharedCotPool::take_with`](ironman_core::SharedCotPool::take_with))
//! and the server scatter-gathers the response onto the socket with one
//! `write_vectored` loop ([`StreamTransport::send_frame_parts`]). The
//! frame is split into four parts — a fixed-size *head* (length prefix
//! reserved by [`frame::begin_frame`], opcode, `delta`, `n`), the `z`
//! and `y` block runs **aliased straight from pool storage** (on
//! little-endian targets [`Block::wire_bytes`](ironman_prg::Block::wire_bytes)
//! is a pointer cast), and a *tail* of packed choice bits — by
//! [`proto::encode_cot_batch_split`], then
//! [`frame::finish_frame_with_tail`] patches the length prefix to cover
//! all four. The bytes on the wire are **identical** to the contiguous
//! [`proto::encode_cot_batch_into`] + [`StreamTransport::send_frame`]
//! path (which control responses still use); only the number of copies
//! differs. Because the gather references the ring, the write happens
//! while the shard's take is still borrowed — i.e. under the shard
//! lock; the lock-stealing router keeps concurrent clients on other
//! shards meanwhile. On the client,
//! [`CotClient::request_cots_into`] / `CotSubscription::next_chunk_into`
//! receive into a retained frame buffer and decode into a caller-retained
//! [`CotBatch`](ironman_core::CotBatch), reusing its allocations.
//!
//! Ownership rules:
//!
//! * **Server scratch buffers** belong to the session thread. Each
//!   session keeps *two*, used alternately, so a control frame most
//!   recently handed to the kernel stays intact while the next response
//!   is encoded into the other buffer; batch responses additionally
//!   retain a bit-tail buffer. A vectored send completes its socket
//!   write before returning, so ring borrows never outlive the take.
//! * **Client receive buffers** belong to the `CotClient`; they are
//!   valid between a receive and the next call on the same session.
//! * **Caller-retained batches** (`*_into` targets) are cleared and
//!   refilled on every call; on error their contents are unspecified.
//!   Consumers that keep a batch past the next call clone it.
//!
//! Steady state therefore allocates nothing per request on either side,
//! and the claim is *observable*, not just benchmarked: the service
//! counts scratch-buffer reuse hits vs. growths per response
//! ([`ServiceStats::scratch_reuses`] / [`ServiceStats::scratch_allocs`]),
//! readable from any session via a `Stats` request. The `hot_path` bench
//! bin measures each stage (pool take, encode, round trip, stream) in
//! isolation and writes `BENCH_hot_path.json`.
//!
//! # Wire format
//!
//! A connection begins with one symmetric 6-byte handshake; every message
//! after it is a length-prefixed frame:
//!
//! ```text
//! handshake   +--------------------+----------------+
//! (once)      | magic "IRNM" (4 B) | version u16 LE |
//!             +--------------------+----------------+
//!
//! frame       +---------------+==========================+
//! (repeated)  | len u32 LE    | payload (len bytes)      |
//!             +---------------+==========================+
//! ```
//!
//! **Versioning rules:** the version is bumped on any incompatible change
//! to the frame layout or the `proto` opcodes; peers advertising
//! different versions refuse the connection during the handshake instead
//! of misparsing frames. Version **2** added the streaming subscription
//! opcodes and the per-shard `Stats` reply layout; version **3** added
//! the hot-path observability counters (scratch reuse/allocation,
//! registration failures) to the `Stats` reply; version **4** added
//! dynamic-membership epochs — see below; version **5** added the
//! per-shard raw-supply pressure counters (`session_extensions` /
//! `session_stalls`) so an extension-bound shard is distinguishable
//! from a serving-bound one; version **6** added the latency histogram
//! snapshots to the `Stats` reply and the `Trace`/`TraceDump` event-log
//! ops — see *Telemetry (v6)* below; version **7** added the server's
//! monotonic `uptime_nanos` to the `Stats` reply — see *Observability
//! plane (v7)* below; version **8** added graceful degradation — the
//! `Unavailable{retry_after_ms}` decline and the robustness counters
//! (evicted subscribers, unavailable declines, injected faults) in the
//! `Stats` reply — see *Deadlines, retries & fault injection (v8)*
//! below; version **9** added directory replication — the
//! `Gossip`/`GossipDelta` anti-entropy exchange, per-origin stamps and
//! epoch vectors on membership records, the pushed `DrainHandoff`, and
//! the server's replica epoch in the `Stats` reply — see *Directory
//! replication (v9)* below. **Hardening:** frames above
//! [`frame::MAX_FRAME_LEN`] (1 GiB) are rejected before allocation,
//! truncation and bad magic are errors (never panics), and a session that
//! sends garbage gets an error response and its connection — only its
//! connection — closed.
//!
//! Payload-byte accounting is identical to the in-process
//! `LocalChannel`, so a protocol run over TCP reports the same
//! `bytes_sent`; the real wire adds exactly 4 bytes per message plus the
//! 6-byte handshake (see [`StreamTransport::wire_bytes_sent`]).
//!
//! # Membership epochs (v4)
//!
//! A server attached to a [`DirectoryView`] carries an epoch-versioned
//! view of its fleet's membership; the epoch increases monotonically on
//! every join/leave/drain/health transition. The protocol keeps clients'
//! routing views honest:
//!
//! * `Hello{name, epoch}` announces the client's directory epoch
//!   ([`EPOCH_UNAWARE`] opts plain clients out entirely — they are never
//!   fenced); `Welcome{…, epoch}` answers with the server's.
//! * A correlation-serving request (`RequestCot`/`Subscribe`) made under
//!   a stale epoch is **fenced** with `WrongEpoch{epoch}` instead of
//!   served: the client's view predates a membership change, and serving
//!   it could hide a drain or route work to a corpse. Control ops
//!   (`Stats`, `Sync`, `Warm`, `Shutdown`) are never fenced.
//! * `Sync{epoch}` answers with `DirectoryUpdate{epoch, full, members}`
//!   — the membership changes since the client's epoch, deduplicated to
//!   each member's latest state (`Left` records removals), or a complete
//!   snapshot (`full = true`) when the server's bounded change log no
//!   longer reaches back that far. After a `Sync` the session is current
//!   and passes the fence until the directory moves again.
//! * `Warm{watermark, max_refills}` runs one budgeted warm-up sweep
//!   (driest shards first) and answers `Warmed{refills}` — the hook a
//!   fleet-level controller steers refill budget through, using the
//!   `Stats` reply's `pending_stream_cots` backlog and per-shard
//!   demand/refill counters as its signal.
//!
//! # Telemetry (v6)
//!
//! Wire version 6 makes the serving stack's *latency distributions*
//! observable, not just its counters. Every `Stats` reply carries four
//! log-bucketed histogram snapshots per shard and merged service-wide
//! ([`proto::LatencyStats`]): request→first-byte for one-shot requests,
//! per-chunk push latency for streams, FERRET extension wall time, and
//! consumer-stall time (how long drains blocked on the extension
//! pipeline). A new `Trace{max_events}` / `TraceDump` pair returns the
//! server's recent event ring — extension start/end (with the SPCOT/LPN
//! phase split packed into the end event's argument), stall start/end,
//! chunk pushes, credit waits, epoch fences — merged by timestamp across
//! the service and every pool shard.
//!
//! Two contracts make this usable in production:
//!
//! * **Overhead.** Recording is lock-free and allocation-free: one
//!   relaxed atomic increment per histogram sample, a bounded ring behind
//!   a short mutex for trace events, and *zero* work — including the
//!   clock reads, since `Stopwatch` becomes a ZST — when the
//!   `ironman-telemetry/noop` feature compiles telemetry out. CI runs the
//!   serving hot path head-to-head in both configurations and fails if
//!   the instrumented build falls more than 3% below the no-op one
//!   (`BENCH_telemetry.json`).
//! * **Quantile error.** Histograms bucket values at 16 sub-buckets per
//!   octave: quantiles read from a snapshot (p50/p90/p99/p999) are upper
//!   bucket bounds within 6.25% of the true sample quantile (exact below
//!   32 ns), the recorded maximum is exact, and merging snapshots —
//!   shards into a service, servers into a fleet — never moves a merged
//!   quantile outside the range its inputs span.
//!
//! The fleet-level roll-up (scraping every member's `Stats` on the
//! health-probe cadence and merging into one `FleetSnapshot`) lives in
//! `ironman-cluster`'s `FleetObserver`.
//!
//! # Observability plane (v7)
//!
//! Wire version 7 turns the v6 raw telemetry into an operable plane.
//! The wire change itself is one field — [`ServiceStats::uptime_nanos`],
//! the server's *monotonic* age. Everything a scraper derives over a
//! window (rates from cumulative counters, windowed histograms via
//! `HistogramSnapshot::delta`) needs restart detection: a later scrape
//! whose uptime went *down* proves the counters restarted from zero, so
//! the deriver degrades to a since-restart rate instead of a negative
//! one.
//!
//! The plane built on top (in `ironman-cluster`, serving through this
//! crate's [`http`] module — a hand-rolled HTTP/1.0 endpoint with a
//! nonblocking accept loop, in the same no-crates.io vendored style as
//! the rest of the workspace):
//!
//! * **Exporter format.** `GET /metrics` answers Prometheus text
//!   exposition (`text/plain`): `# HELP`/`# TYPE` comment pairs, then
//!   `family{label="value"} number` samples. Families are prefixed
//!   `ironman_`; per-server samples carry a `server="<id>"` label;
//!   cumulative counters end in `_total`; windowed gauges state their
//!   window in a `window` label. `GET /fleet` renders the same snapshot
//!   as a human-readable page.
//! * **SLO spec grammar.** An SLO is `(name, objective, windows)` where
//!   the objective is one of `ChunkPushP99 { max_nanos }` (windowed p99
//!   of the chunk-push histogram must stay under the bound),
//!   `SupplyRate { min_cots_per_sec }` (fleet COT supply derived from
//!   extension counters must stay above the floor), or
//!   `StallRatio { max_ratio }` (windowed consumer-stall time per second
//!   of wall time must stay under the bound). Evaluation is multi-window
//!   burn-rate: a violation over the *fast* window (default 5 s) arms
//!   the alert (`pending`); the *slow* window (default 60 s) agreeing
//!   promotes it to `firing`; both windows staying clear for a
//!   hysteresis interval resolves it. Short-lived spikes never fire,
//!   real burns fire within the fast window, and flapping cannot
//!   re-fire through hysteresis.
//! * **Headroom semantics.** For each server the exporter feeds live
//!   `Stats` into the perf crate's roofline + network models to get a
//!   *predicted* supply ceiling (COTs/s at the machine's memory-bandwidth
//!   bound, optionally capped by the modeled link), and derives the
//!   *measured* supply rate from windowed extension counters. Exported
//!   gauges: `predicted` (the model), `utilization` = measured/predicted
//!   (how close to the modeled ceiling the server runs), and `drift` =
//!   measured − predicted headroom error, which is the model-validation
//!   signal: sustained utilization near 1.0 with positive drift means
//!   the model under-predicts; utilization far below 1.0 under load
//!   means the fleet is serving-bound, not extension-bound.
//!
//! # Deadlines, retries & fault injection (v8)
//!
//! Wire version 8 chaos-hardens the serving stack. Three planes, one
//! contract: every failure mode is *typed, bounded, and observable*.
//!
//! * **Deadlines.** Every data-path session is born with
//!   [`OpTimeouts`] deadlines — connect, read, and write all bounded
//!   (defaults via [`CotClient::connect`]; explicit via
//!   [`CotClient::connect_with_timeouts`]). An expired deadline
//!   surfaces as the typed `ChannelError::TimedOut`, distinct from hard
//!   IO errors, so failover logic can treat "slow" differently from
//!   "gone". Server-side, session sockets carry a write deadline (the
//!   slow-consumer guard): a subscriber that stops draining its pushes
//!   is **evicted via tracked close** within the deadline — counted
//!   ([`ServiceStats::subscribers_evicted`]), traced
//!   (`SubscriberEvicted`), and without disturbing other streams.
//! * **Retries.** [`RetryPolicy`] yields exponential backoff with
//!   decorrelated jitter from a seeded PRNG (deterministic under test,
//!   desynchronized in a fleet), and [`RetryBudget`] is a token bucket
//!   that bounds retry volume — when the budget is dry, failures
//!   propagate instead of amplifying an outage into a retry storm.
//!   `ironman-cluster`'s `ClusterClient` wires both into its failover
//!   sweep.
//! * **Graceful degradation.** A supply-starved server closes its gate
//!   ([`CotService::set_unavailable_for`]) and answers serving requests
//!   with `Unavailable{retry_after_ms}` — a machine-usable hint, not a
//!   hang or a hard error; control ops keep working so the degraded
//!   server stays observable. Clients surface it as
//!   `ChannelError::Unavailable` and honor the hint as a cooldown.
//! * **Fault injection.** [`FaultPlan`] / [`FaultInjector`] /
//!   [`FaultyStream`] inject seeded, deterministic faults *under* the
//!   framing layer: added latency, stalls, partial writes, connection
//!   resets at byte N, bit-flipped reads, blackhole-after-accept. Every
//!   server session is wrapped (transparent while disarmed: one relaxed
//!   atomic load per buffered I/O call), so a chaos schedule can corrupt
//!   and heal **live** links mid-session; injected faults are counted
//!   into [`ServiceStats::faults_injected`] and traced (`FaultInjected`).
//!
//! # Directory replication (v9)
//!
//! Through v8 a fleet's membership lived in **one** in-process
//! directory that every server shared. Wire version 9 gives each server
//! its *own* replica and makes the replicas converge over this
//! protocol, so membership survives process and network boundaries:
//!
//! * **Stamped records.** Every [`MemberRecord`] carries a last-writer
//!   stamp — `origin` (the replica that wrote it) and a per-origin
//!   Lamport `version` — plus its routing `weight` and `addr`/`name`.
//!   [`DirectoryDelta`] carries the sender's per-origin epoch `vector`
//!   alongside the scalar epoch. The merge rule is deterministic on
//!   every replica: higher version wins, ties go to the lower origin,
//!   removals persist as tombstones, and an unknown record already
//!   covered by the receiver's vector is rejected rather than
//!   resurrected.
//! * **Anti-entropy pull.** `Gossip{from, vector}` presents a replica's
//!   epoch vector; the answer `GossipDelta(delta)` contains exactly the
//!   records that vector does not cover, never a full-snapshot claim —
//!   anti-entropy merges record by record so concurrent writes on the
//!   receiver survive. Pulls piggyback on the health-probe cadence
//!   (`ironman-cluster`'s `Gossiper`); a client can present
//!   `from = u64::MAX` to sync its routing view without announcing
//!   itself. After a gossip exchange the session is epoch-current, like
//!   a v4 `Sync`.
//! * **Membership writes** stay local to a replica and spread by being
//!   pulled: joins self-announce (a member that finds its own record
//!   evicted re-announces over the tombstone with a winning stamp),
//!   evictions are gated on a leader lease (lowest live id), and
//!   conflicting writes from a partition resolve by the stamp rule the
//!   moment the islands can pull from each other again.
//! * **Drain handoff.** A draining server pushes `DrainHandoff{id,
//!   addr, name}` — its ring successor for the subscriber's session —
//!   once per subscription, costing no credits. The client fails over
//!   to the named successor directly instead of burning a probe on
//!   rediscovery.
//! * **Warm standbys.** `Warm{watermark, max_refills}` (v4) aimed at a
//!   ring successor on the gossip cadence keeps a crash-failover target
//!   buffer-warm; `Stats` carries the serving replica's
//!   [`ServiceStats::directory_epoch`] so observers can chart gossip
//!   lag as the spread between replicas' epochs.
//!
//! # Quickstart
//!
//! ```
//! use ironman_core::{Backend, Engine};
//! use ironman_net::{CotClient, CotService, CotServiceConfig};
//! use ironman_ot::ferret::FerretConfig;
//! use ironman_ot::params::FerretParams;
//!
//! let engine = Engine::new(FerretConfig::new(FerretParams::toy()), Backend::ironman_default());
//! let service = CotService::serve("127.0.0.1:0", &engine, CotServiceConfig::default()).unwrap();
//!
//! let mut client = CotClient::connect(service.addr(), "ppml-worker-0").unwrap();
//! let batch = client.request_cots(1024).unwrap();
//! batch.verify().unwrap();
//! service.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod frame;
pub mod http;
pub mod proto;
pub mod retry;
pub mod service;
pub mod transport;

pub use fault::{FaultInjector, FaultKind, FaultPlan, FaultyStream};
pub use frame::{FrameError, MAGIC, MAX_FRAME_LEN, VERSION};
pub use http::{http_get, HttpRequest, HttpResponse, HttpServer};
pub use proto::{
    DirectoryDelta, LatencyStats, MemberRecord, MemberWireState, Request, Response, ServiceStats,
    ShardStat, EPOCH_UNAWARE,
};
pub use retry::{OpTimeouts, RetryBudget, RetryPolicy};
pub use service::{
    CotClient, CotService, CotServiceConfig, CotSubscription, DirectoryView, StreamSummary,
};
#[cfg(unix)]
pub use transport::UnixTransport;
pub use transport::{tcp_loopback_pair, StreamTransport, TcpTransport};
