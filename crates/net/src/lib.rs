//! # `ironman-net` — real networked transports and the COT service layer
//!
//! Everything else in this workspace speaks through the abstract
//! [`Transport`](ironman_ot::channel::Transport) trait; this crate makes
//! that trait real over the operating system's sockets and adds a serving
//! substrate on top, so the workspace can hand correlations to processes
//! that are not in this address space:
//!
//! * [`frame`] — the length-prefixed, versioned wire codec and the
//!   magic/version handshake.
//! * [`transport`] — [`TcpTransport`] / `UnixTransport`: buffered,
//!   write-coalescing socket transports with exact byte/round accounting.
//!   Every protocol in `ironman-ot` (IKNP, SPCOT, FERRET) runs over them
//!   unmodified.
//! * [`proto`] — the request/response protocol of the COT service:
//!   one-shot (`Hello`, `RequestCot{n}`, `Stats`, `Shutdown`) plus the v2
//!   streaming mode (`Subscribe{batch, credits}`, `Credit{n}`,
//!   `Unsubscribe` answered by pushed `CotChunk`s and a `StreamEnd`
//!   accounting trailer) with credit-based backpressure.
//! * [`service`] — [`CotService`]: a thread-per-connection server over a
//!   mutex-sharded [`SharedCotPool`](ironman_core::SharedCotPool) that
//!   replenishes via FERRET extension on demand, [`CotClient`], and
//!   [`CotSubscription`] (the client half of a stream: it manages the
//!   credit window and enforces exact chunk/credit/byte accounting).
//!
//! One process serving many sockets is the smallest deployment; the
//! fleet-shaped one — a directory of these services with client-side
//! consistent-hash routing, failover, and background pool warm-up — lives
//! in `ironman-cluster` and speaks exactly this protocol:
//!
//! ```text
//!   ClusterClient ──┬─> CotService (pool shards + Warmup refiller)
//!   (routing,       ├─> CotService      ...
//!    failover)      └─> CotService      ...
//! ```
//!
//! # Wire format
//!
//! A connection begins with one symmetric 6-byte handshake; every message
//! after it is a length-prefixed frame:
//!
//! ```text
//! handshake   +--------------------+----------------+
//! (once)      | magic "IRNM" (4 B) | version u16 LE |
//!             +--------------------+----------------+
//!
//! frame       +---------------+==========================+
//! (repeated)  | len u32 LE    | payload (len bytes)      |
//!             +---------------+==========================+
//! ```
//!
//! **Versioning rules:** the version is bumped on any incompatible change
//! to the frame layout or the `proto` opcodes; peers advertising
//! different versions refuse the connection during the handshake instead
//! of misparsing frames. Version **2** added the streaming subscription
//! opcodes and the per-shard `Stats` reply layout. **Hardening:** frames above
//! [`frame::MAX_FRAME_LEN`] (1 GiB) are rejected before allocation,
//! truncation and bad magic are errors (never panics), and a session that
//! sends garbage gets an error response and its connection — only its
//! connection — closed.
//!
//! Payload-byte accounting is identical to the in-process
//! `LocalChannel`, so a protocol run over TCP reports the same
//! `bytes_sent`; the real wire adds exactly 4 bytes per message plus the
//! 6-byte handshake (see [`StreamTransport::wire_bytes_sent`]).
//!
//! # Quickstart
//!
//! ```
//! use ironman_core::{Backend, Engine};
//! use ironman_net::{CotClient, CotService, CotServiceConfig};
//! use ironman_ot::ferret::FerretConfig;
//! use ironman_ot::params::FerretParams;
//!
//! let engine = Engine::new(FerretConfig::new(FerretParams::toy()), Backend::ironman_default());
//! let service = CotService::serve("127.0.0.1:0", &engine, CotServiceConfig::default()).unwrap();
//!
//! let mut client = CotClient::connect(service.addr(), "ppml-worker-0").unwrap();
//! let batch = client.request_cots(1024).unwrap();
//! batch.verify().unwrap();
//! service.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod frame;
pub mod proto;
pub mod service;
pub mod transport;

pub use frame::{FrameError, MAGIC, MAX_FRAME_LEN, VERSION};
pub use proto::{Request, Response, ServiceStats, ShardStat};
pub use service::{CotClient, CotService, CotServiceConfig, CotSubscription, StreamSummary};
#[cfg(unix)]
pub use transport::UnixTransport;
pub use transport::{tcp_loopback_pair, StreamTransport, TcpTransport};
