//! The multi-client COT service: a thread-per-connection server over a
//! shared, sharded pool, plus the matching client.
//!
//! The server plays the paper's host-side role: FERRET extensions (timed
//! by whichever backend the [`Engine`] carries) refill a
//! [`SharedCotPool`], and any number of concurrent PPML consumers drain
//! it over TCP sessions speaking the [`crate::proto`] protocol. Sessions
//! are independent: a slow client never blocks another except through
//! pool-shard contention, which the lock-stealing `take` keeps off the
//! fast path.

use crate::frame::VERSION;
use crate::proto::{Request, Response, ServiceStats};
use crate::transport::TcpTransport;
use ironman_core::{CotBatch, Engine, SharedCotPool};
use ironman_ot::channel::{ChannelError, ChannelStats, Transport};
use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

#[derive(Debug, Default)]
struct Counters {
    clients_served: AtomicU64,
    cots_served: AtomicU64,
}

/// State shared by the accept loop, every session thread, and the
/// [`CotService`] handle.
#[derive(Debug)]
struct ServiceShared {
    addr: SocketAddr,
    stop: AtomicBool,
    counters: Counters,
    pool: Arc<SharedCotPool>,
    sessions: Mutex<HashMap<u64, TcpStream>>,
}

impl ServiceShared {
    /// Stops the service from any thread: raises the flag, kicks every
    /// live session out of its blocking read, and pokes the listener so
    /// the accept loop observes the flag. Idempotent.
    fn initiate_shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        for stream in self.sessions.lock().expect("session stream lock").values() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        let _ = TcpStream::connect(self.addr);
    }

    fn stats(&self) -> ServiceStats {
        ServiceStats {
            clients_served: self.counters.clients_served.load(Ordering::Relaxed),
            cots_served: self.counters.cots_served.load(Ordering::Relaxed),
            extensions_run: self.pool.extensions_run() as u64,
            available: self.pool.available() as u64,
            shards: self.pool.shard_count() as u64,
        }
    }
}

/// Configuration of a [`CotService`].
#[derive(Clone, Debug)]
pub struct CotServiceConfig {
    /// Pool shard count (concurrent refill lanes).
    pub shards: usize,
    /// Seed for the per-shard FERRET sessions.
    pub seed: u64,
}

impl Default for CotServiceConfig {
    fn default() -> Self {
        CotServiceConfig { shards: 4, seed: 1 }
    }
}

/// A running COT server; dropping the handle does **not** stop it — call
/// [`CotService::shutdown`] (or send [`Request::Shutdown`] from a client).
#[derive(Debug)]
pub struct CotService {
    shared: Arc<ServiceShared>,
    accept_thread: Option<JoinHandle<()>>,
}

impl CotService {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port), builds a
    /// sharded pool over `engine`, and starts accepting sessions.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn serve<A: ToSocketAddrs>(
        addr: A,
        engine: &Engine,
        cfg: CotServiceConfig,
    ) -> std::io::Result<CotService> {
        let listener = TcpListener::bind(addr)?;
        let pool = Arc::new(SharedCotPool::new(engine, cfg.shards, cfg.seed));
        Ok(Self::serve_on(listener, pool))
    }

    /// Starts the accept loop on an already-bound listener over an
    /// existing pool (lets tests and embedders share pools across
    /// services).
    pub fn serve_on(listener: TcpListener, pool: Arc<SharedCotPool>) -> CotService {
        let addr = listener
            .local_addr()
            .expect("bound listener has an address");
        let shared = Arc::new(ServiceShared {
            addr,
            stop: AtomicBool::new(false),
            counters: Counters::default(),
            pool,
            sessions: Mutex::new(HashMap::new()),
        });
        let accept_thread = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };
        CotService {
            shared,
            accept_thread: Some(accept_thread),
        }
    }

    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The shared pool backing this service.
    pub fn pool(&self) -> &Arc<SharedCotPool> {
        &self.shared.pool
    }

    /// Current statistics snapshot (same data a [`Request::Stats`] gets).
    pub fn stats(&self) -> ServiceStats {
        self.shared.stats()
    }

    /// Stops accepting, waits for the accept loop (and through it all
    /// session threads) to finish, and returns the final statistics.
    pub fn shutdown(mut self) -> ServiceStats {
        self.shared.initiate_shutdown();
        if let Some(t) = self.accept_thread.take() {
            t.join().expect("accept thread panicked");
        }
        self.stats()
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<ServiceShared>) {
    let mut threads: Vec<JoinHandle<()>> = Vec::new();
    let mut next_session_id = 0u64;
    let mut consecutive_errors = 0u32;
    while !shared.stop.load(Ordering::SeqCst) {
        let stream = match listener.accept() {
            Ok((stream, _)) => {
                consecutive_errors = 0;
                stream
            }
            // Transient failures (ECONNABORTED, fd exhaustion under load)
            // must not kill the whole service; only a persistent error
            // storm does.
            Err(_) => {
                consecutive_errors += 1;
                if consecutive_errors >= 100 {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(10));
                continue;
            }
        };
        if shared.stop.load(Ordering::SeqCst) {
            break; // the shutdown poke itself
        }
        shared
            .counters
            .clients_served
            .fetch_add(1, Ordering::Relaxed);
        // Register a handle to the raw socket so a shutdown can unblock
        // this session's reads; registration failure is not fatal.
        let session_id = next_session_id;
        next_session_id += 1;
        if let Ok(raw) = stream.try_clone() {
            shared
                .sessions
                .lock()
                .expect("session stream lock")
                .insert(session_id, raw);
        }
        // Reap finished sessions so `threads` tracks live connections, not
        // the server's lifetime total.
        threads.retain(|t| !t.is_finished());
        let shared = Arc::clone(shared);
        threads.push(std::thread::spawn(move || {
            // A client that fails its handshake (or drops mid-session) only
            // kills its own session thread.
            if let Ok(transport) = TcpTransport::from_stream(stream) {
                let _ = serve_session(transport, &shared);
            }
            // Deregister (dropping the last socket handle closes the fd,
            // so a departed session's peer sees EOF immediately).
            shared
                .sessions
                .lock()
                .expect("session stream lock")
                .remove(&session_id);
        }));
    }
    // A session accepted concurrently with a shutdown may have registered
    // after the initiator's sweep; sweeping again here (the accept thread
    // runs strictly after every registration it performed) guarantees no
    // session thread is left blocked before the joins below.
    for stream in shared
        .sessions
        .lock()
        .expect("session stream lock")
        .values()
    {
        let _ = stream.shutdown(std::net::Shutdown::Both);
    }
    for handle in threads {
        let _ = handle.join();
    }
}

fn serve_session(mut ch: TcpTransport, shared: &ServiceShared) -> Result<(), ChannelError> {
    let max_request = shared.pool.max_request() as u64;
    loop {
        let request = match Request::decode(&ch.recv_bytes()?) {
            Ok(r) => r,
            Err(e) => {
                // Answer garbage with an Error frame, then drop the session.
                let _ = ch.send_bytes(Response::Error(e.to_string()).encode());
                let _ = ch.flush();
                return Err(e);
            }
        };
        let response = match request {
            Request::Hello { .. } => Response::Welcome {
                version: VERSION,
                max_request,
            },
            Request::RequestCot { n } => {
                if n == 0 || n > max_request {
                    Response::Error(format!("batch size {n} outside 1..={max_request}"))
                } else {
                    // A panicking take must answer this client, not kill its
                    // session silently (and through the hung socket, the
                    // client).
                    let take = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        shared.pool.take(n as usize)
                    }));
                    match take {
                        Ok(batch) => {
                            shared
                                .counters
                                .cots_served
                                .fetch_add(batch.len() as u64, Ordering::Relaxed);
                            Response::Cots(batch)
                        }
                        Err(_) => Response::Error("internal pool failure".to_string()),
                    }
                }
            }
            Request::Stats => Response::Stats(shared.stats()),
            Request::Shutdown => {
                // Answer first (the requester deserves its Goodbye), then
                // actually stop the server: flag + session sweep + listener
                // poke, exactly as CotService::shutdown does.
                ch.send_bytes(Response::Goodbye.encode())?;
                ch.flush()?;
                shared.initiate_shutdown();
                return Ok(());
            }
        };
        ch.send_bytes(response.encode())?;
        ch.flush()?;
    }
}

/// A client session against a [`CotService`].
#[derive(Debug)]
pub struct CotClient {
    ch: TcpTransport,
    max_request: u64,
}

impl CotClient {
    /// Connects, handshakes, and exchanges `Hello`/`Welcome`.
    ///
    /// # Errors
    ///
    /// Fails on connection/handshake errors or an unexpected first
    /// response.
    pub fn connect<A: ToSocketAddrs>(addr: A, name: &str) -> Result<CotClient, ChannelError> {
        let mut ch = TcpTransport::connect(addr).map_err(ChannelError::from)?;
        ch.send_bytes(
            Request::Hello {
                name: name.to_string(),
            }
            .encode(),
        )?;
        match Response::decode(&ch.recv_bytes()?)? {
            Response::Welcome { max_request, .. } => Ok(CotClient { ch, max_request }),
            Response::Error(msg) => Err(service_error(&msg)),
            other => Err(unexpected_response(&other)),
        }
    }

    /// Largest batch one [`CotClient::request_cots`] call may ask for.
    pub fn max_request(&self) -> u64 {
        self.max_request
    }

    /// Fetches `n` fresh correlations.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or a server-side [`Response::Error`].
    pub fn request_cots(&mut self, n: usize) -> Result<CotBatch, ChannelError> {
        self.ch
            .send_bytes(Request::RequestCot { n: n as u64 }.encode())?;
        match Response::decode(&self.ch.recv_bytes()?)? {
            Response::Cots(batch) => Ok(batch),
            Response::Error(msg) => Err(service_error(&msg)),
            other => Err(unexpected_response(&other)),
        }
    }

    /// Fetches a service statistics snapshot.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or an unexpected response.
    pub fn stats(&mut self) -> Result<ServiceStats, ChannelError> {
        self.ch.send_bytes(Request::Stats.encode())?;
        match Response::decode(&self.ch.recv_bytes()?)? {
            Response::Stats(s) => Ok(s),
            Response::Error(msg) => Err(service_error(&msg)),
            other => Err(unexpected_response(&other)),
        }
    }

    /// Asks the server to shut down and consumes this session.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or an unexpected response.
    pub fn shutdown_server(mut self) -> Result<(), ChannelError> {
        self.ch.send_bytes(Request::Shutdown.encode())?;
        match Response::decode(&self.ch.recv_bytes()?)? {
            Response::Goodbye => Ok(()),
            Response::Error(msg) => Err(service_error(&msg)),
            other => Err(unexpected_response(&other)),
        }
    }

    /// This session's transport accounting.
    pub fn transport_stats(&self) -> ChannelStats {
        self.ch.stats()
    }
}

fn service_error(msg: &str) -> ChannelError {
    ChannelError::Io(std::io::Error::other(format!("service error: {msg}")))
}

fn unexpected_response(resp: &Response) -> ChannelError {
    ChannelError::Io(std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        format!("unexpected response: {resp:?}"),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ironman_core::Backend;
    use ironman_ot::ferret::FerretConfig;
    use ironman_ot::params::FerretParams;

    fn toy_engine() -> Engine {
        Engine::new(
            FerretConfig::new(FerretParams::toy()),
            Backend::ironman_default(),
        )
    }

    fn toy_service(shards: usize) -> CotService {
        let cfg = CotServiceConfig { shards, seed: 11 };
        CotService::serve("127.0.0.1:0", &toy_engine(), cfg).expect("bind loopback")
    }

    #[test]
    fn single_client_session() {
        let service = toy_service(1);
        let mut client = CotClient::connect(service.addr(), "t1").unwrap();
        assert!(client.max_request() > 0);
        let batch = client.request_cots(64).unwrap();
        assert_eq!(batch.len(), 64);
        batch.verify().unwrap();
        let stats = client.stats().unwrap();
        assert_eq!(stats.cots_served, 64);
        assert_eq!(stats.clients_served, 1);
        let final_stats = service.shutdown();
        assert_eq!(final_stats.cots_served, 64);
    }

    #[test]
    fn oversized_request_gets_error_not_disconnect() {
        let service = toy_service(1);
        let mut client = CotClient::connect(service.addr(), "greedy").unwrap();
        let too_big = client.max_request() as usize + 1;
        assert!(client.request_cots(too_big).is_err());
        // Session survives the rejected request.
        client.request_cots(8).unwrap().verify().unwrap();
        service.shutdown();
    }

    #[test]
    fn client_shutdown_request_stops_server() {
        let service = toy_service(1);
        let addr = service.addr();
        // An idle session must not keep the server alive past a shutdown
        // request: the sweep kicks its blocked read.
        let mut idle = CotClient::connect(addr, "idle").unwrap();
        let client = CotClient::connect(addr, "admin").unwrap();
        client.shutdown_server().unwrap();
        service.shutdown(); // idempotent: already stopping
        assert!(CotClient::connect(addr, "late").is_err());
        assert!(idle.request_cots(8).is_err());
    }
}
