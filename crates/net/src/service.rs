//! The multi-client COT service: a thread-per-connection server over a
//! shared, sharded pool, plus the matching client.
//!
//! The server plays the paper's host-side role: FERRET extensions (timed
//! by whichever backend the [`Engine`] carries) refill a
//! [`SharedCotPool`], and any number of concurrent PPML consumers drain
//! it over TCP sessions speaking the [`crate::proto`] protocol. Sessions
//! are independent: a slow client never blocks another except through
//! pool-shard contention, which the lock-stealing `take` keeps off the
//! fast path.

use crate::fault::{FaultInjector, FaultPlan, FaultyStream};
use crate::frame::{self, VERSION};
use crate::proto::{
    decode_response_into, encode_cot_chunk_split, encode_cots_split, encode_error_into,
    DirectoryDelta, HotResponse, LatencyStats, Request, Response, ServiceStats, ShardStat,
    EPOCH_UNAWARE,
};
use crate::retry::OpTimeouts;
use crate::transport::{StreamTransport, TcpTransport};
use ironman_core::{CotBatch, CotSlice, Engine, SharedCotPool};
use ironman_ot::channel::{ChannelError, ChannelStats, Transport};
use ironman_telemetry::{
    merge_dumps, now_nanos, EventKind, Histogram, Stopwatch, TraceEvent, TraceLog,
    DEFAULT_TRACE_CAPACITY,
};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Hard server-side cap on the events one [`Request::Trace`] reply may
/// carry, whatever the client asked for (17 bytes each on the wire, so
/// this bounds the reply near 1 MiB).
const TRACE_REPLY_CAP: usize = 65_536;

/// Default write deadline on session sockets — the slow-consumer guard
/// (v8). A subscriber that stops draining its pushes stalls the server's
/// `write_all` once the socket buffers fill; the deadline turns that
/// stall into a typed timeout and the session into a tracked close,
/// instead of pinning a serving thread forever. Tunable at runtime via
/// [`CotService::set_subscriber_write_timeout`].
const DEFAULT_PUSH_TIMEOUT: Duration = Duration::from_secs(2);

/// The seed behind every service's [`FaultInjector`]: fixed so a chaos
/// scenario replays identically run after run (schedules that need
/// divergent servers perturb their plans, not the seed).
const FAULT_SEED: u64 = 0x9e37_79b9_7f4a_7c15;

/// The server side of a session: a TCP stream with the service's fault
/// injector layered *under* the framing, so an armed chaos plan corrupts
/// live links mid-session and a heal restores them without reconnecting.
type SessionTransport = StreamTransport<FaultyStream<TcpStream>, FaultyStream<TcpStream>>;

/// The service's read-only view of an epoch-versioned membership
/// directory. `ironman-cluster`'s `Directory` implements it; a service
/// constructed without one (the plain single-server shape) never fences
/// requests and reports epoch 0.
///
/// The first two methods are the whole fencing contract: `epoch` tells
/// the serve path whether a session's announced epoch is stale, and
/// `delta_since` builds the `DirectoryUpdate` that brings the session
/// current again. The remaining two are the v9 replication surface,
/// with defaults that keep pre-replication directories working
/// unchanged: `gossip_delta` answers an anti-entropy `Gossip` pull, and
/// `successor_for` names the drain-handoff successor a subscription
/// push loop should announce.
pub trait DirectoryView: Send + Sync + std::fmt::Debug {
    /// The directory's current epoch (monotonically increasing).
    fn epoch(&self) -> u64;

    /// The membership changes between `epoch` and now (or a full
    /// snapshot when the change log no longer reaches back that far).
    fn delta_since(&self, epoch: u64) -> DirectoryDelta;

    /// The anti-entropy answer to a peer presenting its per-origin
    /// epoch `vector`: every record the vector does not cover, or
    /// `None` from a directory without replication support (the server
    /// then answers the `Gossip` request with an error).
    fn gossip_delta(&self, _vector: &[(u64, u64)]) -> Option<DirectoryDelta> {
        None
    }

    /// The `Up` member a draining server `self_id` should hand
    /// `session`'s stream to — `Some` only while `self_id` is actually
    /// draining, so one call per push doubles as the drain check.
    fn successor_for(&self, _session: &str, _self_id: u64) -> Option<crate::proto::MemberRecord> {
        None
    }
}

/// The service's own latency sinks (v6): per-shard serving-path
/// histograms plus the service-level trace ring. The extension and stall
/// distributions live with the pool (`SharedCotPool::shard_telemetry`);
/// together the two sides fill a [`LatencyStats`].
///
/// Recording is lock-free (relaxed atomic bucket bumps) and the whole
/// thing compiles to no-ops under `ironman-telemetry`'s `noop` feature —
/// the hot path pays nothing when telemetry is off, and CI holds the
/// instrumented build to within 3% of the no-op one.
#[derive(Debug)]
struct ServiceTelemetry {
    /// Request→first-byte latency per shard: frame decoded → response
    /// bytes handed to the kernel, for one-shot `RequestCot`s.
    request_first_byte: Vec<Histogram>,
    /// Per-chunk push latency per shard (subscription streams).
    chunk_push: Vec<Histogram>,
    /// Service-level events (chunk pushes, credit waits, epoch fences);
    /// extension/stall events live in the pool's per-shard rings. Shared
    /// (`Arc`) with the fault injector so injected faults land in the
    /// same timeline.
    trace: Arc<TraceLog>,
}

impl ServiceTelemetry {
    fn new(shards: usize) -> Self {
        ServiceTelemetry {
            request_first_byte: (0..shards).map(|_| Histogram::new()).collect(),
            chunk_push: (0..shards).map(|_| Histogram::new()).collect(),
            trace: Arc::new(TraceLog::new(DEFAULT_TRACE_CAPACITY)),
        }
    }
}

#[derive(Debug, Default)]
struct Counters {
    clients_served: AtomicU64,
    cots_served: AtomicU64,
    scratch_reuses: AtomicU64,
    scratch_allocs: AtomicU64,
    register_failures: AtomicU64,
    /// Correlations promised to active subscriptions but not yet pushed
    /// (granted credits × chunk size) — the backlog signal a fleet-level
    /// warm-up controller steers refill budget by.
    pending_stream_cots: AtomicU64,
    /// Subscribers evicted by the slow-consumer write deadline (v8).
    subscribers_evicted: AtomicU64,
    /// Requests declined with `Unavailable{retry_after_ms}` while the
    /// server was degraded (v8).
    unavailable_sent: AtomicU64,
}

/// A session's retained response scratch: two alternating frame buffers
/// (so the frame just handed to the kernel stays intact while the next
/// response is encoded into the other buffer) plus the reuse accounting
/// that makes the zero-copy claim observable through `Stats`.
///
/// Ownership contract: a buffer belongs to the encoder from
/// [`Scratch::begin`] until [`Scratch::finish_and_send`] returns, and to
/// the transport (conceptually, the in-flight frame) until the *next*
/// `begin` flips back to it. Nothing else may write to it in between.
///
/// Batch-carrying responses take the scatter-gather path instead
/// ([`Scratch::send_batch_vectored`]): the frame buffer then holds only
/// the fixed-size head (header, opcode, `delta`, `n`), the packed choice
/// bits land in the retained `tail`, and the bulk `z`/`y` block runs are
/// written to the socket straight from the pool ring — the copy
/// `finish_and_send` would have made into the frame buffer no longer
/// exists. That path completes its socket write before returning, so the
/// alternating-buffer in-flight contract is vacuously upheld there.
#[derive(Debug, Default)]
struct Scratch {
    bufs: [Vec<u8>; 2],
    which: usize,
    cap_before: usize,
    /// Packed choice bits of the in-flight batch (the only payload piece
    /// the vectored path still serializes, at 1 bit per correlation).
    tail: Vec<u8>,
    /// Big-endian fallback staging for `z`/`y`; stays empty (and
    /// unallocated) on little-endian targets, where the wire views alias
    /// the pool ring directly.
    staging: [Vec<u8>; 2],
}

impl Scratch {
    /// Flips to the other buffer and starts a frame in it.
    fn begin(&mut self) -> &mut Vec<u8> {
        self.which ^= 1;
        let buf = &mut self.bufs[self.which];
        self.cap_before = buf.capacity();
        frame::begin_frame(buf);
        buf
    }

    /// The buffer most recently started with [`Scratch::begin`].
    fn buf(&mut self) -> &mut Vec<u8> {
        &mut self.bufs[self.which]
    }

    /// Finishes the current frame and writes it to the socket (one
    /// `write_all`, then flush). When `counters` is given — only the
    /// batch-carrying responses pass it, so the reuse counters measure
    /// exactly the correlation payload path and can *falsify* the
    /// zero-copy claim — the response is accounted as a buffer reuse or
    /// a growth.
    fn finish_and_send<R: Read, W: Write>(
        &mut self,
        ch: &mut StreamTransport<R, W>,
        counters: Option<&Counters>,
    ) -> Result<(), ChannelError> {
        let cap_before = self.cap_before;
        let buf = &mut self.bufs[self.which];
        frame::finish_frame(buf).map_err(ChannelError::from)?;
        if let Some(counters) = counters {
            if cap_before > 0 && buf.capacity() == cap_before {
                counters.scratch_reuses.fetch_add(1, Ordering::Relaxed);
            } else {
                counters.scratch_allocs.fetch_add(1, Ordering::Relaxed);
            }
        }
        ch.send_frame(buf)?;
        ch.flush()
    }

    /// Encodes and sends one batch-carrying response as a scatter-gather
    /// frame: `[head, z, y, tail]` through one `write_vectored` loop,
    /// with the `z`/`y` block runs borrowed from the pool ring (see
    /// [`crate::proto::encode_cot_batch_split`]). Must be called with
    /// the borrow of the shard's ring still live — i.e. inside the
    /// pool's `take_with_shard` closure — which means the socket write
    /// happens under the shard lock; that is the deliberate trade for
    /// deleting the megabyte-scale ring→scratch copy, and the
    /// lock-stealing router keeps concurrent clients on other shards
    /// meanwhile.
    ///
    /// `seq` selects the chunk (`Some`) vs one-shot (`None`) opcode.
    /// Wire bytes are identical to the contiguous
    /// [`Scratch::finish_and_send`] encoding. The reuse counters keep
    /// their meaning: a response is a reuse only if neither retained
    /// buffer (head frame, bit tail) had to grow.
    fn send_batch_vectored<R: Read, W: Write>(
        &mut self,
        ch: &mut StreamTransport<R, W>,
        seq: Option<u64>,
        slice: CotSlice<'_>,
        counters: &Counters,
    ) -> Result<(), ChannelError> {
        let cap_before = self.cap_before;
        let tail_cap_before = self.tail.capacity();
        let head = &mut self.bufs[self.which];
        let [zs, ys] = &mut self.staging;
        let (z, y) = match seq {
            Some(seq) => encode_cot_chunk_split(head, &mut self.tail, zs, ys, seq, slice),
            None => encode_cots_split(head, &mut self.tail, zs, ys, slice),
        };
        frame::finish_frame_with_tail(head, z.len() + y.len() + self.tail.len())
            .map_err(ChannelError::from)?;
        if cap_before > 0
            && head.capacity() == cap_before
            && tail_cap_before > 0
            && self.tail.capacity() == tail_cap_before
        {
            counters.scratch_reuses.fetch_add(1, Ordering::Relaxed);
        } else {
            counters.scratch_allocs.fetch_add(1, Ordering::Relaxed);
        }
        ch.send_frame_parts(&[head.as_slice(), z, y, &self.tail])?;
        ch.flush()
    }
}

/// State shared by the accept loop, every session thread, and the
/// [`CotService`] handle.
#[derive(Debug)]
struct ServiceShared {
    addr: SocketAddr,
    /// Construction time: the monotonic anchor behind the v7
    /// `uptime_nanos` stats field (restart detection for scrapers).
    started: std::time::Instant,
    stop: AtomicBool,
    counters: Counters,
    pool: Arc<SharedCotPool>,
    telemetry: ServiceTelemetry,
    sessions: Mutex<HashMap<u64, TcpStream>>,
    /// The membership directory this server is attached to (`None` for a
    /// plain standalone service: no fencing, epoch 0).
    directory: Option<Arc<dyn DirectoryView>>,
    /// The service-wide fault injector every session's link is wrapped
    /// with (disarmed ⇒ one relaxed load per buffered I/O call).
    faults: FaultInjector,
    /// Graceful-degradation gate: a [`now_nanos`] deadline before which
    /// correlation-serving requests are declined with
    /// `Unavailable{retry_after_ms}` (0 = serving normally).
    unavailable_until: AtomicU64,
    /// Write deadline applied to session sockets, in milliseconds (the
    /// slow-consumer guard).
    push_timeout_ms: AtomicU64,
    /// This server's own member id in the attached directory
    /// (`u64::MAX` = unset, e.g. standalone or shared-directory mode) —
    /// what the drain-handoff check asks the directory about.
    self_id: AtomicU64,
}

impl ServiceShared {
    /// Stops the service from any thread: raises the flag, kicks every
    /// live session out of its blocking read, and pokes the listener so
    /// the accept loop observes the flag. Idempotent.
    fn initiate_shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        for stream in self.sessions.lock().expect("session stream lock").values() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        let _ = TcpStream::connect(self.addr);
    }

    /// The attached directory's epoch, or 0 for a standalone service.
    fn dir_epoch(&self) -> u64 {
        self.directory.as_ref().map_or(0, |d| d.epoch())
    }

    /// While the degradation gate is closed, the `retry_after_ms` hint to
    /// decline serving requests with; `None` when serving normally (the
    /// hot-path cost is this one relaxed load). An expired gate clears
    /// itself.
    fn unavailable_ms(&self) -> Option<u64> {
        let until = self.unavailable_until.load(Ordering::Relaxed);
        if until == 0 {
            return None;
        }
        let now = now_nanos();
        if now >= until {
            self.unavailable_until.store(0, Ordering::Relaxed);
            return None;
        }
        Some(((until - now) / 1_000_000).max(1))
    }

    fn stats(&self) -> ServiceStats {
        let shard_stats: Vec<ShardStat> = self
            .pool
            .shard_stats()
            .into_iter()
            .enumerate()
            .map(|(i, snap)| ShardStat {
                available: snap.available as u64,
                extensions_run: snap.extensions_run as u64,
                taken: snap.taken_cots,
                warm_refills: snap.warm_refills,
                session_extensions: snap.session_extensions,
                session_stalls: snap.session_stalls,
                latency: LatencyStats {
                    request_first_byte: self.telemetry.request_first_byte[i].snapshot(),
                    chunk_push: self.telemetry.chunk_push[i].snapshot(),
                    extension: snap.extension_latency,
                    stall: snap.stall_latency,
                },
            })
            .collect();
        // The service-wide view is the merge of the per-shard ones — the
        // same roll-up a fleet observer performs across servers.
        let mut latency = LatencyStats::default();
        for shard in &shard_stats {
            latency.merge(&shard.latency);
        }
        ServiceStats {
            clients_served: self.counters.clients_served.load(Ordering::Relaxed),
            cots_served: self.counters.cots_served.load(Ordering::Relaxed),
            extensions_run: shard_stats.iter().map(|s| s.extensions_run).sum(),
            available: shard_stats.iter().map(|s| s.available).sum(),
            shards: self.pool.shard_count() as u64,
            warmup_refills: self.pool.warmup_refills(),
            scratch_reuses: self.counters.scratch_reuses.load(Ordering::Relaxed),
            scratch_allocs: self.counters.scratch_allocs.load(Ordering::Relaxed),
            register_failures: self.counters.register_failures.load(Ordering::Relaxed),
            directory_epoch: self.dir_epoch(),
            pending_stream_cots: self.counters.pending_stream_cots.load(Ordering::Relaxed),
            uptime_nanos: u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX),
            subscribers_evicted: self.counters.subscribers_evicted.load(Ordering::Relaxed),
            unavailable_sent: self.counters.unavailable_sent.load(Ordering::Relaxed),
            faults_injected: self.faults.injected(),
            latency,
            shard_stats,
        }
    }

    /// The service's recent trace events: its own ring merged with every
    /// pool shard's, newest `max_events` kept (capped server-side).
    fn trace_dump(&self, max_events: u64) -> Vec<TraceEvent> {
        let shard_telemetry = self.pool.shard_telemetry();
        let mut dumps = Vec::with_capacity(1 + shard_telemetry.len());
        dumps.push(self.telemetry.trace.dump());
        dumps.extend(shard_telemetry.iter().map(|t| t.trace.dump()));
        let cap = usize::try_from(max_events)
            .unwrap_or(usize::MAX)
            .min(TRACE_REPLY_CAP);
        merge_dumps(&dumps, cap)
    }
}

/// Configuration of a [`CotService`].
#[derive(Clone, Debug)]
pub struct CotServiceConfig {
    /// Pool shard count (concurrent refill lanes).
    pub shards: usize,
    /// Seed for the per-shard FERRET sessions.
    pub seed: u64,
    /// Pipelined supply (the default): each shard keeps one persistent
    /// FERRET session extending ahead of demand on background threads,
    /// with a fixed per-shard `Δ` and remnant-merging refills, so a
    /// request under the shard lock is a cursor bump — never a session
    /// bootstrap. `false` restores the PR-1 shape (a fresh session per
    /// refill, inline on the demand path).
    pub pipelined: bool,
}

impl Default for CotServiceConfig {
    fn default() -> Self {
        CotServiceConfig {
            shards: 4,
            seed: 1,
            pipelined: true,
        }
    }
}

impl CotServiceConfig {
    /// Builds the [`SharedCotPool`] this configuration describes (the
    /// single dispatch point on `pipelined`, shared by [`CotService`]
    /// and `ironman-cluster`'s server composition).
    pub fn build_pool(&self, engine: &Engine) -> SharedCotPool {
        if self.pipelined {
            SharedCotPool::new_pipelined(engine, self.shards, self.seed)
        } else {
            SharedCotPool::new(engine, self.shards, self.seed)
        }
    }
}

/// A running COT server; dropping the handle does **not** stop it — call
/// [`CotService::shutdown`] (or send [`Request::Shutdown`] from a client).
#[derive(Debug)]
pub struct CotService {
    shared: Arc<ServiceShared>,
    accept_thread: Option<JoinHandle<()>>,
}

impl CotService {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port), builds a
    /// sharded pool over `engine`, and starts accepting sessions.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn serve<A: ToSocketAddrs>(
        addr: A,
        engine: &Engine,
        cfg: CotServiceConfig,
    ) -> std::io::Result<CotService> {
        let listener = TcpListener::bind(addr)?;
        let pool = Arc::new(cfg.build_pool(engine));
        Ok(Self::serve_on(listener, pool))
    }

    /// Starts the accept loop on an already-bound listener over an
    /// existing pool (lets tests and embedders share pools across
    /// services).
    pub fn serve_on(listener: TcpListener, pool: Arc<SharedCotPool>) -> CotService {
        Self::serve_on_with(listener, pool, None)
    }

    /// Like [`CotService::serve_on`], but attaches an epoch-versioned
    /// membership directory: epoch-aware sessions whose announced epoch
    /// falls behind the directory's are fenced with
    /// [`Response::WrongEpoch`] and brought current through
    /// `Sync`/`DirectoryUpdate`.
    pub fn serve_on_with(
        listener: TcpListener,
        pool: Arc<SharedCotPool>,
        directory: Option<Arc<dyn DirectoryView>>,
    ) -> CotService {
        let addr = listener
            .local_addr()
            .expect("bound listener has an address");
        let telemetry = ServiceTelemetry::new(pool.shard_count());
        let faults = FaultInjector::new(FAULT_SEED);
        faults.set_trace(Arc::clone(&telemetry.trace));
        let shared = Arc::new(ServiceShared {
            addr,
            started: std::time::Instant::now(),
            stop: AtomicBool::new(false),
            counters: Counters::default(),
            pool,
            telemetry,
            sessions: Mutex::new(HashMap::new()),
            directory,
            faults,
            unavailable_until: AtomicU64::new(0),
            push_timeout_ms: AtomicU64::new(DEFAULT_PUSH_TIMEOUT.as_millis() as u64),
            self_id: AtomicU64::new(u64::MAX),
        });
        let accept_thread = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };
        CotService {
            shared,
            accept_thread: Some(accept_thread),
        }
    }

    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Tells the service which member of the attached directory it *is*
    /// (a replicated server's own id). With this set, the push loop of
    /// every subscription checks the directory for a drain of this
    /// member and announces the ring successor in-stream with one
    /// `DrainHandoff` push — the cooperative-drain half of wire v9.
    pub fn set_self_id(&self, id: u64) {
        self.shared.self_id.store(id, Ordering::Relaxed);
    }

    /// The shared pool backing this service.
    pub fn pool(&self) -> &Arc<SharedCotPool> {
        &self.shared.pool
    }

    /// Current statistics snapshot (same data a [`Request::Stats`] gets).
    pub fn stats(&self) -> ServiceStats {
        self.shared.stats()
    }

    /// Closes the degradation gate for `window`: correlation-serving
    /// requests (`RequestCot`/`Subscribe`) are declined with
    /// [`Response::Unavailable`] carrying the remaining wait as its
    /// `retry_after_ms` hint, instead of hanging or hard-failing clients.
    /// Control ops (`Stats`, `Sync`, `Warm`, `Shutdown`, `Trace`) keep
    /// working — a degraded server stays observable. The gate reopens by
    /// itself when the window elapses, or early via
    /// [`CotService::clear_unavailable`].
    pub fn set_unavailable_for(&self, window: Duration) {
        let until =
            now_nanos().saturating_add(u64::try_from(window.as_nanos()).unwrap_or(u64::MAX));
        self.shared
            .unavailable_until
            .store(until.max(1), Ordering::Relaxed);
    }

    /// Reopens the degradation gate immediately.
    pub fn clear_unavailable(&self) {
        self.shared.unavailable_until.store(0, Ordering::Relaxed);
    }

    /// The service-wide [`FaultInjector`] under every session's link.
    /// Arm a [`FaultPlan`] on it (or via [`CotService::set_faults`]) to
    /// corrupt, stall, or blackhole this server's live connections; clear
    /// it to heal them.
    pub fn fault_injector(&self) -> FaultInjector {
        self.shared.faults.clone()
    }

    /// Arms `plan` on every current and future session of this service.
    pub fn set_faults(&self, plan: FaultPlan) {
        self.shared.faults.set_plan(plan);
    }

    /// Heals this service's links: disarms the fault plan everywhere.
    pub fn clear_faults(&self) {
        self.shared.faults.clear();
    }

    /// Sets the slow-consumer write deadline (default 2 s) — applied to
    /// every live session socket immediately and to new sessions at
    /// accept. A subscriber that cannot drain its pushes within the
    /// deadline is evicted via tracked close (counted in
    /// `subscribers_evicted`, traced as `SubscriberEvicted`).
    pub fn set_subscriber_write_timeout(&self, deadline: Duration) {
        let ms = u64::try_from(deadline.as_millis())
            .unwrap_or(u64::MAX)
            .max(1);
        self.shared.push_timeout_ms.store(ms, Ordering::Relaxed);
        for stream in self
            .shared
            .sessions
            .lock()
            .expect("session stream lock")
            .values()
        {
            let _ = stream.set_write_timeout(Some(Duration::from_millis(ms)));
        }
    }

    /// Stops accepting, waits for the accept loop (and through it all
    /// session threads) to finish, and returns the final statistics.
    pub fn shutdown(mut self) -> ServiceStats {
        self.shared.initiate_shutdown();
        if let Some(t) = self.accept_thread.take() {
            t.join().expect("accept thread panicked");
        }
        self.stats()
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<ServiceShared>) {
    let mut threads: Vec<JoinHandle<()>> = Vec::new();
    let mut next_session_id = 0u64;
    let mut consecutive_errors = 0u32;
    while !shared.stop.load(Ordering::SeqCst) {
        let stream = match listener.accept() {
            Ok((stream, _)) => {
                consecutive_errors = 0;
                stream
            }
            // Transient failures (ECONNABORTED, fd exhaustion under load)
            // must not kill the whole service; only a persistent error
            // storm does.
            Err(_) => {
                consecutive_errors += 1;
                if consecutive_errors >= 100 {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(10));
                continue;
            }
        };
        if shared.stop.load(Ordering::SeqCst) {
            break; // the shutdown poke itself
        }
        // Register a handle to the raw socket so a shutdown can unblock
        // this session's reads. A session that cannot be registered is
        // refused (dropping the stream closes it — the tracked close
        // path): serving it would leave a thread no shutdown can reach,
        // and the old silent-skip did exactly that.
        let session_id = next_session_id;
        next_session_id += 1;
        match stream.try_clone() {
            Ok(raw) => {
                shared
                    .sessions
                    .lock()
                    .expect("session stream lock")
                    .insert(session_id, raw);
            }
            Err(e) => {
                shared
                    .counters
                    .register_failures
                    .fetch_add(1, Ordering::Relaxed);
                eprintln!(
                    "ironman-net: refusing session {session_id}: socket handle clone failed ({e})"
                );
                continue;
            }
        }
        shared
            .counters
            .clients_served
            .fetch_add(1, Ordering::Relaxed);
        // The slow-consumer guard: every write this session performs is
        // bounded by the push deadline, so a subscriber that stops
        // draining costs one timeout, not a pinned serving thread.
        let push_timeout = Duration::from_millis(shared.push_timeout_ms.load(Ordering::Relaxed));
        let _ = stream.set_write_timeout(Some(push_timeout));
        // Reap finished sessions so `threads` tracks live connections, not
        // the server's lifetime total.
        threads.retain(|t| !t.is_finished());
        let shared = Arc::clone(shared);
        threads.push(std::thread::spawn(move || {
            // A client that fails its handshake (or drops mid-session) only
            // kills its own session thread.
            if let Ok(transport) = session_transport(stream, &shared.faults) {
                let _ = serve_session(transport, &shared);
            }
            // Deregister (dropping the last socket handle closes the fd,
            // so a departed session's peer sees EOF immediately).
            shared
                .sessions
                .lock()
                .expect("session stream lock")
                .remove(&session_id);
        }));
    }
    // A session accepted concurrently with a shutdown may have registered
    // after the initiator's sweep; sweeping again here (the accept thread
    // runs strictly after every registration it performed) guarantees no
    // session thread is left blocked before the joins below.
    for stream in shared
        .sessions
        .lock()
        .expect("session stream lock")
        .values()
    {
        let _ = stream.shutdown(std::net::Shutdown::Both);
    }
    for handle in threads {
        let _ = handle.join();
    }
}

/// Builds a session's server-side transport: `TCP_NODELAY` plus the
/// service's fault injector layered under the framing on both halves
/// (the v8 chaos plane; transparent while the injector is disarmed).
fn session_transport(
    stream: TcpStream,
    faults: &FaultInjector,
) -> Result<SessionTransport, frame::FrameError> {
    stream.set_nodelay(true).map_err(frame::FrameError::Io)?;
    let reader = stream.try_clone().map_err(frame::FrameError::Io)?;
    StreamTransport::from_split(faults.wrap(reader), faults.wrap(stream))
}

/// Whether a correlation-serving request from this session must be
/// fenced: the session is epoch-aware, a directory is attached, and the
/// directory has moved past the epoch the session last announced.
/// Returns the current epoch to report when fencing.
fn fence_epoch(shared: &ServiceShared, session_epoch: Option<u64>) -> Option<u64> {
    let directory = shared.directory.as_ref()?;
    let announced = session_epoch?;
    let current = directory.epoch();
    if announced < current {
        shared.telemetry.trace.push(EventKind::EpochFence, current);
        Some(current)
    } else {
        None
    }
}

/// Encodes the graceful-degradation decline (v8): the supply-starved
/// server answers with a machine-usable retry hint instead of hanging or
/// hard-failing the client, counted and traced so the outage is
/// observable fleet-wide.
fn decline_unavailable(shared: &ServiceShared, retry_after_ms: u64, scratch: &mut Scratch) {
    shared
        .counters
        .unavailable_sent
        .fetch_add(1, Ordering::Relaxed);
    shared
        .telemetry
        .trace
        .push(EventKind::Unavailable, retry_after_ms);
    scratch.begin();
    Response::Unavailable { retry_after_ms }.encode_into(scratch.buf());
}

fn serve_session<R: Read, W: Write>(
    mut ch: StreamTransport<R, W>,
    shared: &ServiceShared,
) -> Result<(), ChannelError> {
    let max_request = shared.pool.max_request() as u64;
    // The directory epoch this session last announced (`Hello`/`Sync`);
    // `None` for epoch-unaware sessions, which are never fenced.
    let mut session_epoch: Option<u64> = None;
    // The session name from `Hello` — the ring-placement key the drain
    // handoff resolves the successor of.
    let mut session_name = String::new();
    // Per-session retained buffers: requests land in `recv`, responses
    // are encoded in place into the alternating `scratch` frame buffers.
    // After the first few exchanges size them, the session's steady state
    // allocates nothing per request (observable via `Stats`).
    let mut recv = Vec::new();
    let mut scratch = Scratch::default();
    loop {
        ch.recv_bytes_into(&mut recv)?;
        let request = match Request::decode(&recv) {
            Ok(r) => r,
            Err(e) => {
                // Answer garbage with an Error frame, then drop the session.
                scratch.begin();
                encode_error_into(scratch.buf(), &e.to_string());
                let _ = scratch.finish_and_send(&mut ch, None);
                return Err(e);
            }
        };
        // Request→first-byte timer: decode done → response bytes handed
        // to the kernel. A `Stopwatch` is a ZST under the telemetry
        // `noop` feature, so starting it unconditionally costs nothing
        // when telemetry is compiled out.
        let first_byte_watch = Stopwatch::start();
        match request {
            Request::Hello { name, epoch } => {
                session_name = name;
                session_epoch = (epoch != EPOCH_UNAWARE).then_some(epoch);
                scratch.begin();
                Response::Welcome {
                    version: VERSION,
                    max_request,
                    epoch: shared.dir_epoch(),
                }
                .encode_into(scratch.buf());
            }
            Request::RequestCot { n } => {
                if let Some(retry_after_ms) = shared.unavailable_ms() {
                    decline_unavailable(shared, retry_after_ms, &mut scratch);
                } else if let Some(current) = fence_epoch(shared, session_epoch) {
                    scratch.begin();
                    Response::WrongEpoch { epoch: current }.encode_into(scratch.buf());
                } else if n == 0 || n > max_request {
                    scratch.begin();
                    encode_error_into(
                        scratch.buf(),
                        &format!("batch size {n} outside 1..={max_request}"),
                    );
                } else {
                    // The zero-copy hot path: borrow the shard's ring and
                    // scatter-gather it onto the socket — the z/y block
                    // runs go from pool storage to the kernel with no
                    // intermediate copy at all (see
                    // Scratch::send_batch_vectored). A panicking take
                    // must answer this client, not kill its session
                    // silently (and through the hung socket, the client).
                    scratch.begin();
                    let mut sent: Result<(), ChannelError> = Ok(());
                    let take = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        shared.pool.take_with_shard(n as usize, |slice, shard| {
                            sent =
                                scratch.send_batch_vectored(&mut ch, None, slice, &shared.counters);
                            shard
                        })
                    }));
                    match take {
                        Ok(shard) => {
                            sent?;
                            shared.counters.cots_served.fetch_add(n, Ordering::Relaxed);
                            shared.telemetry.request_first_byte[shard]
                                .record_elapsed(first_byte_watch);
                            continue; // response already on the wire
                        }
                        Err(_) => {
                            // A panic lands before the vectored write (the
                            // take itself failed), so the socket is clean;
                            // only the frame buffer may be half-written.
                            // Restart it.
                            scratch.begin();
                            encode_error_into(scratch.buf(), "internal pool failure");
                        }
                    }
                }
            }
            Request::Stats => {
                scratch.begin();
                Response::Stats(Box::new(shared.stats())).encode_into(scratch.buf());
            }
            Request::Shutdown => {
                // Answer first (the requester deserves its Goodbye), then
                // actually stop the server: flag + session sweep + listener
                // poke, exactly as CotService::shutdown does.
                scratch.begin();
                Response::Goodbye.encode_into(scratch.buf());
                scratch.finish_and_send(&mut ch, None)?;
                shared.initiate_shutdown();
                return Ok(());
            }
            Request::Subscribe { batch, credits } => {
                if let Some(retry_after_ms) = shared.unavailable_ms() {
                    decline_unavailable(shared, retry_after_ms, &mut scratch);
                } else if let Some(current) = fence_epoch(shared, session_epoch) {
                    scratch.begin();
                    Response::WrongEpoch { epoch: current }.encode_into(scratch.buf());
                } else if batch == 0 || batch > max_request {
                    scratch.begin();
                    encode_error_into(
                        scratch.buf(),
                        &format!("chunk size {batch} outside 1..={max_request}"),
                    );
                } else {
                    serve_subscription(
                        &mut ch,
                        shared,
                        batch as usize,
                        credits,
                        &session_name,
                        &mut recv,
                        &mut scratch,
                    )?;
                    continue; // StreamEnd already sent; back to one-shot mode
                }
            }
            // Flow-control messages are only meaningful inside a
            // subscription; outside one they are a client bug, answered
            // (session kept) rather than dropped.
            Request::Credit { .. } | Request::Unsubscribe => {
                scratch.begin();
                encode_error_into(scratch.buf(), "no active subscription");
            }
            Request::Sync { epoch } => {
                scratch.begin();
                match &shared.directory {
                    Some(directory) => {
                        let delta = directory.delta_since(epoch);
                        // The delta brings the session to the directory's
                        // current epoch; record it so the next serving
                        // request passes the fence.
                        session_epoch = Some(delta.epoch);
                        Response::DirectoryUpdate(delta).encode_into(scratch.buf());
                    }
                    None => encode_error_into(scratch.buf(), "no directory attached"),
                }
            }
            Request::Gossip { from: _, vector } => {
                // Anti-entropy pull (v9): answer the peer's epoch vector
                // with every record it has not seen. Like `Sync`, a
                // successful pull brings the session current for the
                // fence — a vector-resyncing client passes it without a
                // second round trip.
                scratch.begin();
                match shared
                    .directory
                    .as_ref()
                    .and_then(|d| d.gossip_delta(&vector))
                {
                    Some(delta) => {
                        session_epoch = Some(delta.epoch);
                        Response::GossipDelta(delta).encode_into(scratch.buf());
                    }
                    None => encode_error_into(scratch.buf(), "no directory attached"),
                }
            }
            Request::Warm {
                watermark,
                max_refills,
            } => {
                scratch.begin();
                // Same panic containment as the take paths: a poisoned
                // refill answers this client instead of hanging it.
                let sweep = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    shared.pool.warm_budgeted(
                        usize::try_from(watermark).unwrap_or(usize::MAX),
                        usize::try_from(max_refills).unwrap_or(usize::MAX),
                    )
                }));
                match sweep {
                    Ok(refills) => Response::Warmed {
                        refills: refills as u64,
                    }
                    .encode_into(scratch.buf()),
                    Err(_) => encode_error_into(scratch.buf(), "internal pool failure"),
                }
            }
            Request::Trace { max_events } => {
                scratch.begin();
                Response::TraceDump(shared.trace_dump(max_events)).encode_into(scratch.buf());
            }
        }
        // Control responses (the batch path sent vectored and continued
        // above) never carry correlation payloads, so they bypass the
        // zero-copy reuse accounting.
        scratch.finish_and_send(&mut ch, None)?;
    }
}

/// Runs one credit-controlled subscription to completion: pushes a
/// [`Response::CotChunk`] per granted credit, blocks for `Credit`/
/// `Unsubscribe` when the grant is exhausted, and closes with the
/// [`Response::StreamEnd`] accounting trailer.
///
/// The credit discipline is the stream's backpressure: the server never
/// has more chunks in flight than the client granted, so a slow consumer
/// bounds pool drain and socket buffering instead of being buried — the
/// serving-side analogue of the Ironman PU streaming extension outputs at
/// the rate the compute side absorbs them.
///
/// Chunks take the scatter-gather path ([`Scratch::send_batch_vectored`]):
/// the `z`/`y` block runs are written to the socket straight from the
/// shard's ring, so a push serializes only the fixed head and the packed
/// choice bits (`write_vectored` returns once the socket buffer holds
/// the frame, not once the peer read it — transmission still overlaps
/// the next take).
/// Exit-safe tracking of one subscription's promised-but-unpushed
/// correlations in the service-wide backlog counter: grants raise it,
/// pushes lower it, and whatever is still outstanding when the
/// subscription ends (any exit path, including errors) is released by
/// `Drop`, so the counter never leaks a dead stream's demand.
struct PendingCots<'a> {
    counter: &'a AtomicU64,
    outstanding: u64,
}

impl<'a> PendingCots<'a> {
    fn new(counter: &'a AtomicU64) -> Self {
        PendingCots {
            counter,
            outstanding: 0,
        }
    }

    fn grant(&mut self, cots: u64) {
        // The shared counter moves by exactly what `outstanding` records
        // (both saturate together), so Drop's release always balances —
        // a hostile credit flood cannot leak phantom backlog into the
        // fleet-wide demand signal.
        let grown = self.outstanding.saturating_add(cots);
        self.counter
            .fetch_add(grown - self.outstanding, Ordering::Relaxed);
        self.outstanding = grown;
    }

    fn push(&mut self, cots: u64) {
        let n = cots.min(self.outstanding);
        self.outstanding -= n;
        self.counter.fetch_sub(n, Ordering::Relaxed);
    }
}

impl Drop for PendingCots<'_> {
    fn drop(&mut self) {
        self.counter.fetch_sub(self.outstanding, Ordering::Relaxed);
    }
}

fn serve_subscription<R: Read, W: Write>(
    ch: &mut StreamTransport<R, W>,
    shared: &ServiceShared,
    batch: usize,
    mut credits: u64,
    session: &str,
    recv: &mut Vec<u8>,
    scratch: &mut Scratch,
) -> Result<(), ChannelError> {
    let mut chunks = 0u64;
    let mut cots = 0u64;
    let mut handoff_sent = false;
    let self_id = shared.self_id.load(Ordering::Relaxed);
    let mut pending = PendingCots::new(&shared.counters.pending_stream_cots);
    pending.grant(credits.saturating_mul(batch as u64));
    loop {
        // Cooperative drain (v9): once this server is marked draining,
        // announce the session's ring successor in-stream — one push,
        // no credit consumed — so the client can fail over without a
        // single discovery round trip. `successor_for` is `Some` only
        // while the member is actually draining, so the steady-state
        // cost is one relaxed load and one snapshot read per chunk.
        if !handoff_sent && self_id != u64::MAX {
            if let Some(succ) = shared
                .directory
                .as_ref()
                .and_then(|d| d.successor_for(session, self_id))
            {
                scratch.begin();
                Response::DrainHandoff {
                    id: succ.id,
                    addr: succ.addr,
                    name: succ.name,
                }
                .encode_into(scratch.buf());
                scratch.finish_and_send(ch, None)?;
                handoff_sent = true;
            }
        }
        if shared.stop.load(Ordering::SeqCst) {
            // Server-initiated shutdown ends the stream cleanly: the
            // trailer tells the client exactly what it was sent.
            scratch.begin();
            Response::StreamEnd { chunks, cots }.encode_into(scratch.buf());
            return scratch.finish_and_send(ch, None);
        }
        if credits == 0 {
            // Grant exhausted: block until the client extends or ends the
            // stream (its grants ride the full-duplex socket, so they are
            // usually already queued by the time we look). The wait is
            // traced: a stream stalling on credits is consumer-bound, the
            // mirror image of a pool stalling on extensions.
            let credit_watch = Stopwatch::start();
            ch.recv_bytes_into(recv)?;
            match Request::decode(recv) {
                Ok(Request::Credit { n }) => {
                    shared
                        .telemetry
                        .trace
                        .push(EventKind::CreditWait, credit_watch.elapsed_nanos());
                    credits = credits.saturating_add(n);
                    pending.grant(n.saturating_mul(batch as u64));
                }
                Ok(Request::Unsubscribe) => {
                    scratch.begin();
                    Response::StreamEnd { chunks, cots }.encode_into(scratch.buf());
                    return scratch.finish_and_send(ch, None);
                }
                Ok(other) => {
                    let msg = format!("unexpected {other:?} inside a subscription");
                    scratch.begin();
                    encode_error_into(scratch.buf(), &msg);
                    let _ = scratch.finish_and_send(ch, None);
                    return Err(ChannelError::Io(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        msg,
                    )));
                }
                Err(e) => {
                    scratch.begin();
                    encode_error_into(scratch.buf(), &e.to_string());
                    let _ = scratch.finish_and_send(ch, None);
                    return Err(e);
                }
            }
        } else {
            // Zero-copy push: borrow the shard's ring and scatter-gather
            // the chunk onto the socket (see Scratch::send_batch_vectored
            // — the z/y runs never land in the frame buffer).
            scratch.begin();
            let push_watch = Stopwatch::start();
            let mut sent: Result<(), ChannelError> = Ok(());
            let take = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                shared.pool.take_with_shard(batch, |slice, shard| {
                    sent = scratch.send_batch_vectored(ch, Some(chunks), slice, &shared.counters);
                    shard
                })
            }));
            match take {
                Ok(shard) => {
                    cots += batch as u64;
                    shared
                        .counters
                        .cots_served
                        .fetch_add(batch as u64, Ordering::Relaxed);
                    if let Err(e) = sent {
                        // The write deadline fired: this subscriber stopped
                        // draining its pushes. Evict it via tracked close
                        // (the session thread deregisters the socket on
                        // return) — counted and traced, with the stream's
                        // still-promised correlations as the trace arg.
                        if matches!(e, ChannelError::TimedOut) {
                            shared
                                .counters
                                .subscribers_evicted
                                .fetch_add(1, Ordering::Relaxed);
                            shared
                                .telemetry
                                .trace
                                .push(EventKind::SubscriberEvicted, pending.outstanding);
                        }
                        return Err(e);
                    }
                    shared.telemetry.chunk_push[shard].record_elapsed(push_watch);
                    shared
                        .telemetry
                        .trace
                        .push(EventKind::ChunkPush, batch as u64);
                    chunks += 1;
                    credits -= 1;
                    pending.push(batch as u64);
                }
                Err(_) => {
                    scratch.begin(); // the chunk frame may be half-written
                    encode_error_into(scratch.buf(), "internal pool failure");
                    let _ = scratch.finish_and_send(ch, None);
                    return Err(ChannelError::Io(std::io::Error::other(
                        "pool take panicked mid-subscription",
                    )));
                }
            }
        }
    }
}

/// A client session against a [`CotService`].
///
/// The client retains one frame receive buffer for the session's
/// lifetime; the buffer-reusing request paths
/// ([`CotClient::request_cots_into`], [`CotSubscription::next_chunk_into`])
/// decode straight from it into a caller-retained [`CotBatch`], so a
/// steady-state consumer allocates nothing per batch.
#[derive(Debug)]
pub struct CotClient {
    ch: TcpTransport,
    max_request: u64,
    /// The server's directory epoch as of the last `Welcome` or
    /// `DirectoryUpdate` (0 for a directory-less server).
    server_epoch: u64,
    /// Retained frame receive buffer (the wire side of the zero-copy
    /// receive path).
    recv_buf: Vec<u8>,
}

impl CotClient {
    /// Connects, handshakes, and exchanges `Hello`/`Welcome` as an
    /// epoch-unaware session (never fenced; see
    /// [`CotClient::connect_with_epoch`] for fleet-aware sessions).
    ///
    /// Since v8 every data-path session is born with the
    /// [`OpTimeouts::default`] deadlines — connect, read, and write all
    /// bounded — so no caller hangs forever on a blackholed peer by
    /// accident; an expired deadline surfaces as the typed
    /// [`ChannelError::TimedOut`]. Callers that need different bounds use
    /// [`CotClient::connect_with_timeouts`].
    ///
    /// # Errors
    ///
    /// Fails on connection/handshake errors or an unexpected first
    /// response.
    pub fn connect<A: ToSocketAddrs>(addr: A, name: &str) -> Result<CotClient, ChannelError> {
        Self::connect_with_epoch(addr, name, EPOCH_UNAWARE)
    }

    /// Connects announcing the caller's directory epoch: the server will
    /// fence correlation-serving requests with
    /// [`ChannelError::WrongEpoch`] once its directory moves past it
    /// (resync with [`CotClient::sync_directory`]). Deadlines as in
    /// [`CotClient::connect`].
    ///
    /// # Errors
    ///
    /// Same failure modes as [`CotClient::connect`].
    pub fn connect_with_epoch<A: ToSocketAddrs>(
        addr: A,
        name: &str,
        epoch: u64,
    ) -> Result<CotClient, ChannelError> {
        Self::connect_with_timeouts(addr, name, epoch, OpTimeouts::default())
    }

    /// The fully explicit connect: every resolved address candidate is
    /// tried with `timeouts.connect`, and the session socket carries
    /// `timeouts.read`/`timeouts.write` as its per-op deadlines
    /// (`SO_RCVTIMEO`/`SO_SNDTIMEO`) thereafter.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`CotClient::connect`], plus
    /// [`ChannelError::TimedOut`] when a deadline expires.
    pub fn connect_with_timeouts<A: ToSocketAddrs>(
        addr: A,
        name: &str,
        epoch: u64,
        timeouts: OpTimeouts,
    ) -> Result<CotClient, ChannelError> {
        let mut last_err: Option<std::io::Error> = None;
        for candidate in addr.to_socket_addrs().map_err(ChannelError::from)? {
            match TcpStream::connect_timeout(&candidate, timeouts.connect) {
                Ok(stream) => {
                    stream
                        .set_read_timeout(Some(timeouts.read))
                        .map_err(ChannelError::from)?;
                    stream
                        .set_write_timeout(Some(timeouts.write))
                        .map_err(ChannelError::from)?;
                    let ch = TcpTransport::from_stream(stream).map_err(ChannelError::from)?;
                    return Self::open_session(ch, name, epoch);
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.map_or_else(
            || {
                ChannelError::Io(std::io::Error::new(
                    std::io::ErrorKind::AddrNotAvailable,
                    "address resolved to no candidates",
                ))
            },
            ChannelError::from,
        ))
    }

    /// Like [`CotClient::connect_with_epoch`], but with every step —
    /// connect, and each read/write of the session thereafter — bounded
    /// by `timeout`. Background controllers (health probes, the fleet
    /// warm-up) use this so one blackholed server costs a timeout, not
    /// an OS-default connect stall.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`CotClient::connect`], plus timeouts
    /// (surfaced as I/O errors).
    pub fn connect_timeout(
        addr: std::net::SocketAddr,
        name: &str,
        epoch: u64,
        timeout: std::time::Duration,
    ) -> Result<CotClient, ChannelError> {
        let stream = TcpStream::connect_timeout(&addr, timeout).map_err(ChannelError::from)?;
        stream
            .set_read_timeout(Some(timeout))
            .map_err(ChannelError::from)?;
        stream
            .set_write_timeout(Some(timeout))
            .map_err(ChannelError::from)?;
        let ch = TcpTransport::from_stream(stream).map_err(ChannelError::from)?;
        Self::open_session(ch, name, epoch)
    }

    /// The shared `Hello`/`Welcome` exchange over an already-handshaken
    /// transport.
    fn open_session(
        mut ch: TcpTransport,
        name: &str,
        epoch: u64,
    ) -> Result<CotClient, ChannelError> {
        ch.send_bytes(
            Request::Hello {
                name: name.to_string(),
                epoch,
            }
            .encode(),
        )?;
        match Response::decode(&ch.recv_bytes()?)? {
            Response::Welcome {
                max_request,
                epoch: server_epoch,
                ..
            } => Ok(CotClient {
                ch,
                max_request,
                server_epoch,
                recv_buf: Vec::new(),
            }),
            other => Err(reject(other)),
        }
    }

    /// Largest batch one [`CotClient::request_cots`] call may ask for.
    pub fn max_request(&self) -> u64 {
        self.max_request
    }

    /// The server's directory epoch as last observed (from `Welcome` or
    /// the most recent [`CotClient::sync_directory`]).
    pub fn server_epoch(&self) -> u64 {
        self.server_epoch
    }

    /// Announces `have_epoch` as this session's directory epoch and
    /// fetches the membership delta since it. After this call the
    /// session passes the server's fence until the directory moves again.
    ///
    /// # Errors
    ///
    /// Fails on transport errors, on a server without a directory, or an
    /// unexpected response.
    pub fn sync_directory(&mut self, have_epoch: u64) -> Result<DirectoryDelta, ChannelError> {
        self.ch
            .send_bytes(Request::Sync { epoch: have_epoch }.encode())?;
        match Response::decode(&self.ch.recv_bytes()?)? {
            Response::DirectoryUpdate(delta) => {
                self.server_epoch = delta.epoch;
                Ok(delta)
            }
            other => Err(reject(other)),
        }
    }

    /// Anti-entropy pull (v9): presents `vector` (this side's per-origin
    /// epoch vector, `from` identifying the pulling replica —
    /// `u64::MAX` for unattributed pullers like clients) and returns
    /// every membership record the vector does not cover. Also brings
    /// this session current for the server's epoch fence, so a
    /// vector-based resync needs no separate `Sync` round trip.
    ///
    /// # Errors
    ///
    /// Fails on transport errors, on a server without a
    /// replication-capable directory, or an unexpected response.
    pub fn gossip(
        &mut self,
        from: u64,
        vector: Vec<(u64, u64)>,
    ) -> Result<DirectoryDelta, ChannelError> {
        self.ch
            .send_bytes(Request::Gossip { from, vector }.encode())?;
        match Response::decode(&self.ch.recv_bytes()?)? {
            Response::GossipDelta(delta) => {
                self.server_epoch = delta.epoch;
                Ok(delta)
            }
            other => Err(reject(other)),
        }
    }

    /// Asks the server to run one budgeted warm-up sweep (at most
    /// `max_refills` shard refills toward `watermark`, driest shards
    /// first); returns the number of shards actually refilled. The
    /// fleet-level warm-up controller steers refill budget through this.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or an unexpected response.
    pub fn warm(&mut self, watermark: u64, max_refills: u64) -> Result<u64, ChannelError> {
        self.ch.send_bytes(
            Request::Warm {
                watermark,
                max_refills,
            }
            .encode(),
        )?;
        match Response::decode(&self.ch.recv_bytes()?)? {
            Response::Warmed { refills } => Ok(refills),
            other => Err(reject(other)),
        }
    }

    /// Fetches `n` fresh correlations.
    ///
    /// # Errors
    ///
    /// Fails fast with [`ChannelError::RequestTooLarge`] — before any
    /// bytes hit the wire — when `n` is zero or exceeds the server's
    /// advertised [`CotClient::max_request`] (callers that want
    /// transparent splitting go through `ironman-cluster`'s
    /// `ClusterClient`); otherwise fails on transport errors or a
    /// server-side [`Response::Error`].
    pub fn request_cots(&mut self, n: usize) -> Result<CotBatch, ChannelError> {
        let mut out = CotBatch::default();
        self.request_cots_into(n, &mut out)?;
        Ok(out)
    }

    /// Fetches `n` fresh correlations into a caller-retained batch,
    /// reusing its allocations — the zero-copy form of
    /// [`CotClient::request_cots`]. On error `out`'s contents are
    /// unspecified.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`CotClient::request_cots`].
    pub fn request_cots_into(&mut self, n: usize, out: &mut CotBatch) -> Result<(), ChannelError> {
        if n == 0 || n as u64 > self.max_request {
            return Err(ChannelError::RequestTooLarge {
                max: self.max_request,
                requested: n as u64,
            });
        }
        self.ch
            .send_bytes(Request::RequestCot { n: n as u64 }.encode())?;
        self.ch.recv_bytes_into(&mut self.recv_buf)?;
        match decode_response_into(&self.recv_buf, out)? {
            HotResponse::Cots => Ok(()),
            HotResponse::Other(other) => Err(reject(*other)),
            HotResponse::CotChunk { seq } => Err(stream_violation(&format!(
                "chunk seq {seq} outside a subscription"
            ))),
        }
    }

    /// Fetches a service statistics snapshot.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or an unexpected response.
    pub fn stats(&mut self) -> Result<ServiceStats, ChannelError> {
        self.ch.send_bytes(Request::Stats.encode())?;
        match Response::decode(&self.ch.recv_bytes()?)? {
            Response::Stats(s) => Ok(*s),
            other => Err(reject(other)),
        }
    }

    /// Fetches the server's recent trace events (newest `max_events`,
    /// its service-level ring merged with every pool shard's by
    /// timestamp; the server caps the reply size on its side).
    ///
    /// # Errors
    ///
    /// Fails on transport errors or an unexpected response.
    pub fn trace(&mut self, max_events: u64) -> Result<Vec<TraceEvent>, ChannelError> {
        self.ch.send_bytes(Request::Trace { max_events }.encode())?;
        match Response::decode(&self.ch.recv_bytes()?)? {
            Response::TraceDump(events) => Ok(events),
            other => Err(reject(other)),
        }
    }

    /// Asks the server to shut down and consumes this session.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or an unexpected response.
    pub fn shutdown_server(mut self) -> Result<(), ChannelError> {
        self.ch.send_bytes(Request::Shutdown.encode())?;
        match Response::decode(&self.ch.recv_bytes()?)? {
            Response::Goodbye => Ok(()),
            other => Err(reject(other)),
        }
    }

    /// This session's transport accounting.
    pub fn transport_stats(&self) -> ChannelStats {
        self.ch.stats()
    }

    /// Opens a credit-controlled stream of exactly `chunks` batches of
    /// `batch` correlations each (the streaming analogue of calling
    /// [`CotClient::request_cots`] `chunks` times, minus the per-request
    /// round trip: the server pushes ahead of demand, up to the credit
    /// window).
    ///
    /// # Errors
    ///
    /// Fails fast with [`ChannelError::RequestTooLarge`] when `batch`
    /// exceeds [`CotClient::max_request`] (or is zero), and on transport
    /// errors.
    pub fn subscribe(
        &mut self,
        batch: usize,
        chunks: u64,
    ) -> Result<CotSubscription<'_>, ChannelError> {
        if batch == 0 || batch as u64 > self.max_request {
            return Err(ChannelError::RequestTooLarge {
                max: self.max_request,
                requested: batch as u64,
            });
        }
        let window = CotSubscription::CREDIT_WINDOW;
        // Only ever grant credits we intend to consume: the grant total
        // across the subscription's lifetime is exactly `chunks`, so the
        // stream ends with zero credits outstanding and no discarded work.
        let initial = window.min(chunks);
        self.ch.send_bytes(
            Request::Subscribe {
                batch: batch as u64,
                credits: initial,
            }
            .encode(),
        )?;
        Ok(CotSubscription {
            client: self,
            batch: batch as u64,
            remaining: chunks,
            granted: initial,
            next_seq: 0,
            cots_received: 0,
            ended: false,
            handoff: None,
        })
    }
}

/// Final accounting of a completed [`CotSubscription`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StreamSummary {
    /// Chunks the server pushed (including any drained unconsumed ones).
    pub chunks: u64,
    /// Correlations the server pushed.
    pub cots: u64,
}

/// An active streaming subscription on a [`CotClient`] session.
///
/// Pull chunks with [`CotSubscription::next_chunk`]; the subscription
/// manages the credit window itself, topping the server up *before*
/// blocking on the next chunk so the server's push pipeline never drains
/// between grants. Credits are accounted exactly: the subscription only
/// ever grants what it will consume, and a server chunk that arrives
/// without a matching credit is a protocol error, not a negative balance.
#[derive(Debug)]
pub struct CotSubscription<'a> {
    client: &'a mut CotClient,
    batch: u64,
    /// Chunks not yet received.
    remaining: u64,
    /// Credits granted whose chunks have not yet arrived (`granted <=
    /// remaining` is the subscription invariant).
    granted: u64,
    next_seq: u64,
    cots_received: u64,
    ended: bool,
    /// The draining server's announced successor `(id, addr, name)`,
    /// recorded when a `DrainHandoff` push arrives mid-stream (v9).
    handoff: Option<(u64, String, String)>,
}

impl CotSubscription<'_> {
    /// Credit window: chunks the server may have in flight at once. Deep
    /// enough to hide a refill behind in-flight chunks, small enough that
    /// a slow consumer holds back the pool drain.
    pub const CREDIT_WINDOW: u64 = 8;

    /// Credits currently granted but not yet consumed by an arrived chunk.
    pub fn credits_outstanding(&self) -> u64 {
        self.granted
    }

    /// The drain handoff `(successor id, addr, name)` the server
    /// announced mid-stream, if any — the zero-roundtrip failover hint a
    /// fleet client resumes the stream at.
    pub fn handoff(&self) -> Option<&(u64, String, String)> {
        self.handoff.as_ref()
    }

    /// Chunks still expected by this subscription.
    pub fn chunks_remaining(&self) -> u64 {
        self.remaining
    }

    /// Receives the next chunk, or `None` once the stream is over —
    /// either the subscribed count arrived, or the server ended the
    /// stream early (e.g. it is shutting down); in both cases the
    /// accounting trailer has been received and verified. Compare
    /// [`CotSubscription::chunks_remaining`] against zero (or check the
    /// [`CotSubscription::finish`] summary) to tell the two apart.
    ///
    /// # Errors
    ///
    /// Fails on transport errors, a server-side error, or any accounting
    /// violation (out-of-order sequence, wrong chunk size, a chunk without
    /// a granted credit, or a trailer that disagrees with what arrived).
    pub fn next_chunk(&mut self) -> Result<Option<CotBatch>, ChannelError> {
        let mut out = CotBatch::default();
        Ok(self.next_chunk_into(&mut out)?.then_some(out))
    }

    /// Receives the next chunk into a caller-retained batch, reusing its
    /// allocations — the zero-copy form of
    /// [`CotSubscription::next_chunk`]. Returns `false` once the stream
    /// is over (in which case `out`'s contents are unspecified).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`CotSubscription::next_chunk`].
    pub fn next_chunk_into(&mut self, out: &mut CotBatch) -> Result<bool, ChannelError> {
        if self.ended || self.remaining == 0 {
            self.close()?;
            return Ok(false);
        }
        // Top up the window before blocking: grants ride the full-duplex
        // socket while earlier chunks are still in flight, so the server
        // sees them before its balance reaches zero.
        let half = Self::CREDIT_WINDOW.div_ceil(2);
        if self.granted <= half && self.granted < self.remaining {
            let add = Self::CREDIT_WINDOW.min(self.remaining) - self.granted;
            if add > 0 {
                self.client
                    .ch
                    .send_bytes(Request::Credit { n: add }.encode())?;
                self.granted += add;
            }
        }
        loop {
            let client = &mut *self.client;
            client.ch.recv_bytes_into(&mut client.recv_buf)?;
            match decode_response_into(&client.recv_buf, out)? {
                HotResponse::CotChunk { seq } => {
                    if out.len() as u64 != self.batch {
                        return Err(stream_violation(&format!(
                            "chunk of {} correlations, subscribed for {}",
                            out.len(),
                            self.batch
                        )));
                    }
                    self.account_chunk(seq, out.len() as u64)?;
                    return Ok(true);
                }
                HotResponse::Other(other) => match *other {
                    // The server may end the stream early (shutdown): its
                    // trailer must still agree with every chunk this side
                    // observed. `remaining` is deliberately left non-zero so
                    // the truncation is observable through `chunks_remaining`.
                    Response::StreamEnd { chunks, cots } => {
                        self.ended = true;
                        self.verify_trailer(chunks, cots)?;
                        return Ok(false);
                    }
                    // A fenced Subscribe never started the stream: surface the
                    // typed error and mark the subscription over, so the
                    // session stays in lockstep for the caller's resync.
                    Response::WrongEpoch { epoch } => {
                        self.ended = true;
                        return Err(ChannelError::WrongEpoch { current: epoch });
                    }
                    // The draining server's successor announcement (v9):
                    // record it and keep waiting for the chunk — the push
                    // consumed no credit and carries no payload.
                    Response::DrainHandoff { id, addr, name } => {
                        self.handoff = Some((id, addr, name));
                    }
                    other => return Err(reject(other)),
                },
                HotResponse::Cots => {
                    return Err(stream_violation(
                        "one-shot Cots response inside a subscription",
                    ))
                }
            }
        }
    }

    /// Ends the subscription (early or after completion), drains any
    /// in-flight chunks, and returns the server's accounting trailer.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or a trailer that disagrees with the
    /// chunks actually observed.
    pub fn finish(mut self) -> Result<StreamSummary, ChannelError> {
        self.end()
    }

    /// Non-consuming form of [`CotSubscription::finish`] (idempotent):
    /// closes the stream if it is still open and returns the accounting
    /// observed so far.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`CotSubscription::finish`].
    pub fn end(&mut self) -> Result<StreamSummary, ChannelError> {
        self.close()?;
        Ok(StreamSummary {
            chunks: self.next_seq,
            cots: self.cots_received,
        })
    }

    /// The shared per-chunk bookkeeping of the consume and drain paths:
    /// sequence order, credit consumption (a chunk without a granted
    /// credit is the "negative credits" case this subscription exists to
    /// rule out), and the running totals.
    fn account_chunk(&mut self, seq: u64, len: u64) -> Result<(), ChannelError> {
        if seq != self.next_seq {
            return Err(stream_violation(&format!(
                "chunk out of order: got seq {seq}, expected {}",
                self.next_seq
            )));
        }
        self.granted = self
            .granted
            .checked_sub(1)
            .ok_or_else(|| stream_violation("server pushed a chunk without a granted credit"))?;
        self.next_seq += 1;
        self.remaining = self.remaining.saturating_sub(1);
        self.cots_received += len;
        Ok(())
    }

    /// Byte-exact accounting: the server's trailer must agree with every
    /// chunk this side observed.
    fn verify_trailer(&self, chunks: u64, cots: u64) -> Result<(), ChannelError> {
        if chunks != self.next_seq || cots != self.cots_received {
            return Err(stream_violation(&format!(
                "trailer claims {chunks} chunks/{cots} cots, observed {}/{}",
                self.next_seq, self.cots_received
            )));
        }
        Ok(())
    }

    fn close(&mut self) -> Result<(), ChannelError> {
        if self.ended {
            return Ok(());
        }
        self.client.ch.send_bytes(Request::Unsubscribe.encode())?;
        // Chunks covered by already-granted credits may still be in
        // flight ahead of the trailer; drain and count them (into one
        // reused batch — drained payloads are accounted, not kept).
        let mut drained = CotBatch::default();
        loop {
            let client = &mut *self.client;
            client.ch.recv_bytes_into(&mut client.recv_buf)?;
            match decode_response_into(&client.recv_buf, &mut drained)? {
                HotResponse::CotChunk { seq } => self.account_chunk(seq, drained.len() as u64)?,
                HotResponse::Other(other) => match *other {
                    Response::StreamEnd { chunks, cots } => {
                        self.ended = true;
                        return self.verify_trailer(chunks, cots);
                    }
                    Response::WrongEpoch { epoch } => {
                        // A fenced Subscribe answered with WrongEpoch is
                        // the whole "stream": there is no trailer to wait
                        // for.
                        self.ended = true;
                        return Err(ChannelError::WrongEpoch { current: epoch });
                    }
                    // A handoff racing the unsubscribe is still recorded:
                    // the caller tearing this stream down is usually about
                    // to resume it elsewhere.
                    Response::DrainHandoff { id, addr, name } => {
                        self.handoff = Some((id, addr, name));
                    }
                    other => return Err(reject(other)),
                },
                HotResponse::Cots => {
                    return Err(stream_violation(
                        "one-shot Cots response inside a subscription",
                    ))
                }
            }
        }
    }
}

impl Drop for CotSubscription<'_> {
    /// A dropped subscription still unsubscribes and drains, so the
    /// underlying session stays usable for one-shot requests afterwards
    /// (errors are swallowed: the transport may already be gone).
    fn drop(&mut self) {
        if !self.ended {
            let _ = self.close();
        }
    }
}

/// Maps a non-success response to its typed error: service rejections,
/// epoch fences, and everything else as a protocol violation.
fn reject(resp: Response) -> ChannelError {
    match resp {
        Response::Error(msg) => service_error(&msg),
        Response::WrongEpoch { epoch } => ChannelError::WrongEpoch { current: epoch },
        Response::Unavailable { retry_after_ms } => ChannelError::Unavailable { retry_after_ms },
        other => unexpected_response(&other),
    }
}

fn stream_violation(msg: &str) -> ChannelError {
    ChannelError::Io(std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        format!("subscription protocol violation: {msg}"),
    ))
}

fn service_error(msg: &str) -> ChannelError {
    ChannelError::Service(msg.to_string())
}

fn unexpected_response(resp: &Response) -> ChannelError {
    ChannelError::Io(std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        format!("unexpected response: {resp:?}"),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ironman_core::Backend;
    use ironman_ot::ferret::FerretConfig;
    use ironman_ot::params::FerretParams;

    fn toy_engine() -> Engine {
        Engine::new(
            FerretConfig::new(FerretParams::toy()),
            Backend::ironman_default(),
        )
    }

    fn toy_service(shards: usize) -> CotService {
        let cfg = CotServiceConfig {
            shards,
            seed: 11,
            ..CotServiceConfig::default()
        };
        CotService::serve("127.0.0.1:0", &toy_engine(), cfg).expect("bind loopback")
    }

    #[test]
    fn single_client_session() {
        let service = toy_service(1);
        let mut client = CotClient::connect(service.addr(), "t1").unwrap();
        assert!(client.max_request() > 0);
        let batch = client.request_cots(64).unwrap();
        assert_eq!(batch.len(), 64);
        batch.verify().unwrap();
        let stats = client.stats().unwrap();
        assert_eq!(stats.cots_served, 64);
        assert_eq!(stats.clients_served, 1);
        let final_stats = service.shutdown();
        assert_eq!(final_stats.cots_served, 64);
    }

    #[test]
    fn scratch_reuse_counters_make_zero_copy_observable() {
        let service = toy_service(2);
        let mut client = CotClient::connect(service.addr(), "reuser").unwrap();
        let mut reused = CotBatch::default();
        for _ in 0..20 {
            client.request_cots_into(500, &mut reused).unwrap();
            assert_eq!(reused.len(), 500);
            reused.verify().unwrap();
        }
        let stats = client.stats().unwrap();
        assert_eq!(stats.cots_served, 20 * 500);
        // Only the 20 batch-carrying Cots responses are accounted: the
        // two alternating scratch buffers grow once each, then every
        // steady-state batch reuses them.
        assert_eq!(stats.scratch_allocs + stats.scratch_reuses, 20);
        assert!(
            stats.scratch_reuses >= 15,
            "expected steady-state buffer reuse, got {} reuses / {} allocs",
            stats.scratch_reuses,
            stats.scratch_allocs
        );
        assert_eq!(stats.register_failures, 0);
        service.shutdown();
    }

    #[test]
    fn oversized_request_fails_fast_client_side() {
        let service = toy_service(1);
        let mut client = CotClient::connect(service.addr(), "greedy").unwrap();
        let max = client.max_request();
        let sent_before = client.transport_stats().messages_sent;
        // Regression: an oversized request is rejected with the typed
        // error *before* any bytes hit the wire, not by a server error.
        let err = client.request_cots(max as usize + 1).unwrap_err();
        assert!(matches!(
            err,
            ChannelError::RequestTooLarge { max: m, requested } if m == max && requested == max + 1
        ));
        assert_eq!(client.transport_stats().messages_sent, sent_before);
        // Session survives the rejected request.
        client.request_cots(8).unwrap().verify().unwrap();
        service.shutdown();
    }

    #[test]
    fn streaming_subscription_delivers_exact_accounting() {
        let service = toy_service(2);
        let mut client = CotClient::connect(service.addr(), "streamer").unwrap();
        const BATCH: usize = 100;
        const CHUNKS: u64 = 25;
        let mut sub = client.subscribe(BATCH, CHUNKS).unwrap();
        let mut got = 0u64;
        while let Some(batch) = sub.next_chunk().unwrap() {
            assert_eq!(batch.len(), BATCH);
            batch.verify().unwrap();
            got += 1;
            // The credit discipline is enforced every step: outstanding
            // grants never exceed the window or the chunks still owed.
            assert!(sub.credits_outstanding() <= CotSubscription::CREDIT_WINDOW);
            assert!(sub.credits_outstanding() <= sub.chunks_remaining());
        }
        assert_eq!(got, CHUNKS);
        let summary = sub.finish().unwrap();
        assert_eq!(summary.chunks, CHUNKS);
        assert_eq!(summary.cots, CHUNKS * BATCH as u64);
        // The session drops back to one-shot mode afterwards.
        client.request_cots(8).unwrap().verify().unwrap();
        let stats = client.stats().unwrap();
        assert_eq!(stats.cots_served, CHUNKS * BATCH as u64 + 8);
        // Streamed chunks ride the two retained scratch buffers: after
        // they size themselves, every push is a reuse.
        assert!(
            stats.scratch_reuses >= CHUNKS - 4,
            "expected streamed chunks to reuse scratch buffers, got {} reuses",
            stats.scratch_reuses
        );
        service.shutdown();
    }

    #[test]
    fn early_finish_drains_in_flight_chunks() {
        let service = toy_service(1);
        let mut client = CotClient::connect(service.addr(), "quitter").unwrap();
        let mut sub = client.subscribe(64, 1000).unwrap();
        // Take a few chunks, then bail with most of the stream unread.
        for _ in 0..3 {
            sub.next_chunk().unwrap().unwrap().verify().unwrap();
        }
        let summary = sub.finish().unwrap();
        // The trailer covers everything pushed, consumed or drained.
        assert!(summary.chunks >= 3);
        assert_eq!(summary.cots, summary.chunks * 64);
        // Session still usable.
        client.request_cots(8).unwrap().verify().unwrap();
        service.shutdown();
    }

    #[test]
    fn server_still_rejects_oversized_requests_on_the_wire() {
        // The client fails fast now, but the server's own bound check is
        // the only defense against non-conforming peers — exercise it by
        // writing raw frames past the client-side check.
        let service = toy_service(1);
        let mut client = CotClient::connect(service.addr(), "hostile").unwrap();
        let max = client.max_request();
        for bad_n in [0u64, max + 1, u64::MAX] {
            client
                .ch
                .send_bytes(Request::RequestCot { n: bad_n }.encode())
                .unwrap();
            match Response::decode(&client.ch.recv_bytes().unwrap()).unwrap() {
                Response::Error(msg) => assert!(msg.contains("outside")),
                other => panic!("expected Error for n={bad_n}, got {other:?}"),
            }
        }
        // The session survives every rejection.
        client.request_cots(8).unwrap().verify().unwrap();
        service.shutdown();
    }

    #[test]
    fn dropped_subscription_leaves_session_usable() {
        let service = toy_service(1);
        let mut client = CotClient::connect(service.addr(), "dropper").unwrap();
        {
            let mut sub = client.subscribe(64, 100).unwrap();
            sub.next_chunk().unwrap().unwrap().verify().unwrap();
            // Dropped here without finish(): Drop must unsubscribe and
            // drain so the session below is not desynchronized.
        }
        client.request_cots(8).unwrap().verify().unwrap();
        service.shutdown();
    }

    #[test]
    fn oversized_subscription_batch_fails_fast() {
        let service = toy_service(1);
        let mut client = CotClient::connect(service.addr(), "greedy-stream").unwrap();
        let max = client.max_request();
        assert!(matches!(
            client.subscribe(max as usize + 1, 4).unwrap_err(),
            ChannelError::RequestTooLarge { .. }
        ));
        assert!(matches!(
            client.subscribe(0, 4).unwrap_err(),
            ChannelError::RequestTooLarge { .. }
        ));
        service.shutdown();
    }

    #[test]
    fn credit_outside_subscription_is_answered_not_fatal() {
        let service = toy_service(1);
        let mut client = CotClient::connect(service.addr(), "confused").unwrap();
        client
            .ch
            .send_bytes(Request::Credit { n: 3 }.encode())
            .unwrap();
        match Response::decode(&client.ch.recv_bytes().unwrap()).unwrap() {
            Response::Error(msg) => assert!(msg.contains("no active subscription")),
            other => panic!("unexpected response: {other:?}"),
        }
        // Session survives the stray flow-control message.
        client.request_cots(8).unwrap().verify().unwrap();
        service.shutdown();
    }

    /// The v6 observability surface end to end: latency histograms in
    /// `Stats` (per shard and merged service-wide) and a `Trace` dump
    /// carrying the pool's extension events. Skipped in substance under
    /// the telemetry `noop` feature (everything legitimately reads
    /// empty), but the wire paths still run.
    #[test]
    fn stats_carry_latency_histograms_and_traces() {
        let service = toy_service(2);
        let mut client = CotClient::connect(service.addr(), "observer").unwrap();
        const REQUESTS: u64 = 12;
        for _ in 0..REQUESTS {
            client.request_cots(64).unwrap();
        }
        let mut sub = client.subscribe(50, 6).unwrap();
        while sub.next_chunk().unwrap().is_some() {}
        sub.finish().unwrap();

        let stats = client.stats().unwrap();
        let measuring = !stats.latency.request_first_byte.is_empty();
        if measuring {
            // Every one-shot request landed in exactly one shard's
            // request→first-byte histogram; the service-wide view is
            // their merge.
            let shard_total: u64 = stats
                .shard_stats
                .iter()
                .map(|s| s.latency.request_first_byte.count())
                .sum();
            assert_eq!(shard_total, REQUESTS);
            assert_eq!(stats.latency.request_first_byte.count(), REQUESTS);
            assert_eq!(stats.latency.chunk_push.count(), 6);
            // Quantiles are readable and ordered.
            let p50 = stats.latency.request_first_byte.p50();
            let p99 = stats.latency.request_first_byte.p99();
            assert!(0 < p50 && p50 <= p99);
            // The pipelined pool ran extensions; their durations are in
            // the merged extension histogram.
            assert!(stats.latency.extension.count() > 0);

            let events = client.trace(1024).unwrap();
            assert!(!events.is_empty());
            assert!(events.windows(2).all(|w| w[0].at_nanos <= w[1].at_nanos));
            assert!(events
                .iter()
                .any(|e| e.kind == ironman_telemetry::EventKind::ExtensionEnd));
            assert!(events
                .iter()
                .any(|e| e.kind == ironman_telemetry::EventKind::ChunkPush));
        }
        service.shutdown();
    }

    #[test]
    fn unavailable_gate_declines_with_hint_then_reopens() {
        let service = toy_service(1);
        let mut client = CotClient::connect(service.addr(), "degraded-consumer").unwrap();
        service.set_unavailable_for(Duration::from_secs(30));
        // Serving requests are declined with a usable hint...
        let err = client.request_cots(8).unwrap_err();
        match err {
            ChannelError::Unavailable { retry_after_ms } => {
                assert!((1..=30_000).contains(&retry_after_ms));
            }
            other => panic!("expected Unavailable, got {other:?}"),
        }
        assert!(matches!(
            client.subscribe(8, 2).unwrap().next_chunk().unwrap_err(),
            ChannelError::Unavailable { .. }
        ));
        // ...while control ops keep working: a degraded server stays
        // observable, and the decline itself is counted.
        let stats = client.stats().unwrap();
        assert!(stats.unavailable_sent >= 2);
        // The gate reopens on clear and the same session serves again.
        service.clear_unavailable();
        client.request_cots(8).unwrap().verify().unwrap();
        service.shutdown();
    }

    #[test]
    fn armed_faults_fail_typed_and_heal_cleanly() {
        let service = toy_service(1);
        let mut client = CotClient::connect_with_timeouts(
            service.addr(),
            "corrupted",
            EPOCH_UNAWARE,
            crate::retry::OpTimeouts::uniform(Duration::from_millis(500)),
        )
        .unwrap();
        // Corrupt every read the server performs: the session must fail
        // with a typed error (never a panic, never an unbounded hang).
        // The server's in-flight blocking read passed the fault gate
        // before the plan armed, so the first request may still serve
        // cleanly — keep requesting until a later (corrupted) read kills
        // the session.
        service.set_faults(crate::fault::FaultPlan {
            flip_probability: 1.0,
            ..crate::fault::FaultPlan::default()
        });
        let mut observed = None;
        for _ in 0..50 {
            match client.request_cots(8) {
                Ok(_) => continue,
                Err(e) => {
                    observed = Some(e);
                    break;
                }
            }
        }
        let err = observed.expect("a fully corrupted link must surface an error");
        assert!(
            matches!(
                err,
                ChannelError::Service(_)
                    | ChannelError::Malformed { .. }
                    | ChannelError::Io(_)
                    | ChannelError::Disconnected
                    | ChannelError::TimedOut
            ),
            "corrupt link must surface typed, got {err:?}"
        );
        // Heal: new sessions serve normally and the injected faults were
        // counted into the stats surface.
        service.clear_faults();
        let mut healed = CotClient::connect(service.addr(), "healed").unwrap();
        healed.request_cots(8).unwrap().verify().unwrap();
        let stats = service.stats();
        assert!(stats.faults_injected > 0);
        service.shutdown();
    }

    #[test]
    fn blackholed_server_times_out_within_deadline() {
        let service = toy_service(1);
        let deadline = Duration::from_millis(300);
        let mut client = CotClient::connect_with_timeouts(
            service.addr(),
            "deadline-bound",
            EPOCH_UNAWARE,
            crate::retry::OpTimeouts::uniform(deadline),
        )
        .unwrap();
        service.set_faults(crate::fault::FaultPlan {
            blackhole: true,
            ..crate::fault::FaultPlan::default()
        });
        let started = std::time::Instant::now();
        let err = client.request_cots(8).unwrap_err();
        assert!(matches!(err, ChannelError::TimedOut), "got {err:?}");
        // The call was bounded by the deadline, not the outage.
        assert!(started.elapsed() < deadline + Duration::from_secs(2));
        // Heal before shutdown so the blackholed session thread unblocks.
        service.clear_faults();
        service.shutdown();
    }

    #[test]
    fn stuck_subscriber_is_evicted_within_write_deadline() {
        let service = toy_service(1);
        service.set_subscriber_write_timeout(Duration::from_millis(150));
        let mut client = CotClient::connect(service.addr(), "stuck").unwrap();
        let max = client.max_request();
        // Subscribe with a deep grant and then never read a byte: the
        // server pushes until the socket buffers fill, its write deadline
        // fires, and the session is evicted via tracked close.
        client
            .ch
            .send_bytes(
                Request::Subscribe {
                    batch: max,
                    credits: 10_000,
                }
                .encode(),
            )
            .unwrap();
        client.ch.flush().unwrap();
        let started = std::time::Instant::now();
        while service.stats().subscribers_evicted == 0 {
            assert!(
                started.elapsed() < Duration::from_secs(30),
                "subscriber never evicted"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
        let stats = service.stats();
        assert_eq!(stats.subscribers_evicted, 1);
        // The eviction released the dead stream's promised backlog.
        assert_eq!(stats.pending_stream_cots, 0);
        // Other sessions are untouched.
        let mut healthy = CotClient::connect(service.addr(), "healthy").unwrap();
        healthy.request_cots(8).unwrap().verify().unwrap();
        service.shutdown();
    }

    #[test]
    fn client_shutdown_request_stops_server() {
        let service = toy_service(1);
        let addr = service.addr();
        // An idle session must not keep the server alive past a shutdown
        // request: the sweep kicks its blocked read.
        let mut idle = CotClient::connect(addr, "idle").unwrap();
        let client = CotClient::connect(addr, "admin").unwrap();
        client.shutdown_server().unwrap();
        service.shutdown(); // idempotent: already stopping
        assert!(CotClient::connect(addr, "late").is_err());
        assert!(idle.request_cots(8).is_err());
    }
}
