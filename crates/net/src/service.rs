//! The multi-client COT service: a thread-per-connection server over a
//! shared, sharded pool, plus the matching client.
//!
//! The server plays the paper's host-side role: FERRET extensions (timed
//! by whichever backend the [`Engine`] carries) refill a
//! [`SharedCotPool`], and any number of concurrent PPML consumers drain
//! it over TCP sessions speaking the [`crate::proto`] protocol. Sessions
//! are independent: a slow client never blocks another except through
//! pool-shard contention, which the lock-stealing `take` keeps off the
//! fast path.

use crate::frame::VERSION;
use crate::proto::{Request, Response, ServiceStats, ShardStat};
use crate::transport::TcpTransport;
use ironman_core::{CotBatch, Engine, SharedCotPool};
use ironman_ot::channel::{ChannelError, ChannelStats, Transport};
use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

#[derive(Debug, Default)]
struct Counters {
    clients_served: AtomicU64,
    cots_served: AtomicU64,
}

/// State shared by the accept loop, every session thread, and the
/// [`CotService`] handle.
#[derive(Debug)]
struct ServiceShared {
    addr: SocketAddr,
    stop: AtomicBool,
    counters: Counters,
    pool: Arc<SharedCotPool>,
    sessions: Mutex<HashMap<u64, TcpStream>>,
}

impl ServiceShared {
    /// Stops the service from any thread: raises the flag, kicks every
    /// live session out of its blocking read, and pokes the listener so
    /// the accept loop observes the flag. Idempotent.
    fn initiate_shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        for stream in self.sessions.lock().expect("session stream lock").values() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        let _ = TcpStream::connect(self.addr);
    }

    fn stats(&self) -> ServiceStats {
        let shard_stats: Vec<ShardStat> = self
            .pool
            .shard_stats()
            .into_iter()
            .map(|(available, extensions_run)| ShardStat {
                available: available as u64,
                extensions_run: extensions_run as u64,
            })
            .collect();
        ServiceStats {
            clients_served: self.counters.clients_served.load(Ordering::Relaxed),
            cots_served: self.counters.cots_served.load(Ordering::Relaxed),
            extensions_run: shard_stats.iter().map(|s| s.extensions_run).sum(),
            available: shard_stats.iter().map(|s| s.available).sum(),
            shards: self.pool.shard_count() as u64,
            warmup_refills: self.pool.warmup_refills(),
            shard_stats,
        }
    }
}

/// Configuration of a [`CotService`].
#[derive(Clone, Debug)]
pub struct CotServiceConfig {
    /// Pool shard count (concurrent refill lanes).
    pub shards: usize,
    /// Seed for the per-shard FERRET sessions.
    pub seed: u64,
}

impl Default for CotServiceConfig {
    fn default() -> Self {
        CotServiceConfig { shards: 4, seed: 1 }
    }
}

/// A running COT server; dropping the handle does **not** stop it — call
/// [`CotService::shutdown`] (or send [`Request::Shutdown`] from a client).
#[derive(Debug)]
pub struct CotService {
    shared: Arc<ServiceShared>,
    accept_thread: Option<JoinHandle<()>>,
}

impl CotService {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port), builds a
    /// sharded pool over `engine`, and starts accepting sessions.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn serve<A: ToSocketAddrs>(
        addr: A,
        engine: &Engine,
        cfg: CotServiceConfig,
    ) -> std::io::Result<CotService> {
        let listener = TcpListener::bind(addr)?;
        let pool = Arc::new(SharedCotPool::new(engine, cfg.shards, cfg.seed));
        Ok(Self::serve_on(listener, pool))
    }

    /// Starts the accept loop on an already-bound listener over an
    /// existing pool (lets tests and embedders share pools across
    /// services).
    pub fn serve_on(listener: TcpListener, pool: Arc<SharedCotPool>) -> CotService {
        let addr = listener
            .local_addr()
            .expect("bound listener has an address");
        let shared = Arc::new(ServiceShared {
            addr,
            stop: AtomicBool::new(false),
            counters: Counters::default(),
            pool,
            sessions: Mutex::new(HashMap::new()),
        });
        let accept_thread = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };
        CotService {
            shared,
            accept_thread: Some(accept_thread),
        }
    }

    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The shared pool backing this service.
    pub fn pool(&self) -> &Arc<SharedCotPool> {
        &self.shared.pool
    }

    /// Current statistics snapshot (same data a [`Request::Stats`] gets).
    pub fn stats(&self) -> ServiceStats {
        self.shared.stats()
    }

    /// Stops accepting, waits for the accept loop (and through it all
    /// session threads) to finish, and returns the final statistics.
    pub fn shutdown(mut self) -> ServiceStats {
        self.shared.initiate_shutdown();
        if let Some(t) = self.accept_thread.take() {
            t.join().expect("accept thread panicked");
        }
        self.stats()
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<ServiceShared>) {
    let mut threads: Vec<JoinHandle<()>> = Vec::new();
    let mut next_session_id = 0u64;
    let mut consecutive_errors = 0u32;
    while !shared.stop.load(Ordering::SeqCst) {
        let stream = match listener.accept() {
            Ok((stream, _)) => {
                consecutive_errors = 0;
                stream
            }
            // Transient failures (ECONNABORTED, fd exhaustion under load)
            // must not kill the whole service; only a persistent error
            // storm does.
            Err(_) => {
                consecutive_errors += 1;
                if consecutive_errors >= 100 {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(10));
                continue;
            }
        };
        if shared.stop.load(Ordering::SeqCst) {
            break; // the shutdown poke itself
        }
        shared
            .counters
            .clients_served
            .fetch_add(1, Ordering::Relaxed);
        // Register a handle to the raw socket so a shutdown can unblock
        // this session's reads; registration failure is not fatal.
        let session_id = next_session_id;
        next_session_id += 1;
        if let Ok(raw) = stream.try_clone() {
            shared
                .sessions
                .lock()
                .expect("session stream lock")
                .insert(session_id, raw);
        }
        // Reap finished sessions so `threads` tracks live connections, not
        // the server's lifetime total.
        threads.retain(|t| !t.is_finished());
        let shared = Arc::clone(shared);
        threads.push(std::thread::spawn(move || {
            // A client that fails its handshake (or drops mid-session) only
            // kills its own session thread.
            if let Ok(transport) = TcpTransport::from_stream(stream) {
                let _ = serve_session(transport, &shared);
            }
            // Deregister (dropping the last socket handle closes the fd,
            // so a departed session's peer sees EOF immediately).
            shared
                .sessions
                .lock()
                .expect("session stream lock")
                .remove(&session_id);
        }));
    }
    // A session accepted concurrently with a shutdown may have registered
    // after the initiator's sweep; sweeping again here (the accept thread
    // runs strictly after every registration it performed) guarantees no
    // session thread is left blocked before the joins below.
    for stream in shared
        .sessions
        .lock()
        .expect("session stream lock")
        .values()
    {
        let _ = stream.shutdown(std::net::Shutdown::Both);
    }
    for handle in threads {
        let _ = handle.join();
    }
}

fn serve_session(mut ch: TcpTransport, shared: &ServiceShared) -> Result<(), ChannelError> {
    let max_request = shared.pool.max_request() as u64;
    loop {
        let request = match Request::decode(&ch.recv_bytes()?) {
            Ok(r) => r,
            Err(e) => {
                // Answer garbage with an Error frame, then drop the session.
                let _ = ch.send_bytes(Response::Error(e.to_string()).encode());
                let _ = ch.flush();
                return Err(e);
            }
        };
        let response = match request {
            Request::Hello { .. } => Response::Welcome {
                version: VERSION,
                max_request,
            },
            Request::RequestCot { n } => {
                if n == 0 || n > max_request {
                    Response::Error(format!("batch size {n} outside 1..={max_request}"))
                } else {
                    // A panicking take must answer this client, not kill its
                    // session silently (and through the hung socket, the
                    // client).
                    let take = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        shared.pool.take(n as usize)
                    }));
                    match take {
                        Ok(batch) => {
                            shared
                                .counters
                                .cots_served
                                .fetch_add(batch.len() as u64, Ordering::Relaxed);
                            Response::Cots(batch)
                        }
                        Err(_) => Response::Error("internal pool failure".to_string()),
                    }
                }
            }
            Request::Stats => Response::Stats(shared.stats()),
            Request::Shutdown => {
                // Answer first (the requester deserves its Goodbye), then
                // actually stop the server: flag + session sweep + listener
                // poke, exactly as CotService::shutdown does.
                ch.send_bytes(Response::Goodbye.encode())?;
                ch.flush()?;
                shared.initiate_shutdown();
                return Ok(());
            }
            Request::Subscribe { batch, credits } => {
                if batch == 0 || batch > max_request {
                    Response::Error(format!("chunk size {batch} outside 1..={max_request}"))
                } else {
                    serve_subscription(&mut ch, shared, batch as usize, credits)?;
                    continue; // StreamEnd already sent; back to one-shot mode
                }
            }
            // Flow-control messages are only meaningful inside a
            // subscription; outside one they are a client bug, answered
            // (session kept) rather than dropped.
            Request::Credit { .. } | Request::Unsubscribe => {
                Response::Error("no active subscription".to_string())
            }
        };
        ch.send_bytes(response.encode())?;
        ch.flush()?;
    }
}

/// Runs one credit-controlled subscription to completion: pushes a
/// [`Response::CotChunk`] per granted credit, blocks for `Credit`/
/// `Unsubscribe` when the grant is exhausted, and closes with the
/// [`Response::StreamEnd`] accounting trailer.
///
/// The credit discipline is the stream's backpressure: the server never
/// has more chunks in flight than the client granted, so a slow consumer
/// bounds pool drain and socket buffering instead of being buried — the
/// serving-side analogue of the Ironman PU streaming extension outputs at
/// the rate the compute side absorbs them.
fn serve_subscription(
    ch: &mut TcpTransport,
    shared: &ServiceShared,
    batch: usize,
    mut credits: u64,
) -> Result<(), ChannelError> {
    let mut chunks = 0u64;
    let mut cots = 0u64;
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            // Server-initiated shutdown ends the stream cleanly: the
            // trailer tells the client exactly what it was sent.
            ch.send_bytes(Response::StreamEnd { chunks, cots }.encode())?;
            ch.flush()?;
            return Ok(());
        }
        if credits == 0 {
            // Grant exhausted: block until the client extends or ends the
            // stream (its grants ride the full-duplex socket, so they are
            // usually already queued by the time we look).
            match Request::decode(&ch.recv_bytes()?) {
                Ok(Request::Credit { n }) => credits = credits.saturating_add(n),
                Ok(Request::Unsubscribe) => {
                    ch.send_bytes(Response::StreamEnd { chunks, cots }.encode())?;
                    ch.flush()?;
                    return Ok(());
                }
                Ok(other) => {
                    let msg = format!("unexpected {other:?} inside a subscription");
                    let _ = ch.send_bytes(Response::Error(msg.clone()).encode());
                    let _ = ch.flush();
                    return Err(ChannelError::Io(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        msg,
                    )));
                }
                Err(e) => {
                    let _ = ch.send_bytes(Response::Error(e.to_string()).encode());
                    let _ = ch.flush();
                    return Err(e);
                }
            }
        } else {
            let take =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| shared.pool.take(batch)));
            match take {
                Ok(b) => {
                    cots += b.len() as u64;
                    shared
                        .counters
                        .cots_served
                        .fetch_add(b.len() as u64, Ordering::Relaxed);
                    ch.send_bytes(
                        Response::CotChunk {
                            seq: chunks,
                            batch: b,
                        }
                        .encode(),
                    )?;
                    ch.flush()?;
                    chunks += 1;
                    credits -= 1;
                }
                Err(_) => {
                    let _ = ch
                        .send_bytes(Response::Error("internal pool failure".to_string()).encode());
                    let _ = ch.flush();
                    return Err(ChannelError::Io(std::io::Error::other(
                        "pool take panicked mid-subscription",
                    )));
                }
            }
        }
    }
}

/// A client session against a [`CotService`].
#[derive(Debug)]
pub struct CotClient {
    ch: TcpTransport,
    max_request: u64,
}

impl CotClient {
    /// Connects, handshakes, and exchanges `Hello`/`Welcome`.
    ///
    /// # Errors
    ///
    /// Fails on connection/handshake errors or an unexpected first
    /// response.
    pub fn connect<A: ToSocketAddrs>(addr: A, name: &str) -> Result<CotClient, ChannelError> {
        let mut ch = TcpTransport::connect(addr).map_err(ChannelError::from)?;
        ch.send_bytes(
            Request::Hello {
                name: name.to_string(),
            }
            .encode(),
        )?;
        match Response::decode(&ch.recv_bytes()?)? {
            Response::Welcome { max_request, .. } => Ok(CotClient { ch, max_request }),
            Response::Error(msg) => Err(service_error(&msg)),
            other => Err(unexpected_response(&other)),
        }
    }

    /// Largest batch one [`CotClient::request_cots`] call may ask for.
    pub fn max_request(&self) -> u64 {
        self.max_request
    }

    /// Fetches `n` fresh correlations.
    ///
    /// # Errors
    ///
    /// Fails fast with [`ChannelError::RequestTooLarge`] — before any
    /// bytes hit the wire — when `n` is zero or exceeds the server's
    /// advertised [`CotClient::max_request`] (callers that want
    /// transparent splitting go through `ironman-cluster`'s
    /// `ClusterClient`); otherwise fails on transport errors or a
    /// server-side [`Response::Error`].
    pub fn request_cots(&mut self, n: usize) -> Result<CotBatch, ChannelError> {
        if n == 0 || n as u64 > self.max_request {
            return Err(ChannelError::RequestTooLarge {
                max: self.max_request,
                requested: n as u64,
            });
        }
        self.ch
            .send_bytes(Request::RequestCot { n: n as u64 }.encode())?;
        match Response::decode(&self.ch.recv_bytes()?)? {
            Response::Cots(batch) => Ok(batch),
            Response::Error(msg) => Err(service_error(&msg)),
            other => Err(unexpected_response(&other)),
        }
    }

    /// Fetches a service statistics snapshot.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or an unexpected response.
    pub fn stats(&mut self) -> Result<ServiceStats, ChannelError> {
        self.ch.send_bytes(Request::Stats.encode())?;
        match Response::decode(&self.ch.recv_bytes()?)? {
            Response::Stats(s) => Ok(s),
            Response::Error(msg) => Err(service_error(&msg)),
            other => Err(unexpected_response(&other)),
        }
    }

    /// Asks the server to shut down and consumes this session.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or an unexpected response.
    pub fn shutdown_server(mut self) -> Result<(), ChannelError> {
        self.ch.send_bytes(Request::Shutdown.encode())?;
        match Response::decode(&self.ch.recv_bytes()?)? {
            Response::Goodbye => Ok(()),
            Response::Error(msg) => Err(service_error(&msg)),
            other => Err(unexpected_response(&other)),
        }
    }

    /// This session's transport accounting.
    pub fn transport_stats(&self) -> ChannelStats {
        self.ch.stats()
    }

    /// Opens a credit-controlled stream of exactly `chunks` batches of
    /// `batch` correlations each (the streaming analogue of calling
    /// [`CotClient::request_cots`] `chunks` times, minus the per-request
    /// round trip: the server pushes ahead of demand, up to the credit
    /// window).
    ///
    /// # Errors
    ///
    /// Fails fast with [`ChannelError::RequestTooLarge`] when `batch`
    /// exceeds [`CotClient::max_request`] (or is zero), and on transport
    /// errors.
    pub fn subscribe(
        &mut self,
        batch: usize,
        chunks: u64,
    ) -> Result<CotSubscription<'_>, ChannelError> {
        if batch == 0 || batch as u64 > self.max_request {
            return Err(ChannelError::RequestTooLarge {
                max: self.max_request,
                requested: batch as u64,
            });
        }
        let window = CotSubscription::CREDIT_WINDOW;
        // Only ever grant credits we intend to consume: the grant total
        // across the subscription's lifetime is exactly `chunks`, so the
        // stream ends with zero credits outstanding and no discarded work.
        let initial = window.min(chunks);
        self.ch.send_bytes(
            Request::Subscribe {
                batch: batch as u64,
                credits: initial,
            }
            .encode(),
        )?;
        Ok(CotSubscription {
            client: self,
            batch: batch as u64,
            remaining: chunks,
            granted: initial,
            next_seq: 0,
            cots_received: 0,
            ended: false,
        })
    }
}

/// Final accounting of a completed [`CotSubscription`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StreamSummary {
    /// Chunks the server pushed (including any drained unconsumed ones).
    pub chunks: u64,
    /// Correlations the server pushed.
    pub cots: u64,
}

/// An active streaming subscription on a [`CotClient`] session.
///
/// Pull chunks with [`CotSubscription::next_chunk`]; the subscription
/// manages the credit window itself, topping the server up *before*
/// blocking on the next chunk so the server's push pipeline never drains
/// between grants. Credits are accounted exactly: the subscription only
/// ever grants what it will consume, and a server chunk that arrives
/// without a matching credit is a protocol error, not a negative balance.
#[derive(Debug)]
pub struct CotSubscription<'a> {
    client: &'a mut CotClient,
    batch: u64,
    /// Chunks not yet received.
    remaining: u64,
    /// Credits granted whose chunks have not yet arrived (`granted <=
    /// remaining` is the subscription invariant).
    granted: u64,
    next_seq: u64,
    cots_received: u64,
    ended: bool,
}

impl CotSubscription<'_> {
    /// Credit window: chunks the server may have in flight at once. Deep
    /// enough to hide a refill behind in-flight chunks, small enough that
    /// a slow consumer holds back the pool drain.
    pub const CREDIT_WINDOW: u64 = 8;

    /// Credits currently granted but not yet consumed by an arrived chunk.
    pub fn credits_outstanding(&self) -> u64 {
        self.granted
    }

    /// Chunks still expected by this subscription.
    pub fn chunks_remaining(&self) -> u64 {
        self.remaining
    }

    /// Receives the next chunk, or `None` once the stream is over —
    /// either the subscribed count arrived, or the server ended the
    /// stream early (e.g. it is shutting down); in both cases the
    /// accounting trailer has been received and verified. Compare
    /// [`CotSubscription::chunks_remaining`] against zero (or check the
    /// [`CotSubscription::finish`] summary) to tell the two apart.
    ///
    /// # Errors
    ///
    /// Fails on transport errors, a server-side error, or any accounting
    /// violation (out-of-order sequence, wrong chunk size, a chunk without
    /// a granted credit, or a trailer that disagrees with what arrived).
    pub fn next_chunk(&mut self) -> Result<Option<CotBatch>, ChannelError> {
        if self.ended || self.remaining == 0 {
            self.close()?;
            return Ok(None);
        }
        // Top up the window before blocking: grants ride the full-duplex
        // socket while earlier chunks are still in flight, so the server
        // sees them before its balance reaches zero.
        let half = Self::CREDIT_WINDOW.div_ceil(2);
        if self.granted <= half && self.granted < self.remaining {
            let add = Self::CREDIT_WINDOW.min(self.remaining) - self.granted;
            if add > 0 {
                self.client
                    .ch
                    .send_bytes(Request::Credit { n: add }.encode())?;
                self.granted += add;
            }
        }
        match Response::decode(&self.client.ch.recv_bytes()?)? {
            Response::CotChunk { seq, batch } => {
                if batch.len() as u64 != self.batch {
                    return Err(stream_violation(&format!(
                        "chunk of {} correlations, subscribed for {}",
                        batch.len(),
                        self.batch
                    )));
                }
                self.account_chunk(seq, &batch)?;
                Ok(Some(batch))
            }
            // The server may end the stream early (shutdown): its trailer
            // must still agree with every chunk this side observed.
            // `remaining` is deliberately left non-zero so the truncation
            // is observable through `chunks_remaining`.
            Response::StreamEnd { chunks, cots } => {
                self.ended = true;
                self.verify_trailer(chunks, cots)?;
                Ok(None)
            }
            Response::Error(msg) => Err(service_error(&msg)),
            other => Err(unexpected_response(&other)),
        }
    }

    /// Ends the subscription (early or after completion), drains any
    /// in-flight chunks, and returns the server's accounting trailer.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or a trailer that disagrees with the
    /// chunks actually observed.
    pub fn finish(mut self) -> Result<StreamSummary, ChannelError> {
        self.end()
    }

    /// Non-consuming form of [`CotSubscription::finish`] (idempotent):
    /// closes the stream if it is still open and returns the accounting
    /// observed so far.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`CotSubscription::finish`].
    pub fn end(&mut self) -> Result<StreamSummary, ChannelError> {
        self.close()?;
        Ok(StreamSummary {
            chunks: self.next_seq,
            cots: self.cots_received,
        })
    }

    /// The shared per-chunk bookkeeping of the consume and drain paths:
    /// sequence order, credit consumption (a chunk without a granted
    /// credit is the "negative credits" case this subscription exists to
    /// rule out), and the running totals.
    fn account_chunk(&mut self, seq: u64, batch: &CotBatch) -> Result<(), ChannelError> {
        if seq != self.next_seq {
            return Err(stream_violation(&format!(
                "chunk out of order: got seq {seq}, expected {}",
                self.next_seq
            )));
        }
        self.granted = self
            .granted
            .checked_sub(1)
            .ok_or_else(|| stream_violation("server pushed a chunk without a granted credit"))?;
        self.next_seq += 1;
        self.remaining = self.remaining.saturating_sub(1);
        self.cots_received += batch.len() as u64;
        Ok(())
    }

    /// Byte-exact accounting: the server's trailer must agree with every
    /// chunk this side observed.
    fn verify_trailer(&self, chunks: u64, cots: u64) -> Result<(), ChannelError> {
        if chunks != self.next_seq || cots != self.cots_received {
            return Err(stream_violation(&format!(
                "trailer claims {chunks} chunks/{cots} cots, observed {}/{}",
                self.next_seq, self.cots_received
            )));
        }
        Ok(())
    }

    fn close(&mut self) -> Result<(), ChannelError> {
        if self.ended {
            return Ok(());
        }
        self.client.ch.send_bytes(Request::Unsubscribe.encode())?;
        // Chunks covered by already-granted credits may still be in
        // flight ahead of the trailer; drain and count them.
        loop {
            match Response::decode(&self.client.ch.recv_bytes()?)? {
                Response::CotChunk { seq, batch } => self.account_chunk(seq, &batch)?,
                Response::StreamEnd { chunks, cots } => {
                    self.ended = true;
                    return self.verify_trailer(chunks, cots);
                }
                Response::Error(msg) => return Err(service_error(&msg)),
                other => return Err(unexpected_response(&other)),
            }
        }
    }
}

impl Drop for CotSubscription<'_> {
    /// A dropped subscription still unsubscribes and drains, so the
    /// underlying session stays usable for one-shot requests afterwards
    /// (errors are swallowed: the transport may already be gone).
    fn drop(&mut self) {
        if !self.ended {
            let _ = self.close();
        }
    }
}

fn stream_violation(msg: &str) -> ChannelError {
    ChannelError::Io(std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        format!("subscription protocol violation: {msg}"),
    ))
}

fn service_error(msg: &str) -> ChannelError {
    ChannelError::Service(msg.to_string())
}

fn unexpected_response(resp: &Response) -> ChannelError {
    ChannelError::Io(std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        format!("unexpected response: {resp:?}"),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ironman_core::Backend;
    use ironman_ot::ferret::FerretConfig;
    use ironman_ot::params::FerretParams;

    fn toy_engine() -> Engine {
        Engine::new(
            FerretConfig::new(FerretParams::toy()),
            Backend::ironman_default(),
        )
    }

    fn toy_service(shards: usize) -> CotService {
        let cfg = CotServiceConfig { shards, seed: 11 };
        CotService::serve("127.0.0.1:0", &toy_engine(), cfg).expect("bind loopback")
    }

    #[test]
    fn single_client_session() {
        let service = toy_service(1);
        let mut client = CotClient::connect(service.addr(), "t1").unwrap();
        assert!(client.max_request() > 0);
        let batch = client.request_cots(64).unwrap();
        assert_eq!(batch.len(), 64);
        batch.verify().unwrap();
        let stats = client.stats().unwrap();
        assert_eq!(stats.cots_served, 64);
        assert_eq!(stats.clients_served, 1);
        let final_stats = service.shutdown();
        assert_eq!(final_stats.cots_served, 64);
    }

    #[test]
    fn oversized_request_fails_fast_client_side() {
        let service = toy_service(1);
        let mut client = CotClient::connect(service.addr(), "greedy").unwrap();
        let max = client.max_request();
        let sent_before = client.transport_stats().messages_sent;
        // Regression: an oversized request is rejected with the typed
        // error *before* any bytes hit the wire, not by a server error.
        let err = client.request_cots(max as usize + 1).unwrap_err();
        assert!(matches!(
            err,
            ChannelError::RequestTooLarge { max: m, requested } if m == max && requested == max + 1
        ));
        assert_eq!(client.transport_stats().messages_sent, sent_before);
        // Session survives the rejected request.
        client.request_cots(8).unwrap().verify().unwrap();
        service.shutdown();
    }

    #[test]
    fn streaming_subscription_delivers_exact_accounting() {
        let service = toy_service(2);
        let mut client = CotClient::connect(service.addr(), "streamer").unwrap();
        const BATCH: usize = 100;
        const CHUNKS: u64 = 25;
        let mut sub = client.subscribe(BATCH, CHUNKS).unwrap();
        let mut got = 0u64;
        while let Some(batch) = sub.next_chunk().unwrap() {
            assert_eq!(batch.len(), BATCH);
            batch.verify().unwrap();
            got += 1;
            // The credit discipline is enforced every step: outstanding
            // grants never exceed the window or the chunks still owed.
            assert!(sub.credits_outstanding() <= CotSubscription::CREDIT_WINDOW);
            assert!(sub.credits_outstanding() <= sub.chunks_remaining());
        }
        assert_eq!(got, CHUNKS);
        let summary = sub.finish().unwrap();
        assert_eq!(summary.chunks, CHUNKS);
        assert_eq!(summary.cots, CHUNKS * BATCH as u64);
        // The session drops back to one-shot mode afterwards.
        client.request_cots(8).unwrap().verify().unwrap();
        let stats = client.stats().unwrap();
        assert_eq!(stats.cots_served, CHUNKS * BATCH as u64 + 8);
        service.shutdown();
    }

    #[test]
    fn early_finish_drains_in_flight_chunks() {
        let service = toy_service(1);
        let mut client = CotClient::connect(service.addr(), "quitter").unwrap();
        let mut sub = client.subscribe(64, 1000).unwrap();
        // Take a few chunks, then bail with most of the stream unread.
        for _ in 0..3 {
            sub.next_chunk().unwrap().unwrap().verify().unwrap();
        }
        let summary = sub.finish().unwrap();
        // The trailer covers everything pushed, consumed or drained.
        assert!(summary.chunks >= 3);
        assert_eq!(summary.cots, summary.chunks * 64);
        // Session still usable.
        client.request_cots(8).unwrap().verify().unwrap();
        service.shutdown();
    }

    #[test]
    fn server_still_rejects_oversized_requests_on_the_wire() {
        // The client fails fast now, but the server's own bound check is
        // the only defense against non-conforming peers — exercise it by
        // writing raw frames past the client-side check.
        let service = toy_service(1);
        let mut client = CotClient::connect(service.addr(), "hostile").unwrap();
        let max = client.max_request();
        for bad_n in [0u64, max + 1, u64::MAX] {
            client
                .ch
                .send_bytes(Request::RequestCot { n: bad_n }.encode())
                .unwrap();
            match Response::decode(&client.ch.recv_bytes().unwrap()).unwrap() {
                Response::Error(msg) => assert!(msg.contains("outside")),
                other => panic!("expected Error for n={bad_n}, got {other:?}"),
            }
        }
        // The session survives every rejection.
        client.request_cots(8).unwrap().verify().unwrap();
        service.shutdown();
    }

    #[test]
    fn dropped_subscription_leaves_session_usable() {
        let service = toy_service(1);
        let mut client = CotClient::connect(service.addr(), "dropper").unwrap();
        {
            let mut sub = client.subscribe(64, 100).unwrap();
            sub.next_chunk().unwrap().unwrap().verify().unwrap();
            // Dropped here without finish(): Drop must unsubscribe and
            // drain so the session below is not desynchronized.
        }
        client.request_cots(8).unwrap().verify().unwrap();
        service.shutdown();
    }

    #[test]
    fn oversized_subscription_batch_fails_fast() {
        let service = toy_service(1);
        let mut client = CotClient::connect(service.addr(), "greedy-stream").unwrap();
        let max = client.max_request();
        assert!(matches!(
            client.subscribe(max as usize + 1, 4).unwrap_err(),
            ChannelError::RequestTooLarge { .. }
        ));
        assert!(matches!(
            client.subscribe(0, 4).unwrap_err(),
            ChannelError::RequestTooLarge { .. }
        ));
        service.shutdown();
    }

    #[test]
    fn credit_outside_subscription_is_answered_not_fatal() {
        let service = toy_service(1);
        let mut client = CotClient::connect(service.addr(), "confused").unwrap();
        client
            .ch
            .send_bytes(Request::Credit { n: 3 }.encode())
            .unwrap();
        match Response::decode(&client.ch.recv_bytes().unwrap()).unwrap() {
            Response::Error(msg) => assert!(msg.contains("no active subscription")),
            other => panic!("unexpected response: {other:?}"),
        }
        // Session survives the stray flow-control message.
        client.request_cots(8).unwrap().verify().unwrap();
        service.shutdown();
    }

    #[test]
    fn client_shutdown_request_stops_server() {
        let service = toy_service(1);
        let addr = service.addr();
        // An idle session must not keep the server alive past a shutdown
        // request: the sweep kicks its blocked read.
        let mut idle = CotClient::connect(addr, "idle").unwrap();
        let client = CotClient::connect(addr, "admin").unwrap();
        client.shutdown_server().unwrap();
        service.shutdown(); // idempotent: already stopping
        assert!(CotClient::connect(addr, "late").is_err());
        assert!(idle.request_cots(8).is_err());
    }
}
