//! A minimal hand-rolled HTTP/1.0 server for scrape endpoints.
//!
//! The observability plane needs a way for *foreign* tooling — a
//! Prometheus scraper, `curl`, a browser — to read fleet state without
//! speaking the Ironman wire protocol. This module is the smallest
//! server that serves that purpose honestly, in the workspace's
//! no-crates.io style: a nonblocking accept loop on one background
//! thread, blocking per-request I/O with short timeouts, `GET`-only
//! routing through a caller-supplied handler, and `Connection: close`
//! semantics (HTTP/1.0 — one request, one response, one connection).
//!
//! It is deliberately *not* a general web server: no keep-alive, no
//! chunked encoding, no request bodies, an 8 KiB request cap. A scrape
//! endpoint is read-only and tiny; everything beyond that is attack
//! surface.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Upper bound on a request head (request line + headers). Anything
/// longer is rejected with `413` before buffering more.
const MAX_REQUEST_LEN: usize = 8 * 1024;

/// Per-connection read/write timeout: a stalled scraper cannot pin the
/// accept thread for longer than this.
const IO_TIMEOUT: Duration = Duration::from_millis(500);

/// Total deadline for reading one request head. The per-read
/// [`IO_TIMEOUT`] only bounds a *silent* peer; a slow-loris client that
/// dribbles one byte per poll resets it forever and would otherwise own
/// the accept thread for up to `MAX_REQUEST_LEN` reads. Past this
/// wall-clock budget the request is answered `408` regardless of how
/// recently bytes arrived (worst case: deadline + one in-flight read).
const REQUEST_DEADLINE: Duration = Duration::from_secs(2);

/// Accept-loop poll interval while idle (the listener is nonblocking).
const POLL_INTERVAL: Duration = Duration::from_millis(2);

/// A parsed request line: method and path, headers discarded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HttpRequest {
    /// The request method (`GET` for everything this server accepts).
    pub method: String,
    /// The request path, query string included, undecoded.
    pub path: String,
}

/// A response the handler hands back: status, content type, body.
#[derive(Clone, Debug)]
pub struct HttpResponse {
    /// HTTP status code (200, 404, ...).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: String,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// A `200 OK` plain-text response.
    pub fn text(body: impl Into<String>) -> HttpResponse {
        HttpResponse {
            status: 200,
            content_type: "text/plain; charset=utf-8".to_string(),
            body: body.into().into_bytes(),
        }
    }

    /// A `200 OK` HTML response.
    pub fn html(body: impl Into<String>) -> HttpResponse {
        HttpResponse {
            status: 200,
            content_type: "text/html; charset=utf-8".to_string(),
            body: body.into().into_bytes(),
        }
    }

    /// The stock `404 Not Found` response.
    pub fn not_found() -> HttpResponse {
        HttpResponse {
            status: 404,
            content_type: "text/plain; charset=utf-8".to_string(),
            body: b"not found\n".to_vec(),
        }
    }
}

/// The handler invoked per request.
pub type HttpHandler = dyn Fn(&HttpRequest) -> HttpResponse + Send + Sync;

/// A running HTTP/1.0 server: one background accept thread, stopped
/// explicitly with [`HttpServer::stop`] or implicitly on drop.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    requests_served: Arc<AtomicU64>,
    thread: Option<JoinHandle<()>>,
}

impl HttpServer {
    /// Binds `addr` and starts serving `handler` on a background
    /// thread. The handler runs on the accept thread — it must be fast
    /// (render from already-computed state, never block on the fleet).
    ///
    /// # Errors
    ///
    /// Propagates bind/configuration failures.
    pub fn serve<A, F>(addr: A, handler: F) -> io::Result<HttpServer>
    where
        A: ToSocketAddrs,
        F: Fn(&HttpRequest) -> HttpResponse + Send + Sync + 'static,
    {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let requests_served = Arc::new(AtomicU64::new(0));
        let thread = {
            let stop = Arc::clone(&stop);
            let served = Arc::clone(&requests_served);
            std::thread::spawn(move || accept_loop(&listener, &handler, &stop, &served))
        };
        Ok(HttpServer {
            addr,
            stop,
            requests_served,
            thread: Some(thread),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests answered so far (any status).
    pub fn requests_served(&self) -> u64 {
        self.requests_served.load(Ordering::Relaxed)
    }

    /// Stops the accept loop and joins the thread.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

impl std::fmt::Debug for HttpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HttpServer")
            .field("addr", &self.addr)
            .field("requests_served", &self.requests_served())
            .finish()
    }
}

fn accept_loop(
    listener: &TcpListener,
    handler: &HttpHandler,
    stop: &AtomicBool,
    served: &AtomicU64,
) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Per-connection errors (resets, timeouts, garbage) end
                // that connection only; the loop keeps serving.
                if serve_connection(stream, handler).is_ok() {
                    served.fetch_add(1, Ordering::Relaxed);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(_) => std::thread::sleep(POLL_INTERVAL),
        }
    }
}

fn serve_connection(stream: TcpStream, handler: &HttpHandler) -> io::Result<()> {
    let mut stream = stream;
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let (response, unread_input) = match read_request(&mut stream) {
        Ok(req) if req.method == "GET" => (handler(&req), false),
        Ok(_) => (
            HttpResponse {
                status: 405,
                content_type: "text/plain; charset=utf-8".to_string(),
                body: b"method not allowed\n".to_vec(),
            },
            true,
        ),
        Err(status) => (
            HttpResponse {
                status,
                content_type: "text/plain; charset=utf-8".to_string(),
                body: b"bad request\n".to_vec(),
            },
            true,
        ),
    };
    write_response(&mut stream, &response)?;
    if unread_input {
        // Closing with unread bytes in the receive buffer sends an RST
        // that can clobber the response before the peer reads it. Drain
        // a bounded amount (the peer may still be mid-send) so the error
        // status actually arrives.
        let _ = stream.shutdown(std::net::Shutdown::Write);
        let mut sink = [0u8; 4096];
        let mut budget = 256 * 1024usize;
        while budget > 0 {
            match stream.read(&mut sink) {
                Ok(0) | Err(_) => break,
                Ok(n) => budget = budget.saturating_sub(n),
            }
        }
    }
    Ok(())
}

/// Reads and parses the request head (through the blank line).
/// Returns the HTTP status to answer with on failure.
fn read_request(stream: &mut TcpStream) -> Result<HttpRequest, u16> {
    let deadline = Instant::now() + REQUEST_DEADLINE;
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.windows(2).any(|w| w == b"\n\n") {
            break;
        }
        if buf.len() >= MAX_REQUEST_LEN {
            return Err(413);
        }
        if Instant::now() >= deadline {
            return Err(408);
        }
        match stream.read(&mut chunk) {
            Ok(0) => break, // peer closed after (or mid-) head
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => return Err(408),
        }
    }
    let head = std::str::from_utf8(&buf).map_err(|_| 400u16)?;
    let request_line = head.lines().next().ok_or(400u16)?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().ok_or(400u16)?.to_string();
    let path = parts.next().ok_or(400u16)?.to_string();
    // The version token is optional (HTTP/0.9-style "GET /path" is
    // accepted); anything after it is ignored.
    Ok(HttpRequest { method, path })
}

fn write_response(stream: &mut TcpStream, resp: &HttpResponse) -> io::Result<()> {
    let reason = match resp.status {
        200 => "OK",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        _ => "Bad Request",
    };
    let head = format!(
        "HTTP/1.0 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        resp.status,
        reason,
        resp.content_type,
        resp.body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(&resp.body)?;
    stream.flush()
}

/// A convenience client for tests and examples: one blocking `GET`,
/// returning `(status, body)`.
///
/// # Errors
///
/// Propagates connect/read failures and malformed status lines.
pub fn http_get(addr: SocketAddr, path: &str) -> io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    write!(stream, "GET {path} HTTP/1.0\r\nHost: ironman\r\n\r\n")?;
    stream.flush()?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .or_else(|| raw.split_once("\n\n"))
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no header/body split"))?;
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
    Ok((status, body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_server() -> HttpServer {
        HttpServer::serve("127.0.0.1:0", |req: &HttpRequest| match req.path.as_str() {
            "/metrics" => HttpResponse::text("up 1\n"),
            "/fleet" => HttpResponse::html("<html>fleet</html>"),
            _ => HttpResponse::not_found(),
        })
        .expect("bind loopback")
    }

    #[test]
    fn serves_routed_get_requests() {
        let server = demo_server();
        let (status, body) = http_get(server.addr(), "/metrics").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "up 1\n");
        let (status, body) = http_get(server.addr(), "/fleet").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("fleet"));
        let (status, _) = http_get(server.addr(), "/nope").unwrap();
        assert_eq!(status, 404);
        assert_eq!(server.requests_served(), 3);
        server.stop();
    }

    #[test]
    fn rejects_non_get_methods() {
        let server = demo_server();
        let mut s = TcpStream::connect(server.addr()).unwrap();
        write!(s, "POST /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.0 405"), "{out}");
        server.stop();
    }

    #[test]
    fn oversized_request_head_rejected() {
        let server = demo_server();
        let mut s = TcpStream::connect(server.addr()).unwrap();
        // A request line that never ends: the server must cut it off at
        // the cap with 413 instead of buffering without bound.
        let junk = vec![b'a'; MAX_REQUEST_LEN + 1024];
        s.write_all(b"GET /").unwrap();
        s.write_all(&junk).unwrap();
        s.shutdown(std::net::Shutdown::Write).unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.0 413"), "{out}");
        server.stop();
    }

    #[test]
    fn stop_joins_and_frees_the_port() {
        let server = demo_server();
        let addr = server.addr();
        server.stop();
        // The accept thread exits; a fresh bind on the same port works.
        let rebound = TcpListener::bind(addr);
        assert!(rebound.is_ok());
    }

    #[test]
    fn slow_loris_dribble_gets_408_at_the_deadline() {
        let server = demo_server();
        let mut s = TcpStream::connect(server.addr()).unwrap();
        // Each dribbled byte lands well inside IO_TIMEOUT, so only the
        // total REQUEST_DEADLINE can cut this connection off.
        s.set_read_timeout(Some(Duration::from_millis(50))).unwrap();
        write!(s, "GET /metrics HTTP/1.0\r\nX-Dribble: ").unwrap();
        let started = Instant::now();
        let mut out = Vec::new();
        loop {
            assert!(
                started.elapsed() < REQUEST_DEADLINE + Duration::from_secs(3),
                "slow-loris held the connection past the deadline"
            );
            let _ = s.write_all(b"a");
            let mut bytes = [0u8; 256];
            match s.read(&mut bytes) {
                Ok(0) => break, // server answered and closed
                Ok(n) => out.extend_from_slice(&bytes[..n]),
                Err(_) => {} // read timeout: keep dribbling
            }
        }
        let reply = String::from_utf8_lossy(&out);
        assert!(reply.starts_with("HTTP/1.0 408"), "{reply}");
        assert!(
            started.elapsed() >= REQUEST_DEADLINE - Duration::from_millis(100),
            "408 must be the deadline firing, not an early error"
        );
        // The accept thread is free again: a normal scrape succeeds.
        let (status, body) = http_get(server.addr(), "/metrics").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "up 1\n");
        server.stop();
    }

    #[test]
    fn malformed_head_gets_400() {
        let server = demo_server();
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.write_all(b"\xff\xfe\r\n\r\n").unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.0 400"), "{out}");
        server.stop();
    }
}
