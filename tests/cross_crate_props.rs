//! Property-based tests on cross-crate invariants (proptest).

use ironman_ggm::{Arity, GgmTree, PuncturedTree};
use ironman_lpn::sorting::SortConfig;
use ironman_lpn::{encoder, LpnMatrix, SortedLpnMatrix};
use ironman_prg::{Block, ChaChaTreePrg, Crhf, TreePrg};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// SPCOT's core algebra: for any seed and puncture point, the
    /// reconstructed tree agrees with the full tree everywhere but α, and
    /// the masked-sum recovery satisfies w[α] = v[α] ⊕ Δ.
    #[test]
    fn punctured_tree_correlation(
        seed in any::<u64>(),
        alpha in 0usize..256,
        delta in 1u128..,
        log_arity in 1u32..3,
    ) {
        let arity = Arity::new(1 << log_arity).unwrap();
        let prg = ChaChaTreePrg::new(Block::from(seed as u128 ^ 0xAB), 8);
        let tree = GgmTree::expand(&prg, Block::from(seed as u128), arity, 256);
        let sums = tree.level_sums();
        let mut punct = PuncturedTree::reconstruct(&prg, arity, 256, alpha, |l, j| sums[l][j]);
        punct.recover_punctured(Block::from(delta) ^ tree.leaf_sum());
        for i in 0..256 {
            let expect = punct.leaves()[i] ^ Block::from(delta).and_bit(i == alpha);
            prop_assert_eq!(tree.leaves()[i], expect);
        }
    }

    /// LPN encoding is linear over GF(2^128) inputs.
    #[test]
    fn lpn_linearity(seed in any::<u64>(), a in any::<u128>(), b in any::<u128>()) {
        let m = LpnMatrix::generate(64, 48, 10, Block::from(seed as u128 | 1));
        let va: Vec<Block> = (0..48u128).map(|i| Block::from(i.wrapping_mul(a) ^ a)).collect();
        let vb: Vec<Block> = (0..48u128).map(|i| Block::from(i.wrapping_add(b) ^ b)).collect();
        let vab: Vec<Block> = va.iter().zip(&vb).map(|(&x, &y)| x ^ y).collect();
        let mut ra = vec![Block::ZERO; 64];
        let mut rb = vec![Block::ZERO; 64];
        let mut rab = vec![Block::ZERO; 64];
        encoder::encode_blocks(&m, &va, &mut ra);
        encoder::encode_blocks(&m, &vb, &mut rb);
        encoder::encode_blocks(&m, &vab, &mut rab);
        for j in 0..64 {
            prop_assert_eq!(rab[j], ra[j] ^ rb[j]);
        }
    }

    /// Index sorting never changes the encoded output (§5.3 correctness).
    #[test]
    fn sorting_preserves_encoding(
        seed in any::<u64>(),
        cache_lines in 8usize..256,
        window in 2usize..32,
    ) {
        let m = LpnMatrix::generate(200, 300, 10, Block::from(seed as u128 | 1));
        let cfg = SortConfig { cache_lines, window, block_rows: 64 };
        let sorted = SortedLpnMatrix::sort(&m, cfg);
        let input: Vec<Block> = (0..300u128).map(|i| Block::from(i * 3 + seed as u128)).collect();
        let mut plain = vec![Block::from(9u128); 200];
        let mut via = plain.clone();
        encoder::encode_blocks(&m, &input, &mut plain);
        sorted.encode_blocks(&input, &mut via);
        prop_assert_eq!(plain, via);
    }

    /// The sorting's row order is always a permutation, whatever the
    /// config.
    #[test]
    fn sorting_row_order_is_permutation(seed in any::<u64>(), block_rows in 8usize..128) {
        let m = LpnMatrix::generate(150, 64, 6, Block::from(seed as u128 | 1));
        let cfg = SortConfig { cache_lines: 32, window: 8, block_rows };
        let sorted = SortedLpnMatrix::sort(&m, cfg);
        let mut seen = [false; 150];
        for &r in sorted.row_order() {
            prop_assert!(!seen[r as usize]);
            seen[r as usize] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// The CRHF destroys the COT correlation: H(x) ⊕ H(x ⊕ Δ) ≠ Δ.
    #[test]
    fn crhf_breaks_correlations(x in any::<u128>(), delta in 1u128..) {
        let h = Crhf::new();
        let d = h.hash(0, Block::from(x)) ^ h.hash(0, Block::from(x ^ delta));
        prop_assert_ne!(d, Block::from(delta));
    }

    /// Tree PRG expansion prefixes are consistent: expanding w children
    /// agrees with the prefix of expanding more.
    #[test]
    fn tree_prg_prefix_consistency(seed in any::<u64>(), parent in any::<u128>(), w in 1usize..8) {
        let prg = ChaChaTreePrg::new(Block::from(seed as u128), 8);
        let mut small = vec![Block::ZERO; w];
        let mut big = vec![Block::ZERO; 8];
        prg.expand(Block::from(parent), &mut small);
        prg.expand(Block::from(parent), &mut big);
        prop_assert_eq!(&small[..], &big[..w]);
    }
}
