//! Full-production-scale executions — the real Table 4 parameter sets,
//! not scaled models. Ignored by default (minutes of CPU in debug
//! builds); run with:
//!
//! ```sh
//! cargo test --release -p ironman-bench --test full_scale -- --ignored
//! ```

use ironman_ot::ferret::{run_extension, FerretConfig};
use ironman_ot::params::FerretParams;

#[test]
#[ignore = "production-scale: ~10s in release, minutes in debug"]
fn full_2pow20_extension_verifies() {
    let cfg = FerretConfig::new(FerretParams::OT_2POW20);
    let out = run_extension(&cfg, 2020);
    assert_eq!(out.len(), cfg.usable_outputs());
    out.verify()
        .expect("every one of the ~1.2M output COTs must be correlated");

    // The PCG property at production scale: sub-byte communication per OT.
    let total = out.sender_stats.bytes_sent + out.receiver_stats.bytes_sent;
    let per_ot = total as f64 / out.len() as f64;
    assert!(per_ot < 1.0, "{per_ot:.3} B/OT at 2^20 scale");
}

#[test]
#[ignore = "production-scale"]
fn full_2pow20_baseline_binary_aes_verifies() {
    let cfg = FerretConfig::ferret_baseline(FerretParams::OT_2POW20);
    let out = run_extension(&cfg, 2021);
    out.verify().unwrap();
}

#[test]
#[ignore = "production-scale, two bootstrap iterations"]
fn full_2pow20_bootstrap_second_iteration() {
    let cfg = FerretConfig::new(FerretParams::OT_2POW20);
    let outs = ironman_ot::ferret::run_extensions(&cfg, 2022, 2);
    for out in &outs {
        out.verify().unwrap();
    }
    assert_ne!(outs[0].z[..32], outs[1].z[..32]);
}
