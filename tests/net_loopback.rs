//! End-to-end: FERRET COT extension over a real TCP loopback socket, and
//! the multi-client COT service.
//!
//! This is the serving on-ramp the ROADMAP's "millions of users" north
//! star needs: the same protocol bytes that cross `LocalChannel` in-process
//! cross a kernel socket here, with identical payload accounting.

use ironman_core::{Backend, CotBatch, Engine};
use ironman_net::frame::{FRAME_HEADER_LEN, HANDSHAKE_LEN};
use ironman_net::{tcp_loopback_pair, CotClient, CotService, CotServiceConfig, TcpTransport};
use ironman_ot::channel::Transport;
use ironman_ot::ferret::{run_extensions, run_extensions_over, FerretConfig};
use ironman_ot::params::FerretParams;

fn toy_cfg() -> FerretConfig {
    FerretConfig::new(FerretParams::toy())
}

/// One full FERRET extension across a kernel TCP socket produces exactly
/// the outputs of the in-process run, and the transport's payload
/// accounting matches `LocalChannel` to the byte (the wire adds only the
/// 4-byte frame header per message plus the 6-byte handshake).
#[test]
fn ferret_over_tcp_matches_local_channel() {
    let cfg = toy_cfg();
    let seed = 0xA11CE;

    let local = run_extensions(&cfg, seed, 2);
    let (sender_ch, receiver_ch) = tcp_loopback_pair().expect("loopback pair");
    let tcp = run_extensions_over(&cfg, seed, 2, sender_ch, receiver_ch);

    assert_eq!(local.len(), tcp.len());
    for (l, t) in local.iter().zip(&tcp) {
        t.verify().unwrap();
        // Determinism: the socket changes nothing about the protocol.
        assert_eq!(l.delta, t.delta);
        assert_eq!(l.z, t.z);
        assert_eq!(l.x, t.x);
        assert_eq!(l.y, t.y);
        // Byte accounting: payload-identical in both directions, and the
        // message/round structure is the same.
        assert_eq!(l.sender_stats.bytes_sent, t.sender_stats.bytes_sent);
        assert_eq!(l.sender_stats.bytes_received, t.sender_stats.bytes_received);
        assert_eq!(l.sender_stats.messages_sent, t.sender_stats.messages_sent);
        assert_eq!(l.receiver_stats.bytes_sent, t.receiver_stats.bytes_sent);
        assert_eq!(
            l.receiver_stats.messages_sent,
            t.receiver_stats.messages_sent
        );
        assert_eq!(l.sender_stats.rounds, t.sender_stats.rounds);
        assert_eq!(l.receiver_stats.rounds, t.receiver_stats.rounds);
    }
}

/// The wire cost above the payload is exactly known: header bytes per
/// message plus the handshake, nothing hidden.
#[test]
fn tcp_wire_overhead_is_exactly_frame_headers() {
    let (mut a, mut b) = tcp_loopback_pair().expect("loopback pair");
    let payloads: &[usize] = &[1, 16, 1000, 0, 37];
    let echo = std::thread::spawn(move || {
        for _ in payloads {
            let bytes = b.recv_bytes().unwrap();
            b.send_bytes(bytes).unwrap();
        }
        (b.stats(), b.wire_bytes_sent())
    });
    for &len in payloads {
        a.send_bytes(vec![0xAB; len]).unwrap();
        assert_eq!(a.recv_bytes().unwrap().len(), len);
    }
    let payload_total: u64 = payloads.iter().map(|&l| l as u64).sum();
    let expected_wire =
        payload_total + (payloads.len() * FRAME_HEADER_LEN) as u64 + HANDSHAKE_LEN as u64;
    assert_eq!(a.stats().bytes_sent, payload_total);
    assert_eq!(a.wire_bytes_sent(), expected_wire);
    let (b_stats, b_wire) = echo.join().unwrap();
    assert_eq!(b_stats.bytes_received, payload_total);
    assert_eq!(b_wire, expected_wire);
}

/// The serving substrate end to end: one server (sharded pool, FERRET
/// replenishment on demand) and 6 concurrent client sessions over real TCP
/// loopback sockets, every returned batch verified.
#[test]
fn cot_service_serves_concurrent_clients() {
    const CLIENTS: usize = 6;
    const REQUESTS_PER_CLIENT: usize = 4;
    const BATCH: usize = 300;

    let engine = Engine::new(toy_cfg(), Backend::ironman_default());
    let service = CotService::serve(
        "127.0.0.1:0",
        &engine,
        CotServiceConfig {
            shards: 3,
            seed: 0xBEEF,
            ..CotServiceConfig::default()
        },
    )
    .expect("bind loopback service");
    let addr = service.addr();

    let client_threads: Vec<_> = (0..CLIENTS)
        .map(|id| {
            std::thread::spawn(move || -> Vec<CotBatch> {
                let mut client =
                    CotClient::connect(addr, &format!("e2e-client-{id}")).expect("connect");
                (0..REQUESTS_PER_CLIENT)
                    .map(|_| client.request_cots(BATCH).expect("request"))
                    .collect()
            })
        })
        .collect();

    let mut total = 0usize;
    for t in client_threads {
        for batch in t.join().expect("client thread") {
            assert_eq!(batch.len(), BATCH);
            batch.verify().unwrap();
            total += batch.len();
        }
    }
    assert_eq!(total, CLIENTS * REQUESTS_PER_CLIENT * BATCH);

    let stats = service.shutdown();
    assert_eq!(stats.cots_served, total as u64);
    assert_eq!(stats.clients_served, CLIENTS as u64);
    assert!(stats.extensions_run >= 1);
}

/// A client session can also ride the raw transport: protocol code written
/// against `Transport` cannot tell a service socket from a local pair.
#[test]
fn iknp_runs_unmodified_over_tcp() {
    use ironman_ot::dealer::Dealer;
    use ironman_ot::iknp::{iknp_recv, iknp_send, setup_base};

    let mut dealer = Dealer::new(99);
    let delta = dealer.random_delta();
    let (seeds, pairs) = setup_base(&mut dealer, delta);
    let n = 256;
    let choice: Vec<bool> = (0..n).map(|j| j % 3 == 0).collect();

    let (sender_ch, receiver_ch) = tcp_loopback_pair().expect("loopback pair");
    let (s_out, r_out, _, _) = ironman_ot::channel::run_protocol_over(
        sender_ch,
        receiver_ch,
        move |ch: &mut TcpTransport| iknp_send(ch, delta, &seeds, n).unwrap(),
        move |ch: &mut TcpTransport| iknp_recv(ch, &pairs, &choice).unwrap(),
    );
    for j in 0..n {
        let expect = r_out.rb()[j] ^ delta.and_bit(r_out.bits()[j]);
        assert_eq!(s_out.r0()[j], expect);
    }
}
