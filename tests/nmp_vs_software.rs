//! Cross-checks between the timing models and the functional layer, plus
//! coarse calibration guards that keep the reproduced figures in the
//! paper's qualitative bands.

use ironman_cache::{Cache, CacheConfig};
use ironman_core::speedup::{speedup_cell, speedup_table};
use ironman_dram::{DramConfig, RankSim, Request};
use ironman_ggm::schedule::simulate;
use ironman_ggm::{Arity, ExpansionSchedule, PipelineModel};
use ironman_lpn::{encoder, LpnMatrix};
use ironman_nmp::rank_lpn::{simulate_rank, LpnWork};
use ironman_nmp::NmpConfig;
use ironman_ot::params::FerretParams;
use ironman_prg::Block;

#[test]
fn schedule_sim_matches_functional_call_count() {
    // The cycle model must issue exactly the calls the real expansion
    // makes.
    let prg = ironman_prg::ChaChaTreePrg::new(Block::from(1u128), 8);
    let tree = ironman_ggm::GgmTree::expand(&prg, Block::from(2u128), Arity::QUAD, 1024);
    let sim = simulate(
        ExpansionSchedule::Hybrid,
        PipelineModel::CHACHA8,
        1,
        Arity::QUAD,
        1024,
    );
    assert_eq!(sim.calls, tree.counter().chacha_calls);
}

#[test]
fn nmp_cache_model_agrees_with_direct_cache_replay() {
    // Replaying the same trace through the cache directly must produce
    // the same hit statistics the rank simulator reports.
    let cfg = NmpConfig::with_ranks_and_cache(2, 256 * 1024);
    let matrix = LpnMatrix::generate(2000, 40_000, 10, Block::from(5u128));
    let trace: Vec<u32> = encoder::access_trace(&matrix).collect();

    let report = simulate_rank(&cfg, &LpnWork::exact(trace.clone()));
    let mut cache = Cache::new(cfg.cache);
    for idx in &trace {
        cache.access(*idx as u64 * 16);
    }
    assert_eq!(report.cache.hits, cache.stats().hits);
    assert_eq!(report.cache.misses, cache.stats().misses);
}

#[test]
fn dram_row_hits_beat_misses_under_both_cache_sizes() {
    for kb in [256usize, 1024] {
        let cfg = CacheConfig::kb(kb);
        assert!(cfg.lines() >= 4096 * kb / 256 / 64 * 64 / 64); // monotone sanity
    }
    let cfg = DramConfig::ddr4_2400();
    let seq: Vec<Request> = (0..512u64).map(|i| Request::read(i % 8 * 64)).collect();
    let stride = (cfg.banks() * (cfg.row_bytes / cfg.access_bytes) * cfg.access_bytes) as u64;
    let rand: Vec<Request> = (0..512u64).map(|i| Request::read(i * stride)).collect();
    let hits = RankSim::new(cfg).run(&seq);
    let misses = RankSim::new(cfg).run(&rand);
    assert!(hits.avg_latency() < misses.avg_latency());
}

#[test]
fn fig12_monotonicities_hold() {
    // More ranks → faster; larger cache → not slower; every simulated
    // config beats the CPU baseline.
    let p = FerretParams::OT_2POW21;
    let mut prev_ms = f64::MAX;
    for ranks in [2usize, 4, 8, 16] {
        let c = speedup_cell(p, ranks, 256 * 1024, 7);
        assert!(
            c.ironman_ms < prev_ms,
            "{ranks} ranks: {} !< {prev_ms}",
            c.ironman_ms
        );
        assert!(c.speedup_vs_cpu() > 1.0);
        prev_ms = c.ironman_ms;
    }
    let small = speedup_cell(p, 8, 256 * 1024, 7);
    let large = speedup_cell(p, 8, 1024 * 1024, 7);
    assert!(large.cache_hit_rate >= small.cache_hit_rate);
}

#[test]
fn fig12_grid_covers_paper_shape() {
    let rows = speedup_table(&[2, 16], &[256 * 1024, 1024 * 1024], 3);
    assert_eq!(rows.len(), 2 * 2 * 5);
    // Best cell should be an order of magnitude above the worst.
    let best = rows
        .iter()
        .map(|r| r.speedup_vs_cpu())
        .fold(0.0f64, f64::max);
    let worst = rows
        .iter()
        .map(|r| r.speedup_vs_cpu())
        .fold(f64::MAX, f64::min);
    assert!(best / worst > 5.0, "dynamic range {best}/{worst}");
    assert!(worst > 1.5, "even the worst config must beat the CPU");
}

#[test]
fn hybrid_schedule_dominates_depth_first_everywhere() {
    for trees in [2usize, 8, 16] {
        for leaves in [256usize, 1024] {
            let df = simulate(
                ExpansionSchedule::DepthFirst,
                PipelineModel::CHACHA8,
                trees,
                Arity::QUAD,
                leaves,
            );
            let hy = simulate(
                ExpansionSchedule::Hybrid,
                PipelineModel::CHACHA8,
                trees,
                Arity::QUAD,
                leaves,
            );
            assert!(hy.cycles <= df.cycles, "trees={trees} leaves={leaves}");
            assert_eq!(hy.calls, df.calls);
        }
    }
}
