//! Integration tests spanning the whole stack: real two-party extensions
//! through the engine, COT→ROT→message transfer, multi-iteration
//! bootstrap, and every Table 4 structure at scaled size.

use ironman_core::rot::rot_from_extension;
use ironman_core::{Backend, Engine};
use ironman_ggm::Arity;
use ironman_ot::ferret::{run_extensions, FerretConfig};
use ironman_ot::params::FerretParams;
use ironman_prg::{Block, PrgKind};

/// Scales a Table 4 row down by `shrink` while keeping its structure
/// (ratios of n : k : t and the tree size).
fn scaled(p: FerretParams, shrink: usize) -> FerretParams {
    FerretParams {
        log_target: p.log_target,
        n: (p.n / shrink).max(2000),
        leaves: (p.leaves / 16).max(64),
        k: (p.k / shrink).max(512),
        t: (p.t / 16).max(8),
    }
}

#[test]
fn every_table4_structure_verifies_at_scale() {
    for p in FerretParams::TABLE4 {
        let small = scaled(p, 512);
        let cfg = FerretConfig::new(small);
        let out = ironman_ot::ferret::run_extension(&cfg, p.log_target as u64);
        out.verify()
            .unwrap_or_else(|i| panic!("2^{} structure: COT {i} violated", p.log_target));
        assert_eq!(out.len(), cfg.usable_outputs());
    }
}

#[test]
fn engine_end_to_end_with_nmp_backend() {
    let cfg = FerretConfig::new(FerretParams::toy());
    let engine = Engine::new(cfg, Backend::ironman_default());
    let runs = engine.run(1, 2);
    for run in &runs {
        run.cots.verify().unwrap();
        assert!(run.timing.speedup() > 1.0);
    }
}

#[test]
fn cot_to_chosen_message_pipeline() {
    let out = ironman_ot::ferret::run_extension(&FerretConfig::new(FerretParams::toy()), 3);
    let (s, r) = rot_from_extension(&out, 500);
    let msgs: Vec<(Block, Block)> = (0..100u128)
        .map(|i| (Block::from(i), Block::from(i + 1_000_000)))
        .collect();
    let choices: Vec<bool> = (0..100).map(|i| (i * 7) % 3 == 0).collect();
    let flips = r.derandomize(&choices);
    let masked = s.mask(&msgs, &flips);
    let got = r.unmask(&masked, &choices);
    for i in 0..100 {
        let want = if choices[i] { msgs[i].1 } else { msgs[i].0 };
        assert_eq!(got[i], want, "transfer {i}");
    }
}

#[test]
fn five_iteration_bootstrap_stays_correlated() {
    let cfg = FerretConfig::new(FerretParams::toy());
    let outs = run_extensions(&cfg, 9, 5);
    assert_eq!(outs.len(), 5);
    let delta = outs[0].delta;
    for (i, out) in outs.iter().enumerate() {
        assert_eq!(out.delta, delta, "delta must be global across iterations");
        out.verify()
            .unwrap_or_else(|j| panic!("iteration {i}: COT {j} violated"));
    }
}

#[test]
fn arity_and_prg_grid_all_verify() {
    for arity in [Arity::BINARY, Arity::QUAD, Arity::new(8).unwrap()] {
        for prg in [PrgKind::Aes, PrgKind::CHACHA8] {
            let cfg = FerretConfig {
                arity,
                prg,
                ..FerretConfig::new(FerretParams::toy())
            };
            let out = ironman_ot::ferret::run_extension(&cfg, 11);
            out.verify()
                .unwrap_or_else(|i| panic!("{arity} {prg:?}: COT {i}"));
        }
    }
}

#[test]
fn communication_is_sublinear_in_outputs() {
    // The PCG property: bytes per output COT must be far below 1 block
    // (IKNP-style extension costs λ bits = 16 bytes per OT).
    let cfg = FerretConfig::new(FerretParams::toy());
    let out = ironman_ot::ferret::run_extension(&cfg, 13);
    let total = out.sender_stats.bytes_sent + out.receiver_stats.bytes_sent;
    let per_ot = total as f64 / out.len() as f64;
    assert!(per_ot < 8.0, "{per_ot} bytes/OT is not sublinear-ish");
}
