//! No-op `Serialize`/`Deserialize` derives.
//!
//! The real `serde_derive` generates trait impls; here the traits in the
//! sibling `serde` stand-in carry blanket impls, so the derives only need
//! to exist (and swallow `#[serde(...)]` attributes) for `#[derive(...)]`
//! lines to compile unchanged.

use proc_macro::TokenStream;

/// Accepts and discards a `#[derive(Serialize)]` request.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts and discards a `#[derive(Deserialize)]` request.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
