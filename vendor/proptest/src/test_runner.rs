//! Deterministic per-test RNG and run configuration.

/// How many cases each property runs (mirrors `proptest::test_runner`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// SplitMix64 generator seeded from the test name, so every run of a given
/// property sees the same case sequence (failures reproduce exactly).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary name (FNV-1a over the bytes).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in name.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Next 128 uniform bits.
    pub fn next_u128(&mut self) -> u128 {
        (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64())
    }
}
