//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::{SampleUniform, Strategy};
use crate::test_runner::TestRng;
use std::ops::Range;

/// Vector of `element` samples with a length drawn from `len`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

/// Strategy returned by [`vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = usize::sample_range(self.len.start, self.len.end, rng);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}
