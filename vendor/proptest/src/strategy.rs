//! Value-generation strategies (sampling only, no shrinking).

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeFrom};

/// A source of sampled values.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// `any::<T>()` — the full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types with a canonical full-domain sampler.
pub trait Arbitrary {
    /// Draws a uniform value of `Self`.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_uint {
    ($($t:ty),+) => {
        $(impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u128() as $t
            }
        })+
    };
}
arbitrary_uint!(u8, u16, u32, u64, u128, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> [u8; N] {
        let mut out = [0u8; N];
        for chunk in out.chunks_mut(8) {
            let w = rng.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
        out
    }
}

/// Integers that can be drawn uniformly from a range.
pub trait SampleUniform: Copy {
    /// Uniform draw from `[lo, hi)`; `lo < hi` is the caller's contract.
    fn sample_range(lo: Self, hi: Self, rng: &mut TestRng) -> Self;
    /// Uniform draw from `[lo, MAX]` (approximately; negligible bias).
    fn sample_from(lo: Self, rng: &mut TestRng) -> Self;
}

macro_rules! sample_uniform {
    ($($t:ty),+) => {
        $(impl SampleUniform for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn sample_range(lo: $t, hi: $t, rng: &mut TestRng) -> $t {
                debug_assert!(lo < hi, "empty range");
                let span = (hi - lo) as u128;
                lo + (rng.next_u128() % span) as $t
            }
            #[allow(clippy::cast_possible_truncation)]
            fn sample_from(lo: $t, rng: &mut TestRng) -> $t {
                if lo == 0 {
                    return rng.next_u128() as $t;
                }
                // Span <Self as max> - lo + 1 can overflow Self::MAX; a
                // modulus of (MAX - lo) covers all but MAX itself, which is
                // an acceptable (2^-w) sampling gap for tests.
                let span = (<$t>::MAX - lo) as u128;
                lo + (rng.next_u128() % span.max(1)) as $t
            }
        })+
    };
}
sample_uniform!(u8, u16, u32, u64, u128, usize);

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::sample_range(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> Strategy for RangeFrom<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::sample_from(self.start, rng)
    }
}
