//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses:
//! `proptest! { ... }` blocks with `#![proptest_config(...)]`, the
//! `any::<T>()` / integer-range / `collection::vec` strategies, and the
//! `prop_assert*` / `prop_assume!` macros. Cases are sampled from a
//! deterministic per-test RNG (seeded from the test name), so failures
//! reproduce exactly; there is no shrinking.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob-import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Asserts a condition inside a property (panics on violation).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Discards the current case when the precondition fails.
///
/// Expands to an early `return` from the per-case closure, so it must be
/// used at the top level of a property body (as all call sites here do).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples `config.cases` inputs and runs the
/// body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            @cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                let __one_case = move || $body;
                __one_case();
            }
        }
        $crate::__proptest_fns! { @cfg ($cfg) $($rest)* }
    };
}
