//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so this crate provides
//! just enough surface for the workspace to compile: the two marker traits
//! with blanket impls (every type trivially "implements" them) and the
//! no-op derive macros from the sibling `serde_derive` stand-in. Nothing
//! in the workspace serializes through serde at runtime — JSON output is
//! hand-rolled where needed — so no behavior is lost.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`. Blanket-implemented.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait mirroring `serde::Deserialize`. Blanket-implemented.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
