//! Offline stand-in for `criterion`.
//!
//! Implements the benchmark-facing subset the workspace uses —
//! `benchmark_group`, `bench_function`, `Throughput`, `b.iter(..)` and the
//! `criterion_group!`/`criterion_main!` macros — as a simple wall-clock
//! harness: warm up briefly, pick an iteration count that fills the
//! measurement window, report mean time per iteration (and derived
//! throughput when declared).

use std::time::{Duration, Instant};

/// Declared per-iteration work, for throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            criterion: self,
            sample_size: 10,
            measurement_time: None,
            warm_up_time: None,
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<S: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: S,
        f: F,
    ) -> &mut Self {
        run_one(
            name.as_ref(),
            self.warm_up_time,
            self.measurement_time,
            None,
            f,
        );
        self
    }
}

/// A group of benchmarks sharing sizing/throughput settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    sample_size: usize,
    measurement_time: Option<Duration>,
    warm_up_time: Option<Duration>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (accepted for API compatibility).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets the measurement window.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = Some(d);
        self
    }

    /// Sets the warm-up window.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = Some(d);
        self
    }

    /// Declares per-iteration work for throughput lines.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<S: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: S,
        f: F,
    ) -> &mut Self {
        let warm = self.warm_up_time.unwrap_or(self.criterion.warm_up_time);
        let measure = self
            .measurement_time
            .unwrap_or(self.criterion.measurement_time);
        run_one(name.as_ref(), warm, measure, self.throughput, f);
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    warm_up: Duration,
    measurement: Duration,
    throughput: Option<Throughput>,
    mut f: F,
) {
    // Warm-up: repeat single iterations until the window elapses, and use
    // the observed rate to size the measurement batch.
    let warm_start = Instant::now();
    let mut warm_iters: u64 = 0;
    while warm_start.elapsed() < warm_up || warm_iters == 0 {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        warm_iters += 1;
    }
    let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
    let iters = ((measurement.as_secs_f64() / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000_000);

    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mean_ns = b.elapsed.as_secs_f64() * 1e9 / iters as f64;
    let line = match throughput {
        Some(Throughput::Elements(n)) => {
            let rate = n as f64 * iters as f64 / b.elapsed.as_secs_f64();
            format!("  {name:<32} {mean_ns:>14.1} ns/iter {rate:>16.0} elem/s")
        }
        Some(Throughput::Bytes(n)) => {
            let rate = n as f64 * iters as f64 / b.elapsed.as_secs_f64();
            format!(
                "  {name:<32} {mean_ns:>14.1} ns/iter {:>16.1} MiB/s",
                rate / (1 << 20) as f64
            )
        }
        None => format!("  {name:<32} {mean_ns:>14.1} ns/iter"),
    };
    println!("{line}");
}

/// Per-benchmark timing handle passed to the closure.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` runs of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed += start.elapsed();
    }
}

/// Prevents the optimizer from deleting a value (re-export shim).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundles benchmark functions into one callable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
